//! The service-plane protocol: versioned request/response types and their
//! JSON codec.
//!
//! Each frame body (see [`frame`](crate::rpc::frame)) is one JSON object.
//! Requests carry an *envelope* — protocol version `v`, client-chosen
//! correlation id `id`, optional `tenant` claim — plus an `op` tag naming
//! the [`Request`] variant and that variant's fields inline. Responses echo
//! `v` and `id` and carry a `kind` tag naming the [`Response`] variant:
//!
//! ```text
//!   → {"v":1,"id":42,"op":"register","kind":"coverage",
//!      "subject":"bedroom","value":25.0}
//!   ← {"v":1,"id":42,"kind":"registered","service":3,"task":7}
//!
//!   → {"v":1,"id":43,"op":"register","kind":"coverage",
//!      "subject":"bedroom","value":25.0}
//!   ← {"v":1,"id":43,"kind":"rejected",
//!      "reason":"tenant quota exhausted: 4 live services (cap 4)"}
//! ```
//!
//! # Version negotiation
//!
//! [`PROTOCOL_VERSION`] is 1. A server rejects any request whose `v` it
//! does not speak with a [`Response::Error`] naming its own version —
//! except `op:"ping"`, which is defined to be decodable under *every*
//! version so a client can always learn the server's version from the
//! [`Response::Pong`] it gets back, then downgrade or give up.
//!
//! # Encoding and decoding
//!
//! Encoding goes through the vendored serde shim into compact JSON;
//! decoding parses with the same crate's [`JsonValue`] parser. Both
//! directions of both types are implemented so clients, servers and tests
//! share one codec:
//!
//! ```
//! use surfos::rpc::proto::{Request, RequestEnvelope, Response};
//!
//! let env = RequestEnvelope::new(7, Request::Ping);
//! let (back, json) = (RequestEnvelope::decode(&env.encode()).unwrap(), env.encode());
//! assert_eq!(back.id, 7);
//! assert!(matches!(back.request, Request::Ping));
//! assert!(json.starts_with(r#"{"v":1,"#));
//!
//! let resp = Response::Rejected { reason: "no surfaces deployed".into() };
//! let decoded = Response::decode(&resp.encode(1)).unwrap();
//! assert!(matches!(decoded.1, Response::Rejected { .. }));
//! ```

use serde::ser::{Serialize, SerializeStruct, Serializer};
use surfos_obs::{to_json, JsonValue};

/// The protocol version this build speaks.
pub const PROTOCOL_VERSION: u64 = 1;

/// A decoding failure: what was wrong with the frame body.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtoError(pub String);

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtoError {}

/// One service-plane operation, as named by the envelope's `op` tag.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness + version probe. Decodable under every protocol version.
    Ping,
    /// Register a service: the daemon routes this through tenant
    /// registration and admission, then submits it to the kernel.
    RegisterService {
        /// Service class: `coverage`, `link`, `sensing`, `powering` or
        /// `protect` (the shell's `request` vocabulary).
        kind: String,
        /// The subject room or endpoint id.
        subject: String,
        /// The goal value (target SNR dB, duration s, max leak dBm, … —
        /// meaning depends on `kind`).
        value: f64,
    },
    /// Release a service lease previously granted to this tenant.
    ReleaseService {
        /// The lease id from [`Response::Registered`].
        service: u64,
    },
    /// Submit a natural-language intent; the broker grounds it into
    /// service tasks.
    SubmitIntent {
        /// The utterance, e.g. `"I want to watch a movie on my laptop"`.
        utterance: String,
    },
    /// Evaluate the current channel between two registered endpoints.
    QueryChannel {
        /// Transmitter endpoint id.
        tx: String,
        /// Receiver endpoint id.
        rx: String,
    },
    /// Fetch the daemon's observability snapshot as JSON.
    Metrics {
        /// When true, return the run-invariant projection (wall-clock
        /// series dropped) instead of the full snapshot.
        deterministic: bool,
    },
}

impl Request {
    /// The envelope `op` tag for this variant.
    pub fn op(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::RegisterService { .. } => "register",
            Request::ReleaseService { .. } => "release",
            Request::SubmitIntent { .. } => "intent",
            Request::QueryChannel { .. } => "query",
            Request::Metrics { .. } => "metrics",
        }
    }
}

/// A request plus its envelope fields.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestEnvelope {
    /// Protocol version the client speaks.
    pub v: u64,
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Optional tenant claim; the first claim on a connection names its
    /// session tenant (otherwise the daemon assigns one).
    pub tenant: Option<String>,
    /// The operation.
    pub request: Request,
}

impl RequestEnvelope {
    /// An envelope at [`PROTOCOL_VERSION`] with no tenant claim.
    pub fn new(id: u64, request: Request) -> Self {
        RequestEnvelope {
            v: PROTOCOL_VERSION,
            id,
            tenant: None,
            request,
        }
    }

    /// Same, claiming a tenant name.
    pub fn with_tenant(id: u64, tenant: impl Into<String>, request: Request) -> Self {
        RequestEnvelope {
            v: PROTOCOL_VERSION,
            id,
            tenant: Some(tenant.into()),
            request,
        }
    }

    /// Encodes the envelope as a compact JSON object (one frame body).
    pub fn encode(&self) -> String {
        to_json(self)
    }

    /// Decodes a frame body into an envelope.
    ///
    /// Unknown `op` tags and missing or mistyped fields are errors; the
    /// error text names the offending field so wire bugs are debuggable
    /// from the peer's error response alone.
    pub fn decode(body: &str) -> Result<RequestEnvelope, ProtoError> {
        let v = JsonValue::parse(body).map_err(|e| ProtoError(format!("bad JSON: {e}")))?;
        let version = get_u64(&v, "v")?;
        let id = get_u64(&v, "id")?;
        let tenant = match v.get("tenant") {
            None | Some(JsonValue::Null) => None,
            Some(JsonValue::Str(s)) => Some(s.clone()),
            Some(_) => return Err(ProtoError("field \"tenant\" must be a string".into())),
        };
        let op = get_str(&v, "op")?;
        let request = match op.as_str() {
            "ping" => Request::Ping,
            // Every other op requires the version to match exactly; ping
            // stays decodable so version discovery always works.
            _ if version != PROTOCOL_VERSION => {
                return Err(ProtoError(format!(
                    "unsupported protocol version {version} (this peer speaks {PROTOCOL_VERSION})"
                )));
            }
            "register" => Request::RegisterService {
                kind: get_str(&v, "kind")?,
                subject: get_str(&v, "subject")?,
                value: get_f64(&v, "value")?,
            },
            "release" => Request::ReleaseService {
                service: get_u64(&v, "service")?,
            },
            "intent" => Request::SubmitIntent {
                utterance: get_str(&v, "utterance")?,
            },
            "query" => Request::QueryChannel {
                tx: get_str(&v, "tx")?,
                rx: get_str(&v, "rx")?,
            },
            "metrics" => Request::Metrics {
                deterministic: match v.get("deterministic") {
                    None => false,
                    Some(b) => b.as_bool().ok_or_else(|| {
                        ProtoError("field \"deterministic\" must be a bool".into())
                    })?,
                },
            },
            other => return Err(ProtoError(format!("unknown op {other:?}"))),
        };
        Ok(RequestEnvelope {
            v: version,
            id,
            tenant,
            request,
        })
    }
}

impl Serialize for RequestEnvelope {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("RequestEnvelope", 4)?;
        st.serialize_field("v", &self.v)?;
        st.serialize_field("id", &self.id)?;
        if let Some(tenant) = &self.tenant {
            st.serialize_field("tenant", tenant)?;
        }
        st.serialize_field("op", self.request.op())?;
        match &self.request {
            Request::Ping => {}
            Request::RegisterService {
                kind,
                subject,
                value,
            } => {
                st.serialize_field("kind", kind)?;
                st.serialize_field("subject", subject)?;
                st.serialize_field("value", value)?;
            }
            Request::ReleaseService { service } => st.serialize_field("service", service)?,
            Request::SubmitIntent { utterance } => st.serialize_field("utterance", utterance)?,
            Request::QueryChannel { tx, rx } => {
                st.serialize_field("tx", tx)?;
                st.serialize_field("rx", rx)?;
            }
            Request::Metrics { deterministic } => {
                st.serialize_field("deterministic", deterministic)?;
            }
        }
        st.end()
    }
}

/// One service-plane reply, as named by its `kind` tag.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Ping`]: the server's version and the tenant
    /// name bound to this session.
    Pong {
        /// The server's [`PROTOCOL_VERSION`].
        version: u64,
        /// This connection's tenant id.
        tenant: String,
    },
    /// The service was admitted.
    Registered {
        /// The lease id (pass to [`Request::ReleaseService`]).
        service: u64,
        /// The kernel task id backing the lease.
        task: u64,
    },
    /// The lease was released and its kernel task retired.
    Released {
        /// The released lease id.
        service: u64,
    },
    /// The intent was grounded into these kernel task ids (may be empty
    /// when no service matched the utterance).
    IntentTasks {
        /// Admitted task ids.
        tasks: Vec<u64>,
    },
    /// Channel evaluation result.
    Channel {
        /// Received signal strength, dBm.
        rss_dbm: f64,
        /// Signal-to-noise ratio, dB.
        snr_db: f64,
        /// Shannon capacity, bits/s.
        capacity_bps: f64,
    },
    /// The observability snapshot, as a JSON document in a string field.
    Metrics {
        /// The snapshot JSON (parse with `surfos_obs::JsonValue`).
        json: String,
    },
    /// The request was understood but *not admitted* — over-demand is a
    /// structured outcome, never a hang or a dropped connection.
    Rejected {
        /// Why admission failed (quota, capacity, no resources, …).
        reason: String,
    },
    /// The request could not be served (unknown endpoint, bad version,
    /// malformed body, unowned lease, …).
    Error {
        /// What went wrong.
        message: String,
    },
}

impl Response {
    /// The `kind` tag for this variant.
    pub fn kind(&self) -> &'static str {
        match self {
            Response::Pong { .. } => "pong",
            Response::Registered { .. } => "registered",
            Response::Released { .. } => "released",
            Response::IntentTasks { .. } => "intent",
            Response::Channel { .. } => "channel",
            Response::Metrics { .. } => "metrics",
            Response::Rejected { .. } => "rejected",
            Response::Error { .. } => "error",
        }
    }

    /// Encodes the response, echoing the request's correlation `id`.
    pub fn encode(&self, id: u64) -> String {
        to_json(&ResponseFrame { id, response: self })
    }

    /// Decodes a frame body into `(correlation id, response)`.
    pub fn decode(body: &str) -> Result<(u64, Response), ProtoError> {
        let v = JsonValue::parse(body).map_err(|e| ProtoError(format!("bad JSON: {e}")))?;
        let id = get_u64(&v, "id")?;
        let kind = get_str(&v, "kind")?;
        let response = match kind.as_str() {
            "pong" => Response::Pong {
                version: get_u64(&v, "version")?,
                tenant: get_str(&v, "tenant")?,
            },
            "registered" => Response::Registered {
                service: get_u64(&v, "service")?,
                task: get_u64(&v, "task")?,
            },
            "released" => Response::Released {
                service: get_u64(&v, "service")?,
            },
            "intent" => {
                let tasks = v
                    .get("tasks")
                    .and_then(JsonValue::as_array)
                    .ok_or_else(|| ProtoError("missing array field \"tasks\"".into()))?;
                Response::IntentTasks {
                    tasks: tasks
                        .iter()
                        .map(|t| {
                            t.as_f64()
                                .filter(|f| *f >= 0.0 && f.fract() == 0.0)
                                .map(|f| f as u64)
                                .ok_or_else(|| ProtoError("non-integer task id".into()))
                        })
                        .collect::<Result<_, _>>()?,
                }
            }
            "channel" => Response::Channel {
                rss_dbm: get_f64(&v, "rss_dbm")?,
                snr_db: get_f64(&v, "snr_db")?,
                capacity_bps: get_f64(&v, "capacity_bps")?,
            },
            "metrics" => Response::Metrics {
                json: get_str(&v, "json")?,
            },
            "rejected" => Response::Rejected {
                reason: get_str(&v, "reason")?,
            },
            "error" => Response::Error {
                message: get_str(&v, "message")?,
            },
            other => return Err(ProtoError(format!("unknown response kind {other:?}"))),
        };
        Ok((id, response))
    }
}

/// Serialization shell pairing a response with its correlation id.
struct ResponseFrame<'a> {
    id: u64,
    response: &'a Response,
}

impl Serialize for ResponseFrame<'_> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("ResponseFrame", 4)?;
        st.serialize_field("v", &PROTOCOL_VERSION)?;
        st.serialize_field("id", &self.id)?;
        st.serialize_field("kind", self.response.kind())?;
        match self.response {
            Response::Pong { version, tenant } => {
                st.serialize_field("version", version)?;
                st.serialize_field("tenant", tenant)?;
            }
            Response::Registered { service, task } => {
                st.serialize_field("service", service)?;
                st.serialize_field("task", task)?;
            }
            Response::Released { service } => st.serialize_field("service", service)?,
            Response::IntentTasks { tasks } => st.serialize_field("tasks", tasks)?,
            Response::Channel {
                rss_dbm,
                snr_db,
                capacity_bps,
            } => {
                st.serialize_field("rss_dbm", rss_dbm)?;
                st.serialize_field("snr_db", snr_db)?;
                st.serialize_field("capacity_bps", capacity_bps)?;
            }
            Response::Metrics { json } => st.serialize_field("json", json)?,
            Response::Rejected { reason } => st.serialize_field("reason", reason)?,
            Response::Error { message } => st.serialize_field("message", message)?,
        }
        st.end()
    }
}

fn get_u64(v: &JsonValue, field: &str) -> Result<u64, ProtoError> {
    v.get(field)
        .and_then(JsonValue::as_f64)
        .filter(|f| *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64)
        .map(|f| f as u64)
        .ok_or_else(|| ProtoError(format!("missing or non-integer field {field:?}")))
}

fn get_f64(v: &JsonValue, field: &str) -> Result<f64, ProtoError> {
    v.get(field)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| ProtoError(format!("missing or non-numeric field {field:?}")))
}

fn get_str(v: &JsonValue, field: &str) -> Result<String, ProtoError> {
    v.get(field)
        .and_then(JsonValue::as_str)
        .map(str::to_owned)
        .ok_or_else(|| ProtoError(format!("missing or non-string field {field:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_requests() -> Vec<Request> {
        vec![
            Request::Ping,
            Request::RegisterService {
                kind: "coverage".into(),
                subject: "bedroom".into(),
                value: 25.0,
            },
            Request::ReleaseService { service: 3 },
            Request::SubmitIntent {
                utterance: "start VR gaming \"now\"".into(),
            },
            Request::QueryChannel {
                tx: "ap0".into(),
                rx: "laptop".into(),
            },
            Request::Metrics {
                deterministic: true,
            },
        ]
    }

    fn all_responses() -> Vec<Response> {
        vec![
            Response::Pong {
                version: PROTOCOL_VERSION,
                tenant: "tenant-0".into(),
            },
            Response::Registered {
                service: 9,
                task: 4,
            },
            Response::Released { service: 9 },
            Response::IntentTasks { tasks: vec![1, 2] },
            Response::IntentTasks { tasks: vec![] },
            Response::Channel {
                rss_dbm: -51.25,
                snr_db: 32.5,
                capacity_bps: 4.5e9,
            },
            Response::Metrics {
                json: r#"{"counters":{"rpc.requests":12}}"#.into(),
            },
            Response::Rejected {
                reason: "tenant quota exhausted: 4 live (cap 4)".into(),
            },
            Response::Error {
                message: "unknown endpoint \"ghost\"".into(),
            },
        ]
    }

    #[test]
    fn requests_round_trip() {
        for (i, req) in all_requests().into_iter().enumerate() {
            let env = RequestEnvelope::with_tenant(i as u64, format!("t{i}"), req.clone());
            let body = env.encode();
            let back = RequestEnvelope::decode(&body).unwrap_or_else(|e| panic!("{body}: {e}"));
            assert_eq!(back, env, "{body}");
        }
        // And without a tenant claim.
        let env = RequestEnvelope::new(5, Request::Ping);
        assert_eq!(RequestEnvelope::decode(&env.encode()).unwrap(), env);
        assert!(!env.encode().contains("tenant"));
    }

    #[test]
    fn responses_round_trip() {
        for (i, resp) in all_responses().into_iter().enumerate() {
            let body = resp.encode(i as u64);
            let (id, back) = Response::decode(&body).unwrap_or_else(|e| panic!("{body}: {e}"));
            assert_eq!(id, i as u64, "{body}");
            assert_eq!(back, resp, "{body}");
        }
    }

    #[test]
    fn metrics_payload_nests_as_a_parseable_document() {
        let inner = r#"{"counters":{"rpc.requests":12,"rpc.rejected":3}}"#;
        let body = Response::Metrics { json: inner.into() }.encode(0);
        let (_, back) = Response::decode(&body).unwrap();
        let Response::Metrics { json } = back else {
            panic!("wrong kind");
        };
        let doc = JsonValue::parse(&json).unwrap();
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("rpc.requests"))
                .and_then(JsonValue::as_f64),
            Some(12.0)
        );
    }

    #[test]
    fn unknown_op_and_kind_are_errors_not_panics() {
        let err = RequestEnvelope::decode(r#"{"v":1,"id":0,"op":"frobnicate"}"#).unwrap_err();
        assert!(err.0.contains("frobnicate"), "{err}");
        let err = Response::decode(r#"{"v":1,"id":0,"kind":"mystery"}"#).unwrap_err();
        assert!(err.0.contains("mystery"), "{err}");
    }

    #[test]
    fn missing_and_mistyped_fields_name_the_field() {
        for (body, needle) in [
            (r#"{"id":0,"op":"ping"}"#, "\"v\""),
            (r#"{"v":1,"op":"ping"}"#, "\"id\""),
            (r#"{"v":1,"id":0}"#, "\"op\""),
            (
                r#"{"v":1,"id":0,"op":"register","subject":"x","value":1}"#,
                "\"kind\"",
            ),
            (
                r#"{"v":1,"id":0,"op":"register","kind":"coverage","subject":"x","value":"high"}"#,
                "\"value\"",
            ),
            (
                r#"{"v":1,"id":0,"op":"release","service":-2}"#,
                "\"service\"",
            ),
            (r#"{"v":1,"id":0.5,"op":"ping"}"#, "\"id\""),
            (r#"{"v":1,"id":0,"tenant":7,"op":"ping"}"#, "\"tenant\""),
            (
                r#"{"v":1,"id":0,"op":"metrics","deterministic":"yes"}"#,
                "\"deterministic\"",
            ),
        ] {
            let err = RequestEnvelope::decode(body).unwrap_err();
            assert!(err.0.contains(needle), "{body} -> {err}");
        }
        assert!(RequestEnvelope::decode("[1,2,3]").is_err());
        assert!(RequestEnvelope::decode("not json at all").is_err());
        assert!(RequestEnvelope::decode("").is_err());
    }

    #[test]
    fn version_gate_spares_ping_only() {
        // A v2 ping decodes (version discovery must always work) …
        let ping = RequestEnvelope::decode(r#"{"v":2,"id":1,"op":"ping"}"#).unwrap();
        assert_eq!(ping.v, 2);
        assert!(matches!(ping.request, Request::Ping));
        // … but any other v2 op is rejected with the speaker's version.
        let err = RequestEnvelope::decode(r#"{"v":2,"id":1,"op":"query","tx":"a","rx":"b"}"#)
            .unwrap_err();
        assert!(err.0.contains("version 2"), "{err}");
        assert!(err.0.contains("speaks 1"), "{err}");
    }

    #[test]
    fn string_fields_escape_cleanly() {
        let env = RequestEnvelope::new(
            1,
            Request::SubmitIntent {
                utterance: "quote \" backslash \\ newline \n done".into(),
            },
        );
        let back = RequestEnvelope::decode(&env.encode()).unwrap();
        assert_eq!(back, env);
    }
}
