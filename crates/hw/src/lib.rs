//! # surfos-hw
//!
//! The SurfOS **hardware manager** (paper §3.1): the layer that masks
//! heterogeneous metasurface hardware behind unified programming
//! interfaces, the way device drivers mask disks behind `read()`/`write()`.
//!
//! - [`spec`]: hardware specifications — what a design *can* do (bands,
//!   control primitives, granularity, control delay, cost), explicitly
//!   exposed so the orchestrator can model behaviour correctly.
//! - [`config`]: surface configurations — arrays of per-element signal
//!   property alterations, the input to every driver primitive.
//! - [`granularity`]: reconfigurability models (element-/column-/row-wise,
//!   passive) and the projection of ideal configs onto what hardware can
//!   realize, including phase quantization.
//! - [`driver`]: the unified [`driver::SurfaceDriver`] trait —
//!   `shift_phase()`, `set_amplitude()`, … — with programmable and passive
//!   implementations, local configuration slots and control-delay
//!   modelling (the paper's decoupled control/data plane).
//! - [`wire`]: the binary format configurations travel in between the
//!   control plane and a surface's local controller.
//! - [`registry`]: the device registry for surface and non-surface
//!   hardware (APs, sensors, base stations).
//! - [`designs`]: the Table-1 database — all 13 published surface designs
//!   as loadable specs.
//! - [`cost`]: the cost/size model behind the paper's Figure 4 trade-offs.

pub mod config;
pub mod cost;
pub mod designs;
pub mod driver;
pub mod error;
pub mod granularity;
pub mod nonsurface;
pub mod registry;
pub mod spec;
pub mod wire;

pub use config::{ElementState, SurfaceConfig};
pub use driver::{PassiveDriver, ProgrammableDriver, SurfaceDriver};
pub use error::DriverError;
pub use granularity::Reconfigurability;
pub use registry::DeviceRegistry;
pub use spec::{ControlCapability, HardwareSpec};
