//! The published-design database: Table 1 of the paper as loadable specs.
//!
//! Thirteen surface systems spanning 0.9–60 GHz, four control modalities,
//! transmissive/reflective/transflective operation, and passive to
//! element-wise reconfigurability. Costs follow the table where reported;
//! element counts, pitches, efficiencies and unreported costs are
//! representative values taken from the cited papers (rounded), chosen so
//! the *relative* design-space structure — the thing the hardware manager
//! must handle — is faithful.

use crate::granularity::Reconfigurability;
use crate::spec::{ControlCapability, HardwareSpec, SurfaceMode};
use surfos_em::band::{Band, NamedBand};

#[allow(clippy::too_many_arguments)] // a spec constructor mirrors the spec
fn base(
    model: &str,
    band: Band,
    mode: SurfaceMode,
    capabilities: Vec<ControlCapability>,
    reconfigurability: Reconfigurability,
    rows: usize,
    cols: usize,
    pitch_m: f64,
    control_delay_us: Option<u64>,
    config_slots: usize,
    cost_per_element_usd: f64,
    base_cost_usd: f64,
    power_mw: f64,
) -> HardwareSpec {
    let spec = HardwareSpec {
        model: model.into(),
        band,
        mode,
        capabilities,
        reconfigurability,
        rows,
        cols,
        pitch_m,
        efficiency: 0.8,
        control_delay_us,
        config_slots,
        cost_per_element_usd,
        base_cost_usd,
        power_mw,
    };
    debug_assert_eq!(spec.validate(), Ok(()));
    spec
}

/// LAIA (NSDI'19): 2.4 GHz transmissive phase control, element-wise.
pub fn laia() -> HardwareSpec {
    base(
        "LAIA",
        NamedBand::Ism2_4GHz.band(),
        SurfaceMode::Transmissive,
        vec![ControlCapability::Phase { bits: 1 }],
        Reconfigurability::ElementWise,
        6,
        6,
        0.06,
        Some(5_000),
        4,
        8.0,
        60.0,
        800.0,
    )
}

/// RFocus (NSDI'20): 2.4 GHz transflective on/off amplitude, 3200 elements.
pub fn rfocus() -> HardwareSpec {
    base(
        "RFocus",
        NamedBand::Ism2_4GHz.band(),
        SurfaceMode::Transflective,
        vec![ControlCapability::Amplitude { levels: 2 }],
        Reconfigurability::ElementWise,
        40,
        80,
        0.05,
        Some(10_000),
        4,
        1.5,
        200.0,
        2_000.0,
    )
}

/// LLAMA (NSDI'21): 2.4 GHz transflective polarization control, $900.
pub fn llama() -> HardwareSpec {
    base(
        "LLAMA",
        NamedBand::Ism2_4GHz.band(),
        SurfaceMode::Transflective,
        vec![ControlCapability::Polarization],
        Reconfigurability::ElementWise,
        8,
        6,
        0.055,
        Some(2_000),
        4,
        17.0,
        84.0,
        600.0,
    )
}

/// LAVA (SIGCOMM'21): 2.4 GHz transmissive amplitude (on/off links).
pub fn lava() -> HardwareSpec {
    base(
        "LAVA",
        NamedBand::Ism2_4GHz.band(),
        SurfaceMode::Transmissive,
        vec![ControlCapability::Amplitude { levels: 2 }],
        Reconfigurability::ElementWise,
        14,
        16,
        0.055,
        Some(5_000),
        4,
        2.0,
        150.0,
        1_000.0,
    )
}

/// ScatterMIMO (MobiCom'20): 5 GHz reflective phase, $450.
pub fn scatter_mimo() -> HardwareSpec {
    base(
        "ScatterMIMO",
        NamedBand::WiFi5GHz.band(),
        SurfaceMode::Reflective,
        vec![ControlCapability::Phase { bits: 2 }],
        Reconfigurability::ElementWise,
        12,
        12,
        0.028,
        Some(1_000),
        8,
        2.5,
        90.0,
        500.0,
    )
}

/// RFlens (MobiCom'21): 5 GHz transmissive phase lens, $246.
pub fn rflens() -> HardwareSpec {
    base(
        "RFlens",
        NamedBand::WiFi5GHz.band(),
        SurfaceMode::Transmissive,
        vec![ControlCapability::Phase { bits: 1 }],
        Reconfigurability::ElementWise,
        16,
        16,
        0.028,
        Some(1_000),
        8,
        0.8,
        41.2,
        400.0,
    )
}

/// Diffract (MobiCom'23): 5 GHz passive diffraction gratings, $33.
/// Encoded as a fabrication-time binary phase pattern (the grating's
/// edge/slot structure behaves as fixed 1-bit phase plates).
pub fn diffract() -> HardwareSpec {
    base(
        "Diffract",
        NamedBand::WiFi5GHz.band(),
        SurfaceMode::Transmissive,
        vec![ControlCapability::Phase { bits: 1 }],
        Reconfigurability::Passive,
        20,
        20,
        0.028,
        None,
        1,
        0.08,
        1.0,
        0.0,
    )
}

/// Scrolls (MobiCom'23): 0.9–6 GHz wideband, frequency-selective rolling
/// surfaces with row-wise reconfiguration, $156.
pub fn scrolls() -> HardwareSpec {
    base(
        "Scrolls",
        Band::new(3.45e9, 5.1e9), // 0.9–6 GHz span
        SurfaceMode::Reflective,
        vec![
            ControlCapability::Frequency {
                tunable_range_hz: 5.1e9,
            },
            ControlCapability::Phase { bits: 1 },
        ],
        Reconfigurability::RowWise,
        24,
        12,
        0.05,
        Some(200_000), // mechanical rolling is slow
        4,
        0.5,
        12.0,
        300.0,
    )
}

/// mmWall (NSDI'23): 24 GHz transflective phase, column-wise, ~$10K.
pub fn mmwall() -> HardwareSpec {
    base(
        "mmWall",
        NamedBand::MmWave24GHz.band(),
        SurfaceMode::Transflective,
        vec![ControlCapability::Phase { bits: 3 }],
        Reconfigurability::ColumnWise,
        76,
        28,
        0.0062,
        Some(100),
        16,
        4.5,
        424.0,
        3_000.0,
    )
}

/// NR-Surface (NSDI'24): 24 GHz reflective phase, column-wise, $600,
/// microwatt-class standby (NR-sync wakeups).
pub fn nr_surface() -> HardwareSpec {
    base(
        "NR-Surface",
        NamedBand::MmWave24GHz.band(),
        SurfaceMode::Reflective,
        vec![ControlCapability::Phase { bits: 2 }],
        Reconfigurability::ColumnWise,
        16,
        16,
        0.0062,
        Some(1_000),
        8,
        2.2,
        36.8,
        0.4,
    )
}

/// PMSat (MobiCom'23): 20/30 GHz passive transmissive phase plates for
/// LEO satellite links, $30.
pub fn pmsat() -> HardwareSpec {
    base(
        "PMSat",
        NamedBand::Ka30GHz.band(),
        SurfaceMode::Transmissive,
        vec![ControlCapability::Phase { bits: 2 }],
        Reconfigurability::Passive,
        40,
        40,
        0.005,
        None,
        1,
        0.018,
        1.2,
        0.0,
    )
}

/// MilliMirror (MobiCom'22): 60 GHz 3-D-printed passive reflectarray, $15.
pub fn milli_mirror() -> HardwareSpec {
    base(
        "MilliMirror",
        NamedBand::MmWave60GHz.band(),
        SurfaceMode::Reflective,
        vec![ControlCapability::Phase { bits: 2 }],
        Reconfigurability::Passive,
        100,
        100,
        0.0025,
        None,
        1,
        0.0014,
        1.0,
        0.0,
    )
}

/// AutoMS (MobiCom'24): 60 GHz passive reflective metasurface, under $2
/// for tens of thousands of elements ($1 per 60k elements plus substrate).
pub fn autos_ms() -> HardwareSpec {
    base(
        "AutoMS",
        NamedBand::MmWave60GHz.band(),
        SurfaceMode::Reflective,
        vec![ControlCapability::Phase { bits: 2 }],
        Reconfigurability::Passive,
        245,
        245,
        0.00125,
        None,
        1,
        1.67e-5,
        0.9,
        0.0,
    )
}

/// Every design in Table 1, in the table's order.
pub fn all_designs() -> Vec<HardwareSpec> {
    vec![
        laia(),
        rfocus(),
        llama(),
        lava(),
        scatter_mimo(),
        rflens(),
        diffract(),
        scrolls(),
        mmwall(),
        nr_surface(),
        pmsat(),
        milli_mirror(),
        autos_ms(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_valid() {
        for s in all_designs() {
            assert_eq!(s.validate(), Ok(()), "{} invalid", s.model);
        }
    }

    #[test]
    fn thirteen_designs() {
        assert_eq!(all_designs().len(), 13);
        let mut names: Vec<String> = all_designs().into_iter().map(|s| s.model).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 13, "duplicate model names");
    }

    #[test]
    fn passive_designs_are_zero_power_single_slot() {
        for s in all_designs() {
            if s.is_passive() {
                assert_eq!(s.power_mw, 0.0, "{}", s.model);
                assert_eq!(s.config_slots, 1, "{}", s.model);
                assert_eq!(
                    s.reconfigurability,
                    Reconfigurability::Passive,
                    "{}",
                    s.model
                );
            }
        }
    }

    #[test]
    fn table_costs_match_published() {
        let close = |got: f64, want: f64, tol: f64| (got - want).abs() <= tol;
        assert!(close(llama().total_cost_usd(), 900.0, 20.0));
        assert!(close(scatter_mimo().total_cost_usd(), 450.0, 10.0));
        assert!(close(rflens().total_cost_usd(), 246.0, 5.0));
        assert!(close(diffract().total_cost_usd(), 33.0, 2.0));
        assert!(close(scrolls().total_cost_usd(), 156.0, 5.0));
        assert!(close(mmwall().total_cost_usd(), 10_000.0, 500.0));
        assert!(close(nr_surface().total_cost_usd(), 600.0, 15.0));
        assert!(close(pmsat().total_cost_usd(), 30.0, 2.0));
        assert!(close(milli_mirror().total_cost_usd(), 15.0, 1.0));
        assert!(autos_ms().total_cost_usd() < 2.0, "AutoMS under $2");
    }

    #[test]
    fn paper_cost_claims_hold() {
        // §2.1: programmable mmWave surfaces cost over $2 per element...
        for s in [mmwall(), nr_surface()] {
            assert!(s.cost_per_element_usd > 2.0, "{}", s.model);
        }
        // ...while fully passive surfaces are orders of magnitude cheaper.
        for s in [pmsat(), milli_mirror(), autos_ms()] {
            assert!(s.cost_per_element_usd < 0.02, "{}", s.model);
        }
    }

    #[test]
    fn mmwave_programmables_are_not_elementwise() {
        // §2.1: high-frequency programmable surfaces often support only
        // column-wise reconfiguration.
        for s in [mmwall(), nr_surface()] {
            assert_eq!(
                s.reconfigurability,
                Reconfigurability::ColumnWise,
                "{}",
                s.model
            );
        }
    }

    #[test]
    fn control_modality_coverage() {
        let designs = all_designs();
        for p in ["phase", "amplitude", "frequency", "polarization"] {
            assert!(
                designs.iter().any(|s| s.supports(p)),
                "no design supports {p}"
            );
        }
    }

    #[test]
    fn operation_mode_coverage() {
        let designs = all_designs();
        for mode in [
            SurfaceMode::Reflective,
            SurfaceMode::Transmissive,
            SurfaceMode::Transflective,
        ] {
            assert!(designs.iter().any(|s| s.mode == mode), "{mode:?} missing");
        }
    }

    #[test]
    fn a_2_4ghz_design_blocks_5ghz_somewhat() {
        // The §2.1 interference warning: LAIA's structure is not
        // transparent at 5 GHz.
        let t = laia().offband_transmission(5.25e9);
        assert!(t < 1.0);
        // But far bands are almost untouched.
        assert!(laia().offband_transmission(60e9) > 0.95);
    }

    #[test]
    fn element_pitch_scales_with_band() {
        // Sub-wavelength elements: pitch below λ at the design band.
        for s in all_designs() {
            assert!(
                s.pitch_m < s.band.wavelength_m(),
                "{}: pitch {} ≥ λ {}",
                s.model,
                s.pitch_m,
                s.band.wavelength_m()
            );
        }
    }
}
