//! Deployment cost and size accounting — the currency of the paper's
//! Figure 4 trade-off study.

use crate::spec::HardwareSpec;
use serde::{Deserialize, Serialize};

/// Aggregate cost/size/power of a deployment (one or more surfaces).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DeploymentCost {
    /// Total hardware cost in USD.
    pub hardware_usd: f64,
    /// Total aperture area in m².
    pub area_m2: f64,
    /// Total power draw in mW.
    pub power_mw: f64,
    /// Total independently controllable degrees of freedom.
    pub degrees_of_freedom: usize,
}

impl DeploymentCost {
    /// Sums the cost of a set of surface specs.
    pub fn of(specs: &[HardwareSpec]) -> Self {
        let mut total = DeploymentCost::default();
        for s in specs {
            total.hardware_usd += s.total_cost_usd();
            total.area_m2 += s.area_m2();
            total.power_mw += s.power_mw;
            total.degrees_of_freedom += s.reconfigurability.degrees_of_freedom(s.rows, s.cols);
        }
        total
    }
}

/// Rescales a design to a different element grid, keeping per-element
/// economics: cost scales with the element count, fixed cost with the
/// controller. This is how the Figure 4 sweep explores "how big must the
/// surface be to reach a target SNR".
pub fn scaled(template: &HardwareSpec, rows: usize, cols: usize) -> HardwareSpec {
    assert!(rows > 0 && cols > 0, "scaled design must have elements");
    let mut s = template.clone();
    s.rows = rows;
    s.cols = cols;
    // Power scales with controllable groups (drivers per row/column or per
    // element); passive stays zero.
    if !s.is_passive() {
        let template_dof = template
            .reconfigurability
            .degrees_of_freedom(template.rows, template.cols)
            .max(1);
        let new_dof = s.reconfigurability.degrees_of_freedom(rows, cols);
        s.power_mw = template.power_mw * new_dof as f64 / template_dof as f64;
    }
    debug_assert_eq!(s.validate(), Ok(()));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs;

    #[test]
    fn aggregate_of_two_surfaces() {
        let a = designs::autos_ms();
        let b = designs::nr_surface();
        let total = DeploymentCost::of(&[a.clone(), b.clone()]);
        assert!((total.hardware_usd - (a.total_cost_usd() + b.total_cost_usd())).abs() < 1e-9);
        assert!((total.area_m2 - (a.area_m2() + b.area_m2())).abs() < 1e-12);
        assert_eq!(total.power_mw, b.power_mw); // passive contributes zero
                                                // NR-Surface is column-wise: 16 columns; AutoMS passive: all.
        assert_eq!(total.degrees_of_freedom, a.element_count() + 16);
    }

    #[test]
    fn empty_deployment_is_zero() {
        let t = DeploymentCost::of(&[]);
        assert_eq!(t.hardware_usd, 0.0);
        assert_eq!(t.degrees_of_freedom, 0);
    }

    #[test]
    fn scaling_preserves_economics() {
        let template = designs::nr_surface(); // 16×16
        let big = scaled(&template, 32, 32);
        assert_eq!(big.element_count(), 1024);
        // Per-element cost identical; total scales.
        assert_eq!(big.cost_per_element_usd, template.cost_per_element_usd);
        assert!(big.total_cost_usd() > 3.0 * template.total_cost_usd());
        // Column-wise power scales with columns (16 → 32).
        assert!((big.power_mw - 2.0 * template.power_mw).abs() < 1e-9);
    }

    #[test]
    fn scaling_passive_keeps_zero_power() {
        let template = designs::autos_ms();
        let big = scaled(&template, 500, 500);
        assert_eq!(big.power_mw, 0.0);
        assert!(big.total_cost_usd() > template.total_cost_usd());
    }

    #[test]
    #[should_panic(expected = "must have elements")]
    fn zero_scale_rejected() {
        let _ = scaled(&designs::autos_ms(), 0, 10);
    }
}
