//! Spatial control granularity and configuration projection.
//!
//! High-frequency programmable surfaces often share element states per
//! column or row (mmWall, NR-Surface, Scrolls), and every real design
//! quantizes phase. The hardware manager must therefore *project* the
//! ideal element-wise configuration the optimizer produces onto what the
//! hardware can realize — and expose that granularity so the optimizer can
//! anticipate the loss.

use serde::{Deserialize, Serialize};
use surfos_em::complex::Complex;
use surfos_em::phase::{quantize_phase, wrap_phase};

/// How finely a design's element states can be set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Reconfigurability {
    /// Configuration frozen at fabrication (MilliMirror, AutoMS, PMSat…).
    Passive,
    /// One shared state per row (Scrolls' row-wise rolling control).
    RowWise,
    /// One shared state per column (mmWall, NR-Surface).
    ColumnWise,
    /// Every element independently settable.
    ElementWise,
}

impl Reconfigurability {
    /// Number of independently controllable state groups for a
    /// `rows × cols` array. Passive counts its single frozen pattern as
    /// fully element-wise (chosen freely, once).
    pub fn degrees_of_freedom(self, rows: usize, cols: usize) -> usize {
        match self {
            Reconfigurability::Passive | Reconfigurability::ElementWise => rows * cols,
            Reconfigurability::RowWise => rows,
            Reconfigurability::ColumnWise => cols,
        }
    }

    /// Projects an ideal element-wise phase configuration (row-major,
    /// `rows × cols`) onto this granularity, then quantizes to `bits`.
    ///
    /// Shared groups take the *circular mean* of their members' phases —
    /// the phase that maximizes coherent combining under a shared state.
    ///
    /// ```
    /// use surfos_hw::granularity::Reconfigurability;
    ///
    /// // A 2×2 grid projected column-wise shares one state per column.
    /// let out = Reconfigurability::ColumnWise.project_phases(&[0.2, 2.0, 0.4, 2.2], 2, 2, 8);
    /// assert!((out[0] - out[2]).abs() < 1e-9);
    /// assert!((out[1] - out[3]).abs() < 1e-9);
    /// ```
    ///
    /// # Panics
    /// Panics if `phases.len() != rows * cols`.
    pub fn project_phases(self, phases: &[f64], rows: usize, cols: usize, bits: u8) -> Vec<f64> {
        assert_eq!(phases.len(), rows * cols, "phase grid shape mismatch");
        let projected: Vec<f64> = match self {
            Reconfigurability::Passive | Reconfigurability::ElementWise => phases.to_vec(),
            Reconfigurability::ColumnWise => {
                let mut out = vec![0.0; rows * cols];
                for c in 0..cols {
                    let mean = circular_mean((0..rows).map(|r| phases[r * cols + c]));
                    for r in 0..rows {
                        out[r * cols + c] = mean;
                    }
                }
                out
            }
            Reconfigurability::RowWise => {
                let mut out = vec![0.0; rows * cols];
                for r in 0..rows {
                    let mean = circular_mean((0..cols).map(|c| phases[r * cols + c]));
                    for c in 0..cols {
                        out[r * cols + c] = mean;
                    }
                }
                out
            }
        };
        projected
            .into_iter()
            .map(|p| quantize_phase(p, bits))
            .collect()
    }
}

/// The circular mean of a set of phases: the argument of the phasor sum.
/// Returns 0 for an empty iterator or a fully-cancelling set.
pub fn circular_mean(phases: impl Iterator<Item = f64>) -> f64 {
    let sum: Complex = phases.map(Complex::cis).sum();
    if sum.abs() < 1e-12 {
        0.0
    } else {
        wrap_phase(sum.arg())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::f64::consts::PI;

    #[test]
    fn degrees_of_freedom() {
        assert_eq!(Reconfigurability::ElementWise.degrees_of_freedom(4, 8), 32);
        assert_eq!(Reconfigurability::ColumnWise.degrees_of_freedom(4, 8), 8);
        assert_eq!(Reconfigurability::RowWise.degrees_of_freedom(4, 8), 4);
        assert_eq!(Reconfigurability::Passive.degrees_of_freedom(4, 8), 32);
    }

    #[test]
    fn circular_mean_handles_wraparound() {
        // Mean of 350° and 10° is 0°, not 180°.
        let m = circular_mean([350f64.to_radians(), 10f64.to_radians()].into_iter());
        assert!(!(0.02..=2.0 * PI - 0.02).contains(&m), "m={m}");
    }

    #[test]
    fn circular_mean_of_cancelling_set_is_zero() {
        assert_eq!(circular_mean([0.0, PI].into_iter()), 0.0);
    }

    #[test]
    fn elementwise_projection_only_quantizes() {
        let phases = [0.1, 1.7, 3.0, 4.5];
        let out = Reconfigurability::ElementWise.project_phases(&phases, 2, 2, 8);
        for (o, p) in out.iter().zip(&phases) {
            assert!((o - p).abs() < 2.0 * PI / 256.0 + 1e-9);
        }
    }

    #[test]
    fn columnwise_shares_state_per_column() {
        // 2×2 grid, distinct columns.
        let phases = [0.2, 2.0, 0.4, 2.2];
        let out = Reconfigurability::ColumnWise.project_phases(&phases, 2, 2, 8);
        assert!((out[0] - out[2]).abs() < 1e-9, "column 0 shared");
        assert!((out[1] - out[3]).abs() < 1e-9, "column 1 shared");
        // Near the circular means 0.3 and 2.1 (up to quantization).
        assert!((out[0] - 0.3).abs() < 0.05);
        assert!((out[1] - 2.1).abs() < 0.05);
    }

    #[test]
    fn rowwise_shares_state_per_row() {
        let phases = [0.2, 0.4, 2.0, 2.2];
        let out = Reconfigurability::RowWise.project_phases(&phases, 2, 2, 8);
        assert!((out[0] - out[1]).abs() < 1e-9);
        assert!((out[2] - out[3]).abs() < 1e-9);
    }

    #[test]
    fn one_bit_quantization_applied() {
        let phases = [0.3, 2.9, 4.0, 6.0];
        let out = Reconfigurability::ElementWise.project_phases(&phases, 2, 2, 1);
        for o in out {
            assert!(o.abs() < 1e-9 || (o - PI).abs() < 1e-9, "o={o}");
        }
    }

    #[test]
    fn column_projection_preserves_combining_better_than_zero() {
        // A linear phase ramp along columns (beam steering in the
        // column direction) is perfectly representable column-wise.
        let rows = 4;
        let cols = 8;
        let phases: Vec<f64> = (0..rows * cols)
            .map(|i| wrap_phase((i % cols) as f64 * 0.7))
            .collect();
        let out = Reconfigurability::ColumnWise.project_phases(&phases, rows, cols, 8);
        for (o, p) in out.iter().zip(&phases) {
            assert!((o - p).abs() < 0.05, "o={o} p={p}");
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_rejected() {
        let _ = Reconfigurability::ElementWise.project_phases(&[0.0; 5], 2, 2, 1);
    }

    proptest! {
        #[test]
        fn prop_projection_output_in_range(
            phases in prop::collection::vec(-10.0..10.0f64, 16),
            bits in 1u8..8,
        ) {
            for g in [
                Reconfigurability::ElementWise,
                Reconfigurability::ColumnWise,
                Reconfigurability::RowWise,
            ] {
                let out = g.project_phases(&phases, 4, 4, bits);
                prop_assert_eq!(out.len(), 16);
                for o in out {
                    prop_assert!((0.0..2.0 * PI).contains(&o));
                }
            }
        }

        #[test]
        fn prop_projection_idempotent(
            phases in prop::collection::vec(0.0..6.2f64, 16),
            bits in 1u8..6,
        ) {
            let g = Reconfigurability::ColumnWise;
            let once = g.project_phases(&phases, 4, 4, bits);
            let twice = g.project_phases(&once, 4, 4, bits);
            for (a, b) in once.iter().zip(&twice) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }
    }
}
