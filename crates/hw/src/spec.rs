//! Hardware specifications: what a surface design can do.
//!
//! The paper (§3.1) requires drivers to "explicitly capture and expose key
//! hardware parameters to the upper layer": wideband frequency response,
//! operation mode, control delay, and the control primitives supported.
//! [`HardwareSpec`] is that datasheet-as-data.

use crate::granularity::Reconfigurability;
use serde::{Deserialize, Serialize};
use surfos_em::band::Band;

/// Which fundamental signal property a design can alter, and how finely.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ControlCapability {
    /// Phase shifting with `bits` quantization (1-bit = {0, π}).
    Phase {
        /// Quantization depth in bits (≥ 1).
        bits: u8,
    },
    /// On/off or multi-level amplitude control.
    Amplitude {
        /// Number of distinct amplitude levels (≥ 2; 2 = on/off).
        levels: u8,
    },
    /// Frequency-selective response tuning (Scrolls-style).
    Frequency {
        /// Tunable range of the resonance centre, hertz.
        tunable_range_hz: f64,
    },
    /// Polarization rotation (LLAMA-style).
    Polarization,
}

impl ControlCapability {
    /// A short stable name for display and matching.
    pub fn name(&self) -> &'static str {
        match self {
            ControlCapability::Phase { .. } => "phase",
            ControlCapability::Amplitude { .. } => "amplitude",
            ControlCapability::Frequency { .. } => "frequency",
            ControlCapability::Polarization => "polarization",
        }
    }
}

/// Transmissive / reflective / both — mirrors
/// `surfos_channel::OperationMode` without depending on the channel crate
/// (hw is physics-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SurfaceMode {
    /// Reflects incident signals.
    Reflective,
    /// Passes signals through.
    Transmissive,
    /// Both.
    Transflective,
}

/// The full specification of a surface hardware design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareSpec {
    /// Design/model name, e.g. `"mmWall"`.
    pub model: String,
    /// The band the design is engineered for.
    pub band: Band,
    /// Operation mode.
    pub mode: SurfaceMode,
    /// Supported control primitives.
    pub capabilities: Vec<ControlCapability>,
    /// Spatial control granularity.
    pub reconfigurability: Reconfigurability,
    /// Element rows.
    pub rows: usize,
    /// Element columns.
    pub cols: usize,
    /// Element pitch in metres (square lattice assumed).
    pub pitch_m: f64,
    /// Element amplitude efficiency in `[0, 1]`.
    pub efficiency: f64,
    /// Control delay for a configuration update, in microseconds.
    /// `None` for passive designs ("infinite control delay" — ROM).
    pub control_delay_us: Option<u64>,
    /// Number of locally-stored configuration slots (codebook size).
    /// Passive designs have exactly 1 (the fabricated pattern).
    pub config_slots: usize,
    /// Hardware cost in USD per element.
    pub cost_per_element_usd: f64,
    /// Fixed cost in USD (controller, substrate, assembly).
    pub base_cost_usd: f64,
    /// Standby + switching power in milliwatts. Zero for passive.
    pub power_mw: f64,
}

impl HardwareSpec {
    /// Total element count.
    pub fn element_count(&self) -> usize {
        self.rows * self.cols
    }

    /// Total hardware cost in USD.
    pub fn total_cost_usd(&self) -> f64 {
        self.base_cost_usd + self.cost_per_element_usd * self.element_count() as f64
    }

    /// Physical aperture area in m².
    pub fn area_m2(&self) -> f64 {
        (self.rows as f64 * self.pitch_m) * (self.cols as f64 * self.pitch_m)
    }

    /// Whether the design supports a control primitive by name
    /// (`"phase"`, `"amplitude"`, `"frequency"`, `"polarization"`).
    pub fn supports(&self, primitive: &str) -> bool {
        self.capabilities.iter().any(|c| c.name() == primitive)
    }

    /// Phase quantization depth in bits, if phase control is supported.
    pub fn phase_bits(&self) -> Option<u8> {
        self.capabilities.iter().find_map(|c| match c {
            ControlCapability::Phase { bits } => Some(*bits),
            _ => None,
        })
    }

    /// Whether this is a passive (fabrication-time configured) design.
    pub fn is_passive(&self) -> bool {
        self.control_delay_us.is_none()
    }

    /// The wideband amplitude frequency response at `freq_hz`: how much of
    /// an incident signal the surface passes *unaltered* (transmission
    /// efficiency off-band). This captures the paper's §2.1 warning that a
    /// 2.4 GHz surface may block 3 GHz cellular and 5 GHz Wi-Fi.
    ///
    /// Model: within its design band the surface interacts strongly (the
    /// programmed behaviour applies). Off-band the structure behaves as a
    /// partially blocking sheet with a Lorentzian-shaped interaction that
    /// falls off with fractional detuning.
    pub fn offband_transmission(&self, freq_hz: f64) -> f64 {
        assert!(freq_hz > 0.0, "frequency must be positive");
        let f0 = self.band.center_hz;
        // Fractional detuning against the *structural* resonance width of
        // the meta-atoms, which is much broader than the communication
        // channel (typically tens of percent fractional bandwidth) — the
        // reason a 2.4 GHz surface still bothers 3.5 GHz cellular.
        let detune = (freq_hz - f0).abs() / f0;
        let rel_bw = (self.band.bandwidth_hz / f0).max(0.25);
        let x = detune / rel_bw;
        // Interaction strength ~ Lorentzian; blocked fraction up to 60 %.
        let interaction = 1.0 / (1.0 + x * x);
        let blocked = 0.6 * interaction;
        (1.0 - blocked).sqrt() // amplitude, not power
    }

    /// Validates internal consistency. Call after constructing specs by
    /// hand or from parsed datasheets.
    pub fn validate(&self) -> Result<(), String> {
        if self.model.is_empty() {
            return Err("model name empty".into());
        }
        if self.rows == 0 || self.cols == 0 {
            return Err("element grid empty".into());
        }
        if self.pitch_m <= 0.0 {
            return Err("pitch must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.efficiency) {
            return Err("efficiency outside [0,1]".into());
        }
        if self.capabilities.is_empty() {
            return Err("no control capabilities".into());
        }
        if self.config_slots == 0 {
            return Err("must store at least one configuration".into());
        }
        if self.is_passive() && self.config_slots != 1 {
            return Err("passive designs store exactly one configuration".into());
        }
        if self.is_passive() && self.power_mw != 0.0 {
            return Err("passive designs draw no power".into());
        }
        if self.cost_per_element_usd < 0.0 || self.base_cost_usd < 0.0 {
            return Err("costs must be non-negative".into());
        }
        if let Some(bits) = self.phase_bits() {
            if bits == 0 || bits > 16 {
                return Err("phase bits must be in 1..=16".into());
            }
        }
        if matches!(self.reconfigurability, Reconfigurability::Passive) != self.is_passive() {
            return Err("reconfigurability and control delay disagree about passivity".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surfos_em::band::NamedBand;

    pub(crate) fn demo_spec() -> HardwareSpec {
        HardwareSpec {
            model: "demo".into(),
            band: NamedBand::MmWave28GHz.band(),
            mode: SurfaceMode::Reflective,
            capabilities: vec![ControlCapability::Phase { bits: 2 }],
            reconfigurability: Reconfigurability::ElementWise,
            rows: 16,
            cols: 16,
            pitch_m: 0.0053,
            efficiency: 0.8,
            control_delay_us: Some(100),
            config_slots: 8,
            cost_per_element_usd: 2.0,
            base_cost_usd: 150.0,
            power_mw: 500.0,
        }
    }

    #[test]
    fn derived_quantities() {
        let s = demo_spec();
        assert_eq!(s.element_count(), 256);
        assert!((s.total_cost_usd() - (150.0 + 512.0)).abs() < 1e-9);
        assert!((s.area_m2() - (16.0 * 0.0053f64).powi(2)).abs() < 1e-12);
        assert_eq!(s.phase_bits(), Some(2));
        assert!(s.supports("phase"));
        assert!(!s.supports("amplitude"));
        assert!(!s.is_passive());
    }

    #[test]
    fn validation_passes_demo() {
        assert_eq!(demo_spec().validate(), Ok(()));
    }

    #[test]
    fn validation_catches_inconsistencies() {
        let mut s = demo_spec();
        s.rows = 0;
        assert!(s.validate().is_err());

        let mut s = demo_spec();
        s.control_delay_us = None; // passive but 8 slots, element-wise, 500 mW
        assert!(s.validate().is_err());

        let mut s = demo_spec();
        s.efficiency = 1.5;
        assert!(s.validate().is_err());

        let mut s = demo_spec();
        s.capabilities.clear();
        assert!(s.validate().is_err());
    }

    #[test]
    fn passive_consistency_enforced() {
        let mut s = demo_spec();
        s.control_delay_us = None;
        s.config_slots = 1;
        s.power_mw = 0.0;
        s.reconfigurability = Reconfigurability::Passive;
        assert_eq!(s.validate(), Ok(()));
    }

    #[test]
    fn offband_response_blocks_near_band() {
        let s = demo_spec(); // 28 GHz design
        let in_band = s.offband_transmission(28.0e9);
        let near = s.offband_transmission(29.0e9);
        let far = s.offband_transmission(60.0e9);
        assert!(in_band < near, "strongest interaction in band");
        assert!(near < far, "interaction falls off with detuning");
        assert!(far > 0.95, "far off-band nearly transparent");
        assert!(in_band >= (0.4f64).sqrt() - 1e-9, "never blocks fully");
    }

    #[test]
    fn capability_names() {
        assert_eq!(ControlCapability::Phase { bits: 1 }.name(), "phase");
        assert_eq!(ControlCapability::Polarization.name(), "polarization");
        assert_eq!(
            ControlCapability::Frequency {
                tunable_range_hz: 1e9
            }
            .name(),
            "frequency"
        );
    }
}
