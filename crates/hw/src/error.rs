//! Driver error type.

/// Errors returned by the unified driver primitives.
///
/// These are *recoverable, expected* conditions — a caller asking hardware
/// for something it cannot do — so they are values, not panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DriverError {
    /// The design does not support this control primitive (e.g.
    /// `set_amplitude` on a phase-only surface).
    UnsupportedControl {
        /// The primitive that was requested.
        primitive: &'static str,
    },
    /// The supplied configuration has the wrong element count.
    LengthMismatch {
        /// Element count the hardware has.
        expected: usize,
        /// Element count supplied.
        got: usize,
    },
    /// The configuration slot index is out of range for this hardware.
    InvalidSlot {
        /// The requested slot.
        slot: usize,
        /// Number of slots the hardware stores.
        slots: usize,
    },
    /// A passive surface has already been fabricated; its configuration is
    /// frozen ("infinite control delay").
    AlreadyFabricated,
    /// A passive surface must be fabricated before it can actuate.
    NotFabricated,
    /// A supplied value is outside the hardware's range.
    OutOfRange {
        /// Human-readable description of the violated constraint.
        what: String,
    },
    /// A wire-format message could not be decoded.
    Malformed {
        /// What was wrong.
        what: String,
    },
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::UnsupportedControl { primitive } => {
                write!(f, "hardware does not support {primitive}")
            }
            DriverError::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "configuration has {got} elements, hardware has {expected}"
                )
            }
            DriverError::InvalidSlot { slot, slots } => {
                write!(f, "slot {slot} out of range (hardware stores {slots})")
            }
            DriverError::AlreadyFabricated => {
                write!(
                    f,
                    "passive surface already fabricated; configuration frozen"
                )
            }
            DriverError::NotFabricated => {
                write!(f, "passive surface not fabricated yet")
            }
            DriverError::OutOfRange { what } => write!(f, "value out of range: {what}"),
            DriverError::Malformed { what } => write!(f, "malformed message: {what}"),
        }
    }
}

impl std::error::Error for DriverError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = DriverError::LengthMismatch {
            expected: 64,
            got: 16,
        };
        assert!(e.to_string().contains("16"));
        assert!(e.to_string().contains("64"));
        assert!(DriverError::AlreadyFabricated
            .to_string()
            .contains("frozen"));
        assert!(DriverError::UnsupportedControl {
            primitive: "set_amplitude"
        }
        .to_string()
        .contains("set_amplitude"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&DriverError::NotFabricated);
    }
}
