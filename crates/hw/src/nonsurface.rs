//! Non-surface hardware SurfOS manages or interacts with (paper §3.1):
//! APs, base stations, and external sensors that report measurements.

use serde::{Deserialize, Serialize};

/// What a non-surface device can contribute to SurfOS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SensingCapability {
    /// Per-client channel/RSS feedback via MAC-layer reports (802.11ad
    /// beam sweeps, cellular CSI).
    ChannelFeedback,
    /// Raw received-power measurements (LAVA-style power detectors).
    PowerDetector,
    /// 3-D geometry capture (AutoMS-style Lidar).
    Lidar,
    /// Doppler/range measurements (mmWave radar).
    Radar,
    /// Visual observation (cameras).
    Camera,
}

/// A registered non-surface device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NonSurfaceDevice {
    /// Unique device id, e.g. `"ap0"`.
    pub id: String,
    /// Device class.
    pub kind: NonSurfaceKind,
    /// What it can sense/report.
    pub capabilities: Vec<SensingCapability>,
}

/// Classes of non-surface hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NonSurfaceKind {
    /// Wi-Fi / WiGig access point.
    AccessPoint,
    /// Cellular base station.
    BaseStation,
    /// A standalone sensor.
    Sensor,
}

impl NonSurfaceDevice {
    /// An 802.11ad-class AP with MAC-layer channel feedback.
    pub fn ap(id: impl Into<String>) -> Self {
        NonSurfaceDevice {
            id: id.into(),
            kind: NonSurfaceKind::AccessPoint,
            capabilities: vec![SensingCapability::ChannelFeedback],
        }
    }

    /// A cellular base station with CSI feedback.
    pub fn base_station(id: impl Into<String>) -> Self {
        NonSurfaceDevice {
            id: id.into(),
            kind: NonSurfaceKind::BaseStation,
            capabilities: vec![SensingCapability::ChannelFeedback],
        }
    }

    /// A standalone sensor with the given capability.
    pub fn sensor(id: impl Into<String>, capability: SensingCapability) -> Self {
        NonSurfaceDevice {
            id: id.into(),
            kind: NonSurfaceKind::Sensor,
            capabilities: vec![capability],
        }
    }

    /// Whether the device offers a capability.
    pub fn has(&self, capability: SensingCapability) -> bool {
        self.capabilities.contains(&capability)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let ap = NonSurfaceDevice::ap("ap0");
        assert_eq!(ap.kind, NonSurfaceKind::AccessPoint);
        assert!(ap.has(SensingCapability::ChannelFeedback));
        assert!(!ap.has(SensingCapability::Lidar));

        let lidar = NonSurfaceDevice::sensor("l0", SensingCapability::Lidar);
        assert_eq!(lidar.kind, NonSurfaceKind::Sensor);
        assert!(lidar.has(SensingCapability::Lidar));

        let bs = NonSurfaceDevice::base_station("gnb0");
        assert_eq!(bs.kind, NonSurfaceKind::BaseStation);
    }
}
