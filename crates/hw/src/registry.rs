//! The device registry: every surface driver and non-surface device SurfOS
//! manages, addressable by id and discoverable by capability.

use crate::driver::SurfaceDriver;
use crate::nonsurface::NonSurfaceDevice;
use std::collections::BTreeMap;

/// The hardware manager's device table.
///
/// Surfaces are keyed by id and owned as boxed [`SurfaceDriver`] trait
/// objects — the registry neither knows nor cares which design is behind
/// each driver, which is the point of the unified interface.
#[derive(Default)]
pub struct DeviceRegistry {
    surfaces: BTreeMap<String, Box<dyn SurfaceDriver>>,
    others: BTreeMap<String, NonSurfaceDevice>,
}

impl DeviceRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a surface driver under an id.
    ///
    /// # Panics
    /// Panics on duplicate ids — device naming is the operator's
    /// responsibility and a collision is a deployment bug.
    pub fn register_surface(&mut self, id: impl Into<String>, driver: Box<dyn SurfaceDriver>) {
        let id = id.into();
        assert!(
            !self.surfaces.contains_key(&id),
            "duplicate surface id {id:?}"
        );
        self.surfaces.insert(id, driver);
    }

    /// Registers a non-surface device.
    ///
    /// # Panics
    /// Panics on duplicate ids.
    pub fn register_device(&mut self, device: NonSurfaceDevice) {
        assert!(
            !self.others.contains_key(&device.id),
            "duplicate device id {:?}",
            device.id
        );
        self.others.insert(device.id.clone(), device);
    }

    /// Removes a surface, returning its driver (e.g. for redeployment).
    pub fn unregister_surface(&mut self, id: &str) -> Option<Box<dyn SurfaceDriver>> {
        self.surfaces.remove(id)
    }

    /// Looks up a surface driver.
    pub fn surface(&self, id: &str) -> Option<&dyn SurfaceDriver> {
        self.surfaces.get(id).map(|b| b.as_ref())
    }

    /// Looks up a surface driver mutably.
    pub fn surface_mut(&mut self, id: &str) -> Option<&mut Box<dyn SurfaceDriver>> {
        self.surfaces.get_mut(id)
    }

    /// Looks up a non-surface device.
    pub fn device(&self, id: &str) -> Option<&NonSurfaceDevice> {
        self.others.get(id)
    }

    /// Iterates over surface ids (sorted).
    pub fn surface_ids(&self) -> impl Iterator<Item = &str> {
        self.surfaces.keys().map(String::as_str)
    }

    /// Iterates over surface drivers with their ids.
    pub fn surfaces(&self) -> impl Iterator<Item = (&str, &dyn SurfaceDriver)> {
        self.surfaces.iter().map(|(k, v)| (k.as_str(), v.as_ref()))
    }

    /// Iterates mutably over surface drivers with their ids.
    pub fn surfaces_mut(&mut self) -> impl Iterator<Item = (&str, &mut Box<dyn SurfaceDriver>)> {
        self.surfaces.iter_mut().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of registered surfaces.
    pub fn surface_count(&self) -> usize {
        self.surfaces.len()
    }

    /// Number of registered non-surface devices.
    pub fn device_count(&self) -> usize {
        self.others.len()
    }

    /// Surfaces whose design band contains `freq_hz` — the set a service
    /// on that spectrum can recruit.
    pub fn surfaces_serving(&self, freq_hz: f64) -> Vec<&str> {
        self.surfaces
            .iter()
            .filter(|(_, d)| d.spec().band.contains(freq_hz))
            .map(|(k, _)| k.as_str())
            .collect()
    }

    /// Advances all drivers' clocks; returns total committed writes.
    pub fn tick_all(&mut self, now: crate::driver::TimeMs) -> usize {
        self.surfaces.values_mut().map(|d| d.tick(now)).sum()
    }
}

impl std::fmt::Debug for DeviceRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceRegistry")
            .field("surfaces", &self.surfaces.keys().collect::<Vec<_>>())
            .field("devices", &self.others.keys().collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs;
    use crate::driver::{PassiveDriver, ProgrammableDriver};

    fn registry() -> DeviceRegistry {
        let mut r = DeviceRegistry::new();
        r.register_surface(
            "wall-a",
            Box::new(ProgrammableDriver::new(designs::scatter_mimo())),
        );
        r.register_surface(
            "wall-b",
            Box::new(PassiveDriver::new(designs::milli_mirror())),
        );
        r.register_device(NonSurfaceDevice::ap("ap0"));
        r
    }

    #[test]
    fn lookup_and_counts() {
        let r = registry();
        assert_eq!(r.surface_count(), 2);
        assert_eq!(r.device_count(), 1);
        assert!(r.surface("wall-a").is_some());
        assert!(r.surface("nope").is_none());
        assert!(r.device("ap0").is_some());
        let ids: Vec<_> = r.surface_ids().collect();
        assert_eq!(ids, vec!["wall-a", "wall-b"]);
    }

    #[test]
    fn capability_discovery_by_band() {
        let r = registry();
        // ScatterMIMO is a 5 GHz design; MilliMirror is 60 GHz.
        let at_5ghz = r.surfaces_serving(5.25e9);
        assert_eq!(at_5ghz, vec!["wall-a"]);
        let at_60ghz = r.surfaces_serving(60.48e9);
        assert_eq!(at_60ghz, vec!["wall-b"]);
        assert!(r.surfaces_serving(1e9).is_empty());
    }

    #[test]
    fn unregister_returns_driver() {
        let mut r = registry();
        let d = r.unregister_surface("wall-a").expect("present");
        assert_eq!(d.spec().model, "ScatterMIMO");
        assert_eq!(r.surface_count(), 1);
        assert!(r.unregister_surface("wall-a").is_none());
    }

    #[test]
    fn tick_all_commits_pending() {
        let mut r = registry();
        let n = {
            let d = r.surface_mut("wall-a").unwrap();
            let n = d.spec().element_count();
            d.shift_phase(0, &vec![1.0; n], 0).unwrap();
            n
        };
        assert_eq!(r.tick_all(1_000_000), 1);
        let d = r.surface("wall-a").unwrap();
        assert_eq!(d.stored_config(0).unwrap().unwrap().len(), n);
    }

    #[test]
    #[should_panic(expected = "duplicate surface id")]
    fn duplicate_surface_rejected() {
        let mut r = registry();
        r.register_surface(
            "wall-a",
            Box::new(ProgrammableDriver::new(designs::scatter_mimo())),
        );
    }

    #[test]
    #[should_panic(expected = "duplicate device id")]
    fn duplicate_device_rejected() {
        let mut r = registry();
        r.register_device(NonSurfaceDevice::ap("ap0"));
    }
}
