//! Surface configurations: the input to every driver primitive.
//!
//! "One configuration is an array of signal property alteration values for
//! each surface element, e.g., phase shift values" (paper §3.1). A
//! [`SurfaceConfig`] is exactly that, with optional surface-wide frequency
//! and polarization settings for the designs that control those.

use serde::{Deserialize, Serialize};
use surfos_em::complex::Complex;
use surfos_em::phase::wrap_phase;

/// The programmed state of one element.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ElementState {
    /// Phase shift in radians, `[0, 2π)`.
    pub phase: f64,
    /// Amplitude factor in `[0, 1]`.
    pub amplitude: f64,
}

impl ElementState {
    /// A pure phase shift at unit amplitude.
    pub fn phase_only(phase: f64) -> Self {
        ElementState {
            phase: wrap_phase(phase),
            amplitude: 1.0,
        }
    }

    /// The identity state: no alteration.
    pub const IDENTITY: ElementState = ElementState {
        phase: 0.0,
        amplitude: 1.0,
    };

    /// The complex element response this state realizes.
    pub fn response(&self) -> Complex {
        Complex::from_polar(self.amplitude, self.phase)
    }
}

/// A complete surface configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurfaceConfig {
    /// Per-element states, row-major.
    pub elements: Vec<ElementState>,
    /// Surface-wide resonance shift for frequency-control designs, hertz.
    pub frequency_shift_hz: Option<f64>,
    /// Surface-wide polarization rotation for polarization designs, rad.
    pub polarization_rot: Option<f64>,
}

impl SurfaceConfig {
    /// An identity configuration for `n` elements.
    pub fn identity(n: usize) -> Self {
        SurfaceConfig {
            elements: vec![ElementState::IDENTITY; n],
            frequency_shift_hz: None,
            polarization_rot: None,
        }
    }

    /// A pure-phase configuration from a phase array.
    pub fn from_phases(phases: &[f64]) -> Self {
        SurfaceConfig {
            elements: phases
                .iter()
                .map(|&p| ElementState::phase_only(p))
                .collect(),
            frequency_shift_hz: None,
            polarization_rot: None,
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// True when the config has no elements.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// The phase array.
    pub fn phases(&self) -> Vec<f64> {
        self.elements.iter().map(|e| e.phase).collect()
    }

    /// The complex response array this configuration realizes.
    pub fn responses(&self) -> Vec<Complex> {
        self.elements.iter().map(ElementState::response).collect()
    }

    /// Validates element values (finite, amplitude within `[0, 1]`).
    pub fn validate(&self) -> Result<(), String> {
        if self.elements.is_empty() {
            return Err("configuration has no elements".into());
        }
        for (i, e) in self.elements.iter().enumerate() {
            if !e.phase.is_finite() {
                return Err(format!("element {i}: non-finite phase"));
            }
            if !e.amplitude.is_finite() || !(0.0..=1.0).contains(&e.amplitude) {
                return Err(format!(
                    "element {i}: amplitude {} outside [0,1]",
                    e.amplitude
                ));
            }
        }
        if let Some(f) = self.frequency_shift_hz {
            if !f.is_finite() {
                return Err("non-finite frequency shift".into());
            }
        }
        if let Some(p) = self.polarization_rot {
            if !p.is_finite() {
                return Err("non-finite polarization rotation".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn identity_is_transparent() {
        let c = SurfaceConfig::identity(4);
        assert_eq!(c.len(), 4);
        for r in c.responses() {
            assert!((r - Complex::ONE).abs() < 1e-12);
        }
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn from_phases_wraps() {
        let c = SurfaceConfig::from_phases(&[-PI, 3.0 * PI]);
        assert!((c.elements[0].phase - PI).abs() < 1e-12);
        assert!((c.elements[1].phase - PI).abs() < 1e-12);
    }

    #[test]
    fn responses_have_configured_magnitude() {
        let mut c = SurfaceConfig::identity(2);
        c.elements[1].amplitude = 0.5;
        c.elements[1].phase = PI / 2.0;
        let r = c.responses();
        assert!((r[1].abs() - 0.5).abs() < 1e-12);
        assert!((r[1].arg() - PI / 2.0).abs() < 1e-12);
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut c = SurfaceConfig::identity(2);
        c.elements[0].amplitude = 1.5;
        assert!(c.validate().is_err());

        let mut c = SurfaceConfig::identity(2);
        c.elements[1].phase = f64::NAN;
        assert!(c.validate().is_err());

        let c = SurfaceConfig {
            elements: vec![],
            frequency_shift_hz: None,
            polarization_rot: None,
        };
        assert!(c.validate().is_err());

        let mut c = SurfaceConfig::identity(1);
        c.frequency_shift_hz = Some(f64::INFINITY);
        assert!(c.validate().is_err());
    }

    #[test]
    fn phases_roundtrip() {
        let phases = [0.1, 1.0, 2.0, 3.0];
        let c = SurfaceConfig::from_phases(&phases);
        for (a, b) in c.phases().iter().zip(&phases) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
