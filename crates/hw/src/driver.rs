//! The unified surface driver interface.
//!
//! Drivers mask hardware details behind the paper's file-system-like
//! primitives — `shift_phase()`, `set_amplitude()`, … — and implement the
//! decoupled control/data plane: configurations are *loaded* into local
//! slots (control plane, subject to the hardware's control delay) and a
//! slot is *activated* locally (data plane, e.g. from endpoint feedback).
//!
//! Two implementations cover the design space of Table 1:
//! [`ProgrammableDriver`] for runtime-reconfigurable designs and
//! [`PassiveDriver`] for fabrication-time-configured designs.

use crate::config::SurfaceConfig;
use crate::error::DriverError;
use crate::spec::HardwareSpec;
use surfos_em::complex::Complex;

/// Milliseconds of simulation time. The kernel owns the clock; drivers
/// only compare instants.
pub type TimeMs = u64;

/// The unified driver interface every surface exposes, regardless of
/// design (paper §3.1).
pub trait SurfaceDriver: Send {
    /// The hardware specification this driver manages.
    fn spec(&self) -> &HardwareSpec;

    /// Loads a full configuration into a local slot. The write lands after
    /// the hardware's control delay (see [`tick`](Self::tick)); for
    /// passive hardware this is only possible before fabrication.
    fn load_config(
        &mut self,
        slot: usize,
        config: SurfaceConfig,
        now: TimeMs,
    ) -> Result<(), DriverError>;

    /// Convenience primitive: loads a pure phase configuration
    /// (`shift_phase()` in the paper's API sketch).
    fn shift_phase(&mut self, slot: usize, phases: &[f64], now: TimeMs) -> Result<(), DriverError> {
        if !self.spec().supports("phase") {
            return Err(DriverError::UnsupportedControl {
                primitive: "shift_phase",
            });
        }
        if phases.len() != self.spec().element_count() {
            return Err(DriverError::LengthMismatch {
                expected: self.spec().element_count(),
                got: phases.len(),
            });
        }
        self.load_config(slot, SurfaceConfig::from_phases(phases), now)
    }

    /// Convenience primitive: per-element amplitude control
    /// (`set_amplitude()`), keeping phases from the slot's current config.
    fn set_amplitude(
        &mut self,
        slot: usize,
        amplitudes: &[f64],
        now: TimeMs,
    ) -> Result<(), DriverError> {
        if !self.spec().supports("amplitude") {
            return Err(DriverError::UnsupportedControl {
                primitive: "set_amplitude",
            });
        }
        if amplitudes.len() != self.spec().element_count() {
            return Err(DriverError::LengthMismatch {
                expected: self.spec().element_count(),
                got: amplitudes.len(),
            });
        }
        if amplitudes.iter().any(|a| !(0.0..=1.0).contains(a)) {
            return Err(DriverError::OutOfRange {
                what: "amplitude outside [0, 1]".into(),
            });
        }
        let mut config = self
            .stored_config(slot)?
            .unwrap_or_else(|| SurfaceConfig::identity(self.spec().element_count()));
        for (e, &a) in config.elements.iter_mut().zip(amplitudes) {
            e.amplitude = a;
        }
        self.load_config(slot, config, now)
    }

    /// Surface-wide resonance shift (`set_frequency()`), for designs with
    /// frequency control (Scrolls).
    fn set_frequency(&mut self, slot: usize, shift_hz: f64, now: TimeMs)
        -> Result<(), DriverError>;

    /// Surface-wide polarization rotation (`set_polarization()`).
    fn set_polarization(
        &mut self,
        slot: usize,
        rotation_rad: f64,
        now: TimeMs,
    ) -> Result<(), DriverError>;

    /// Activates a stored configuration slot (the surface's local,
    /// real-time action — no control delay).
    fn activate_slot(&mut self, slot: usize) -> Result<(), DriverError>;

    /// The currently active slot.
    fn active_slot(&self) -> usize;

    /// The configuration stored in a slot, if any has been committed.
    fn stored_config(&self, slot: usize) -> Result<Option<SurfaceConfig>, DriverError>;

    /// Advances driver time: commits pending (delayed) writes whose control
    /// delay has elapsed. Returns the number of writes committed.
    fn tick(&mut self, now: TimeMs) -> usize;

    /// The element responses the hardware is *actually realizing* right
    /// now: active slot's configuration, projected to the design's
    /// granularity and quantization. This is what the channel simulator
    /// consumes.
    fn realized_response(&self) -> Vec<Complex>;

    /// The surface-wide polarization rotation (radians) the active slot
    /// realizes, for designs with polarization control. Zero otherwise.
    fn realized_polarization(&self) -> f64 {
        if !self.spec().supports("polarization") {
            return 0.0;
        }
        self.stored_config(self.active_slot())
            .ok()
            .flatten()
            .and_then(|c| c.polarization_rot)
            .unwrap_or(0.0)
    }

    /// The surface-wide resonance shift (Hz) the active slot realizes,
    /// for designs with frequency control. Zero otherwise.
    fn realized_frequency_shift(&self) -> f64 {
        if !self.spec().supports("frequency") {
            return 0.0;
        }
        self.stored_config(self.active_slot())
            .ok()
            .flatten()
            .and_then(|c| c.frequency_shift_hz)
            .unwrap_or(0.0)
    }

    /// Downcast hook for driver-specific operations (e.g.
    /// [`PassiveDriver::fabricate`]) on a registered trait object.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

fn check_slot(spec: &HardwareSpec, slot: usize) -> Result<(), DriverError> {
    if slot >= spec.config_slots {
        Err(DriverError::InvalidSlot {
            slot,
            slots: spec.config_slots,
        })
    } else {
        Ok(())
    }
}

/// Projects a configuration to hardware granularity + quantization.
///
/// The realized response reports the *programmed* state (amplitude and
/// quantized phase). Physical element losses (efficiency) are the channel
/// model's job — applying them here too would double-count them.
fn realize(spec: &HardwareSpec, config: &SurfaceConfig) -> Vec<Complex> {
    let bits = spec.phase_bits().unwrap_or(0);
    let phases = config.phases();
    let projected =
        spec.reconfigurability
            .project_phases(&phases, spec.rows, spec.cols, bits.max(1));
    projected
        .iter()
        .zip(&config.elements)
        .map(|(&p, e)| Complex::from_polar(e.amplitude.min(1.0), p))
        .collect()
}

/// A pending, control-delayed configuration write.
#[derive(Debug, Clone)]
struct PendingWrite {
    commit_at: TimeMs,
    slot: usize,
    config: SurfaceConfig,
}

/// Driver for runtime-reconfigurable surfaces.
#[derive(Debug)]
pub struct ProgrammableDriver {
    spec: HardwareSpec,
    slots: Vec<Option<SurfaceConfig>>,
    active: usize,
    pending: Vec<PendingWrite>,
}

impl ProgrammableDriver {
    /// Creates a driver for a programmable spec.
    ///
    /// # Panics
    /// Panics if the spec is passive or fails validation — constructing a
    /// driver for an invalid spec is a programming error, not a runtime
    /// condition.
    pub fn new(spec: HardwareSpec) -> Self {
        spec.validate().expect("invalid hardware spec");
        assert!(!spec.is_passive(), "use PassiveDriver for passive designs");
        let slots = vec![None; spec.config_slots];
        ProgrammableDriver {
            spec,
            slots,
            active: 0,
            pending: Vec::new(),
        }
    }

    /// Number of writes still waiting on the control delay.
    pub fn pending_writes(&self) -> usize {
        self.pending.len()
    }
}

impl SurfaceDriver for ProgrammableDriver {
    fn spec(&self) -> &HardwareSpec {
        &self.spec
    }

    fn load_config(
        &mut self,
        slot: usize,
        config: SurfaceConfig,
        now: TimeMs,
    ) -> Result<(), DriverError> {
        check_slot(&self.spec, slot)?;
        if config.len() != self.spec.element_count() {
            return Err(DriverError::LengthMismatch {
                expected: self.spec.element_count(),
                got: config.len(),
            });
        }
        config
            .validate()
            .map_err(|what| DriverError::OutOfRange { what })?;
        let delay_us = self.spec.control_delay_us.expect("programmable spec");
        let commit_at = now + delay_us.div_ceil(1000);
        // A newer write to the same slot supersedes an older pending one.
        self.pending.retain(|p| p.slot != slot);
        self.pending.push(PendingWrite {
            commit_at,
            slot,
            config,
        });
        Ok(())
    }

    fn set_frequency(
        &mut self,
        slot: usize,
        shift_hz: f64,
        now: TimeMs,
    ) -> Result<(), DriverError> {
        if !self.spec.supports("frequency") {
            return Err(DriverError::UnsupportedControl {
                primitive: "set_frequency",
            });
        }
        check_slot(&self.spec, slot)?;
        let range = self
            .spec
            .capabilities
            .iter()
            .find_map(|c| match c {
                crate::spec::ControlCapability::Frequency { tunable_range_hz } => {
                    Some(*tunable_range_hz)
                }
                _ => None,
            })
            .expect("frequency capability present");
        if shift_hz.abs() > range / 2.0 {
            return Err(DriverError::OutOfRange {
                what: format!("frequency shift {shift_hz} Hz beyond ±{} Hz", range / 2.0),
            });
        }
        let mut config = self
            .stored_config(slot)?
            .unwrap_or_else(|| SurfaceConfig::identity(self.spec.element_count()));
        config.frequency_shift_hz = Some(shift_hz);
        self.load_config(slot, config, now)
    }

    fn set_polarization(
        &mut self,
        slot: usize,
        rotation_rad: f64,
        now: TimeMs,
    ) -> Result<(), DriverError> {
        if !self.spec.supports("polarization") {
            return Err(DriverError::UnsupportedControl {
                primitive: "set_polarization",
            });
        }
        check_slot(&self.spec, slot)?;
        let mut config = self
            .stored_config(slot)?
            .unwrap_or_else(|| SurfaceConfig::identity(self.spec.element_count()));
        config.polarization_rot = Some(rotation_rad);
        self.load_config(slot, config, now)
    }

    fn activate_slot(&mut self, slot: usize) -> Result<(), DriverError> {
        check_slot(&self.spec, slot)?;
        self.active = slot;
        Ok(())
    }

    fn active_slot(&self) -> usize {
        self.active
    }

    fn stored_config(&self, slot: usize) -> Result<Option<SurfaceConfig>, DriverError> {
        check_slot(&self.spec, slot)?;
        Ok(self.slots[slot].clone())
    }

    fn tick(&mut self, now: TimeMs) -> usize {
        let mut committed = 0;
        let mut remaining = Vec::with_capacity(self.pending.len());
        for w in self.pending.drain(..) {
            if w.commit_at <= now {
                self.slots[w.slot] = Some(w.config);
                committed += 1;
            } else {
                remaining.push(w);
            }
        }
        self.pending = remaining;
        committed
    }

    fn realized_response(&self) -> Vec<Complex> {
        match &self.slots[self.active] {
            Some(cfg) => realize(&self.spec, cfg),
            // No configuration committed yet: hardware powers up in its
            // identity (specular) state.
            None => vec![Complex::ONE; self.spec.element_count()],
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Driver for passive (fabrication-time configured) surfaces.
///
/// The configuration may be written freely until [`fabricate`] is called;
/// afterwards every write fails with [`DriverError::AlreadyFabricated`] —
/// the paper's "infinite control delay", ROM versus RAM.
///
/// [`fabricate`]: PassiveDriver::fabricate
#[derive(Debug)]
pub struct PassiveDriver {
    spec: HardwareSpec,
    config: Option<SurfaceConfig>,
    fabricated: bool,
}

impl PassiveDriver {
    /// Creates a driver for a passive spec (not yet fabricated).
    ///
    /// # Panics
    /// Panics if the spec is programmable or invalid.
    pub fn new(spec: HardwareSpec) -> Self {
        spec.validate().expect("invalid hardware spec");
        assert!(
            spec.is_passive(),
            "use ProgrammableDriver for programmable designs"
        );
        PassiveDriver {
            spec,
            config: None,
            fabricated: false,
        }
    }

    /// Freezes the current configuration into the physical pattern.
    ///
    /// # Errors
    /// Fails if no configuration has been loaded or if already fabricated.
    pub fn fabricate(&mut self) -> Result<(), DriverError> {
        if self.fabricated {
            return Err(DriverError::AlreadyFabricated);
        }
        if self.config.is_none() {
            return Err(DriverError::NotFabricated);
        }
        self.fabricated = true;
        Ok(())
    }

    /// Whether the surface has been fabricated.
    pub fn is_fabricated(&self) -> bool {
        self.fabricated
    }
}

impl SurfaceDriver for PassiveDriver {
    fn spec(&self) -> &HardwareSpec {
        &self.spec
    }

    fn load_config(
        &mut self,
        slot: usize,
        config: SurfaceConfig,
        _now: TimeMs,
    ) -> Result<(), DriverError> {
        check_slot(&self.spec, slot)?;
        if self.fabricated {
            return Err(DriverError::AlreadyFabricated);
        }
        if config.len() != self.spec.element_count() {
            return Err(DriverError::LengthMismatch {
                expected: self.spec.element_count(),
                got: config.len(),
            });
        }
        config
            .validate()
            .map_err(|what| DriverError::OutOfRange { what })?;
        self.config = Some(config);
        Ok(())
    }

    fn set_frequency(&mut self, _: usize, _: f64, _: TimeMs) -> Result<(), DriverError> {
        Err(DriverError::UnsupportedControl {
            primitive: "set_frequency",
        })
    }

    fn set_polarization(&mut self, _: usize, _: f64, _: TimeMs) -> Result<(), DriverError> {
        Err(DriverError::UnsupportedControl {
            primitive: "set_polarization",
        })
    }

    fn activate_slot(&mut self, slot: usize) -> Result<(), DriverError> {
        check_slot(&self.spec, slot) // slot 0 is the only one; always active
    }

    fn active_slot(&self) -> usize {
        0
    }

    fn stored_config(&self, slot: usize) -> Result<Option<SurfaceConfig>, DriverError> {
        check_slot(&self.spec, slot)?;
        Ok(self.config.clone())
    }

    fn tick(&mut self, _now: TimeMs) -> usize {
        0 // nothing is ever pending
    }

    fn realized_response(&self) -> Vec<Complex> {
        match &self.config {
            Some(cfg) => realize(&self.spec, cfg),
            None => vec![Complex::ONE; self.spec.element_count()],
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::granularity::Reconfigurability;
    use crate::spec::{ControlCapability, SurfaceMode};
    use std::f64::consts::PI;
    use surfos_em::band::NamedBand;

    fn prog_spec() -> HardwareSpec {
        HardwareSpec {
            model: "prog-test".into(),
            band: NamedBand::MmWave28GHz.band(),
            mode: SurfaceMode::Reflective,
            capabilities: vec![
                ControlCapability::Phase { bits: 2 },
                ControlCapability::Amplitude { levels: 8 },
            ],
            reconfigurability: Reconfigurability::ElementWise,
            rows: 2,
            cols: 2,
            pitch_m: 0.005,
            efficiency: 0.8,
            control_delay_us: Some(2000), // 2 ms
            config_slots: 4,
            cost_per_element_usd: 2.0,
            base_cost_usd: 100.0,
            power_mw: 300.0,
        }
    }

    fn passive_spec() -> HardwareSpec {
        HardwareSpec {
            model: "passive-test".into(),
            band: NamedBand::MmWave60GHz.band(),
            mode: SurfaceMode::Reflective,
            capabilities: vec![ControlCapability::Phase { bits: 2 }],
            reconfigurability: Reconfigurability::Passive,
            rows: 2,
            cols: 2,
            pitch_m: 0.0025,
            efficiency: 0.9,
            control_delay_us: None,
            config_slots: 1,
            cost_per_element_usd: 0.001,
            base_cost_usd: 5.0,
            power_mw: 0.0,
        }
    }

    #[test]
    fn control_delay_gates_commit() {
        let mut d = ProgrammableDriver::new(prog_spec());
        d.shift_phase(0, &[0.0, PI, 0.0, PI], 1000).unwrap();
        assert_eq!(d.pending_writes(), 1);
        // Before the delay elapses the slot is still empty.
        assert_eq!(d.tick(1001), 0);
        assert!(d.stored_config(0).unwrap().is_none());
        // After 2 ms it lands.
        assert_eq!(d.tick(1002), 1);
        let cfg = d.stored_config(0).unwrap().expect("committed");
        assert!((cfg.elements[1].phase - PI).abs() < 1e-12);
        assert_eq!(d.pending_writes(), 0);
    }

    #[test]
    fn newer_write_supersedes_pending() {
        let mut d = ProgrammableDriver::new(prog_spec());
        d.shift_phase(0, &[0.0; 4], 0).unwrap();
        d.shift_phase(0, &[PI; 4], 1).unwrap();
        assert_eq!(d.pending_writes(), 1);
        d.tick(100);
        let cfg = d.stored_config(0).unwrap().unwrap();
        assert!((cfg.elements[0].phase - PI).abs() < 1e-12);
    }

    #[test]
    fn writes_to_different_slots_coexist() {
        let mut d = ProgrammableDriver::new(prog_spec());
        d.shift_phase(0, &[0.0; 4], 0).unwrap();
        d.shift_phase(1, &[PI; 4], 0).unwrap();
        assert_eq!(d.pending_writes(), 2);
        assert_eq!(d.tick(100), 2);
    }

    #[test]
    fn activation_is_immediate() {
        let mut d = ProgrammableDriver::new(prog_spec());
        d.shift_phase(2, &[PI; 4], 0).unwrap();
        d.tick(100);
        assert_eq!(d.active_slot(), 0);
        d.activate_slot(2).unwrap();
        assert_eq!(d.active_slot(), 2);
        let resp = d.realized_response();
        // 2-bit quantized π stays π; unit programmed magnitude.
        for r in resp {
            assert!((r.abs() - 1.0).abs() < 1e-12);
            assert!((surfos_em::phase::wrap_phase(r.arg()) - PI).abs() < 1e-9);
        }
    }

    #[test]
    fn realized_response_quantizes() {
        let mut d = ProgrammableDriver::new(prog_spec()); // 2-bit
        d.shift_phase(0, &[0.3, 1.7, 3.3, 4.9], 0).unwrap();
        d.tick(100);
        let resp = d.realized_response();
        for r in &resp {
            let phase = surfos_em::phase::wrap_phase(r.arg());
            let q = surfos_em::phase::quantize_phase(phase, 2);
            assert!(
                (phase - q).abs() < 1e-9,
                "phase {phase} not on 2-bit lattice"
            );
        }
    }

    #[test]
    fn unconfigured_hardware_is_specular() {
        let d = ProgrammableDriver::new(prog_spec());
        for r in d.realized_response() {
            assert!((r - Complex::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn invalid_slot_rejected() {
        let mut d = ProgrammableDriver::new(prog_spec());
        let err = d.shift_phase(9, &[0.0; 4], 0).unwrap_err();
        assert!(matches!(
            err,
            DriverError::InvalidSlot { slot: 9, slots: 4 }
        ));
        assert!(matches!(
            d.activate_slot(4).unwrap_err(),
            DriverError::InvalidSlot { .. }
        ));
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut d = ProgrammableDriver::new(prog_spec());
        let err = d.shift_phase(0, &[0.0; 3], 0).unwrap_err();
        assert!(matches!(
            err,
            DriverError::LengthMismatch {
                expected: 4,
                got: 3
            }
        ));
    }

    #[test]
    fn amplitude_preserves_phase() {
        let mut d = ProgrammableDriver::new(prog_spec());
        d.shift_phase(0, &[PI; 4], 0).unwrap();
        d.tick(100);
        d.set_amplitude(0, &[0.5, 1.0, 0.0, 0.25], 100).unwrap();
        d.tick(200);
        let cfg = d.stored_config(0).unwrap().unwrap();
        assert!((cfg.elements[0].amplitude - 0.5).abs() < 1e-12);
        assert!((cfg.elements[0].phase - PI).abs() < 1e-12);
    }

    #[test]
    fn amplitude_out_of_range_rejected() {
        let mut d = ProgrammableDriver::new(prog_spec());
        assert!(matches!(
            d.set_amplitude(0, &[1.5, 0.0, 0.0, 0.0], 0).unwrap_err(),
            DriverError::OutOfRange { .. }
        ));
    }

    #[test]
    fn unsupported_primitives_rejected() {
        let mut d = ProgrammableDriver::new(prog_spec());
        assert!(matches!(
            d.set_frequency(0, 1e6, 0).unwrap_err(),
            DriverError::UnsupportedControl { .. }
        ));
        assert!(matches!(
            d.set_polarization(0, 0.1, 0).unwrap_err(),
            DriverError::UnsupportedControl { .. }
        ));
    }

    #[test]
    fn frequency_control_when_supported() {
        let mut spec = prog_spec();
        spec.capabilities.push(ControlCapability::Frequency {
            tunable_range_hz: 2e9,
        });
        let mut d = ProgrammableDriver::new(spec);
        d.set_frequency(0, 0.5e9, 0).unwrap();
        d.tick(100);
        assert_eq!(
            d.stored_config(0).unwrap().unwrap().frequency_shift_hz,
            Some(0.5e9)
        );
        assert!(matches!(
            d.set_frequency(0, 1.5e9, 100).unwrap_err(),
            DriverError::OutOfRange { .. }
        ));
    }

    #[test]
    fn passive_lifecycle() {
        let mut d = PassiveDriver::new(passive_spec());
        // Cannot fabricate before a pattern is loaded.
        assert!(matches!(
            d.fabricate().unwrap_err(),
            DriverError::NotFabricated
        ));
        d.load_config(0, SurfaceConfig::from_phases(&[0.0, PI, 0.0, PI]), 0)
            .unwrap();
        // Design iteration: overwrite before fabrication is fine.
        d.load_config(0, SurfaceConfig::from_phases(&[PI; 4]), 0)
            .unwrap();
        d.fabricate().unwrap();
        assert!(d.is_fabricated());
        // Frozen afterwards.
        assert!(matches!(
            d.load_config(0, SurfaceConfig::identity(4), 0).unwrap_err(),
            DriverError::AlreadyFabricated
        ));
        assert!(matches!(
            d.fabricate().unwrap_err(),
            DriverError::AlreadyFabricated
        ));
        // But it actuates what was frozen.
        let resp = d.realized_response();
        assert!((surfos_em::phase::wrap_phase(resp[0].arg()) - PI).abs() < 1e-9);
        assert_eq!(d.tick(12345), 0);
    }

    #[test]
    fn passive_rejects_dynamic_primitives() {
        let mut d = PassiveDriver::new(passive_spec());
        assert!(d.set_frequency(0, 1.0, 0).is_err());
        assert!(d.set_polarization(0, 1.0, 0).is_err());
    }

    #[test]
    fn trait_object_usable() {
        let mut drivers: Vec<Box<dyn SurfaceDriver>> = vec![
            Box::new(ProgrammableDriver::new(prog_spec())),
            Box::new(PassiveDriver::new(passive_spec())),
        ];
        for d in &mut drivers {
            let n = d.spec().element_count();
            d.shift_phase(0, &vec![0.0; n], 0).unwrap();
            d.tick(1_000_000);
            assert_eq!(d.realized_response().len(), n);
        }
    }
}
