//! The configuration wire format.
//!
//! The control plane may live at the edge or in the cloud; surfaces have
//! tiny local controllers. Configurations therefore travel as compact
//! binary messages: quantized state indices packed at the design's native
//! bit depth, framed with a versioned header and a checksum. An element-
//! wise 2-bit config for a 4096-element surface is 1 KiB + 16 bytes —
//! small enough for a low-rate control channel.
//!
//! Layout (big-endian):
//!
//! ```text
//! magic  u32  = 0x53554646 ("SUFF")
//! ver    u8   = 1
//! flags  u8   (bit 0: has frequency shift; bit 1: has polarization)
//! slot   u16
//! count  u32  element count
//! bits   u8   phase bits (1..=16)
//! amp    u8   amplitude levels (0 = amplitude not encoded, all 1.0)
//! [freq f64]  present when flag bit 0
//! [pol  f64]  present when flag bit 1
//! payload     packed phase indices, then packed amplitude indices
//! crc    u32  FNV-1a over everything before it
//! ```

use crate::config::{ElementState, SurfaceConfig};
use crate::error::DriverError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use surfos_em::phase::{phase_from_state_index, phase_state_index};

const MAGIC: u32 = 0x5355_4646;
const VERSION: u8 = 1;

/// A decoded configuration message.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigFrame {
    /// Destination slot.
    pub slot: u16,
    /// The configuration.
    pub config: SurfaceConfig,
}

fn fnv1a(data: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in data {
        hash ^= b as u32;
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Packs `values` (each < 2^bits) at `bits` per value into bytes.
fn pack_bits(values: &[u32], bits: u8) -> Vec<u8> {
    let mut out = Vec::with_capacity((values.len() * bits as usize).div_ceil(8));
    let mut acc: u64 = 0;
    let mut nbits = 0u32;
    for &v in values {
        acc = (acc << bits) | (v as u64 & ((1u64 << bits) - 1));
        nbits += bits as u32;
        while nbits >= 8 {
            nbits -= 8;
            out.push(((acc >> nbits) & 0xff) as u8);
        }
    }
    if nbits > 0 {
        out.push(((acc << (8 - nbits)) & 0xff) as u8);
    }
    out
}

/// Unpacks `count` values at `bits` per value.
fn unpack_bits(data: &[u8], count: usize, bits: u8) -> Option<Vec<u32>> {
    let needed = (count * bits as usize).div_ceil(8);
    if data.len() < needed {
        return None;
    }
    let mut out = Vec::with_capacity(count);
    let mut acc: u64 = 0;
    let mut nbits = 0u32;
    let mut iter = data.iter();
    for _ in 0..count {
        while nbits < bits as u32 {
            acc = (acc << 8) | (*iter.next()? as u64);
            nbits += 8;
        }
        nbits -= bits as u32;
        out.push(((acc >> nbits) & ((1u64 << bits) - 1)) as u32);
    }
    Some(out)
}

/// Encodes a configuration for transmission to a surface controller.
///
/// `phase_bits` is the design's quantization depth; `amp_levels` the
/// number of amplitude levels (0 or 1 to skip amplitude encoding).
///
/// ```
/// use surfos_hw::wire::{encode, decode, ConfigFrame};
/// use surfos_hw::SurfaceConfig;
///
/// let frame = ConfigFrame { slot: 2, config: SurfaceConfig::from_phases(&[0.0, 3.14]) };
/// let bytes = encode(&frame, 2, 0);
/// let (decoded, bits, _) = decode(bytes).unwrap();
/// assert_eq!(decoded.slot, 2);
/// assert_eq!(bits, 2);
/// ```
///
/// # Panics
/// Panics if `phase_bits` is 0 or above 16 (spec validation catches this
/// earlier; reaching here is a bug).
pub fn encode(frame: &ConfigFrame, phase_bits: u8, amp_levels: u8) -> Bytes {
    assert!((1..=16).contains(&phase_bits), "phase bits out of range");
    let cfg = &frame.config;
    let mut buf = BytesMut::with_capacity(64 + cfg.len());
    buf.put_u32(MAGIC);
    buf.put_u8(VERSION);
    let mut flags = 0u8;
    if cfg.frequency_shift_hz.is_some() {
        flags |= 1;
    }
    if cfg.polarization_rot.is_some() {
        flags |= 2;
    }
    buf.put_u8(flags);
    buf.put_u16(frame.slot);
    buf.put_u32(cfg.len() as u32);
    buf.put_u8(phase_bits);
    let encode_amp = amp_levels >= 2;
    buf.put_u8(if encode_amp { amp_levels } else { 0 });
    if let Some(f) = cfg.frequency_shift_hz {
        buf.put_f64(f);
    }
    if let Some(p) = cfg.polarization_rot {
        buf.put_f64(p);
    }
    let phase_idx: Vec<u32> = cfg
        .elements
        .iter()
        .map(|e| phase_state_index(e.phase, phase_bits))
        .collect();
    buf.put_slice(&pack_bits(&phase_idx, phase_bits));
    if encode_amp {
        let max = (amp_levels - 1) as f64;
        let amp_bits = (32 - (amp_levels as u32 - 1).leading_zeros()) as u8;
        let amp_idx: Vec<u32> = cfg
            .elements
            .iter()
            .map(|e| (e.amplitude * max).round() as u32)
            .collect();
        buf.put_slice(&pack_bits(&amp_idx, amp_bits));
    }
    let crc = fnv1a(&buf);
    buf.put_u32(crc);
    buf.freeze()
}

/// Decodes a configuration message. Returns the frame and the quantization
/// parameters it carried.
pub fn decode(mut data: Bytes) -> Result<(ConfigFrame, u8, u8), DriverError> {
    let malformed = |what: &str| DriverError::Malformed { what: what.into() };
    let total = data.len();
    if total < 18 {
        return Err(malformed("too short"));
    }
    // Verify checksum first.
    let body = &data[..total - 4];
    let want_crc = u32::from_be_bytes(data[total - 4..].try_into().expect("4 bytes"));
    if fnv1a(body) != want_crc {
        return Err(malformed("checksum mismatch"));
    }
    if data.get_u32() != MAGIC {
        return Err(malformed("bad magic"));
    }
    if data.get_u8() != VERSION {
        return Err(malformed("unsupported version"));
    }
    let flags = data.get_u8();
    let slot = data.get_u16();
    let count = data.get_u32() as usize;
    if count == 0 || count > 1_000_000 {
        return Err(malformed("implausible element count"));
    }
    let phase_bits = data.get_u8();
    if !(1..=16).contains(&phase_bits) {
        return Err(malformed("phase bits out of range"));
    }
    let amp_levels = data.get_u8();
    let freq = if flags & 1 != 0 {
        if data.remaining() < 8 {
            return Err(malformed("truncated frequency field"));
        }
        Some(data.get_f64())
    } else {
        None
    };
    let pol = if flags & 2 != 0 {
        if data.remaining() < 8 {
            return Err(malformed("truncated polarization field"));
        }
        Some(data.get_f64())
    } else {
        None
    };
    let payload = &data[..data.len() - 4]; // exclude crc
    let phase_bytes = (count * phase_bits as usize).div_ceil(8);
    let phase_idx = unpack_bits(payload, count, phase_bits)
        .ok_or_else(|| malformed("truncated phase payload"))?;
    let amplitudes: Vec<f64> = if amp_levels >= 2 {
        let amp_bits = (32 - (amp_levels as u32 - 1).leading_zeros()) as u8;
        let rest = payload
            .get(phase_bytes..)
            .ok_or_else(|| malformed("truncated amplitude payload"))?;
        let idx = unpack_bits(rest, count, amp_bits)
            .ok_or_else(|| malformed("truncated amplitude payload"))?;
        let max = (amp_levels - 1) as f64;
        idx.into_iter().map(|i| (i as f64 / max).min(1.0)).collect()
    } else {
        vec![1.0; count]
    };
    let elements = phase_idx
        .into_iter()
        .zip(amplitudes)
        .map(|(pi, amplitude)| ElementState {
            phase: phase_from_state_index(pi, phase_bits),
            amplitude,
        })
        .collect();
    Ok((
        ConfigFrame {
            slot,
            config: SurfaceConfig {
                elements,
                frequency_shift_hz: freq,
                polarization_rot: pol,
            },
        },
        phase_bits,
        amp_levels,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::f64::consts::TAU;
    use surfos_em::phase::quantize_phase;

    fn frame(n: usize) -> ConfigFrame {
        let phases: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37) % TAU).collect();
        ConfigFrame {
            slot: 3,
            config: SurfaceConfig::from_phases(&phases),
        }
    }

    #[test]
    fn roundtrip_phase_only() {
        let f = frame(64);
        let bytes = encode(&f, 3, 0);
        let (decoded, bits, amp) = decode(bytes).unwrap();
        assert_eq!(bits, 3);
        assert_eq!(amp, 0);
        assert_eq!(decoded.slot, 3);
        assert_eq!(decoded.config.len(), 64);
        for (d, o) in decoded.config.elements.iter().zip(&f.config.elements) {
            assert!((d.phase - quantize_phase(o.phase, 3)).abs() < 1e-9);
            assert_eq!(d.amplitude, 1.0);
        }
    }

    #[test]
    fn roundtrip_with_amplitude_and_extras() {
        let mut f = frame(10);
        for (i, e) in f.config.elements.iter_mut().enumerate() {
            e.amplitude = i as f64 / 9.0;
        }
        f.config.frequency_shift_hz = Some(1.5e8);
        f.config.polarization_rot = Some(0.7);
        let bytes = encode(&f, 2, 8);
        let (decoded, _, amp) = decode(bytes).unwrap();
        assert_eq!(amp, 8);
        assert_eq!(decoded.config.frequency_shift_hz, Some(1.5e8));
        assert_eq!(decoded.config.polarization_rot, Some(0.7));
        for (d, o) in decoded.config.elements.iter().zip(&f.config.elements) {
            assert!((d.amplitude - o.amplitude).abs() <= 0.5 / 7.0 + 1e-9);
        }
    }

    #[test]
    fn wire_size_is_compact() {
        // 4096 elements at 2 bits: 1024 payload bytes + small framing.
        let f = frame(4096);
        let bytes = encode(&f, 2, 0);
        assert!(bytes.len() < 1024 + 32, "len={}", bytes.len());
    }

    #[test]
    fn corruption_detected() {
        let f = frame(16);
        let bytes = encode(&f, 2, 0);
        let mut raw = bytes.to_vec();
        raw[10] ^= 0xff;
        let err = decode(Bytes::from(raw)).unwrap_err();
        assert!(matches!(err, DriverError::Malformed { .. }));
    }

    #[test]
    fn truncation_detected() {
        let f = frame(16);
        let bytes = encode(&f, 2, 0);
        let raw = bytes.slice(..bytes.len() - 6);
        assert!(decode(raw).is_err());
    }

    #[test]
    fn bad_magic_detected() {
        let f = frame(4);
        let bytes = encode(&f, 1, 0);
        let mut raw = bytes.to_vec();
        raw[0] = 0x00;
        // fix the crc so only the magic is wrong
        let n = raw.len();
        let crc = super::fnv1a(&raw[..n - 4]);
        raw[n - 4..].copy_from_slice(&crc.to_be_bytes());
        let err = decode(Bytes::from(raw)).unwrap_err();
        assert_eq!(
            err,
            DriverError::Malformed {
                what: "bad magic".into()
            }
        );
    }

    #[test]
    fn pack_unpack_exact() {
        let values = vec![0u32, 1, 2, 3, 3, 2, 1, 0, 1];
        for bits in [2u8, 3, 5, 8] {
            let packed = pack_bits(&values, bits);
            let un = unpack_bits(&packed, values.len(), bits).unwrap();
            assert_eq!(un, values, "bits={bits}");
        }
    }

    proptest! {
        #[test]
        fn prop_roundtrip_any_config(
            phases in prop::collection::vec(0.0..6.2f64, 1..200),
            bits in 1u8..9,
            slot in 0u16..16,
        ) {
            let f = ConfigFrame { slot, config: SurfaceConfig::from_phases(&phases) };
            let bytes = encode(&f, bits, 0);
            let (decoded, got_bits, _) = decode(bytes).unwrap();
            prop_assert_eq!(got_bits, bits);
            prop_assert_eq!(decoded.slot, slot);
            prop_assert_eq!(decoded.config.len(), phases.len());
            for (d, p) in decoded.config.elements.iter().zip(&phases) {
                let q = quantize_phase(*p, bits);
                prop_assert!((d.phase - q).abs() < 1e-9);
            }
        }

        #[test]
        fn prop_decode_never_panics_on_garbage(
            bytes in prop::collection::vec(prop::num::u8::ANY, 0..512)
        ) {
            // Arbitrary input must be rejected gracefully, never panic.
            let _ = decode(Bytes::from(bytes));
        }

        #[test]
        fn prop_truncations_never_panic(
            phases in prop::collection::vec(0.0..6.2f64, 1..64),
            cut in 0usize..100,
        ) {
            let f = ConfigFrame { slot: 0, config: SurfaceConfig::from_phases(&phases) };
            let bytes = encode(&f, 2, 0);
            let cut = cut.min(bytes.len());
            let _ = decode(bytes.slice(..cut));
        }

        #[test]
        fn prop_pack_roundtrip(
            values in prop::collection::vec(0u32..256, 0..64),
            bits in 8u8..=8,
        ) {
            let packed = pack_bits(&values, bits);
            let un = unpack_bits(&packed, values.len(), bits).unwrap();
            prop_assert_eq!(un, values);
        }
    }
}
