//! Vertical wall panels and segment intersection.
//!
//! A [`Wall`] is a vertical rectangle: a 2-D segment in plan view extruded
//! from `z = 0` up to `height`. Ray–wall intersection is computed exactly:
//! the 2-D segment crossing is found in the plan view, then the z of the
//! 3-D ray at that parameter is checked against the wall's height.

use crate::bvh::Aabb;
use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

use crate::material::Material;

/// Endpoint-graze exclusion distance in metres: segment endpoints within
/// this of a wall plane do not count as crossings (devices mounted on a
/// wall must see through their own wall).
const GRAZE_MARGIN_M: f64 = 1e-3;

/// A vertical wall panel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Wall {
    /// One end of the wall's footprint (z is ignored; the wall starts at 0).
    pub a: Vec3,
    /// Other end of the footprint.
    pub b: Vec3,
    /// Wall height in metres.
    pub height: f64,
    /// Construction material.
    pub material: Material,
}

/// An intersection between a ray segment and a wall.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WallHit {
    /// Parameter along the ray segment (0 at origin, 1 at destination).
    pub t: f64,
    /// The 3-D intersection point.
    pub point: Vec3,
}

impl Wall {
    /// Creates a wall from two footprint endpoints, a height and a material.
    ///
    /// # Panics
    /// Panics on a degenerate (zero-length) footprint or non-positive height.
    pub fn new(a: Vec3, b: Vec3, height: f64, material: Material) -> Self {
        assert!(
            (a.flat() - b.flat()).norm() > 1e-9,
            "wall footprint is degenerate"
        );
        assert!(height > 0.0, "wall height must be positive");
        Wall {
            a: a.flat(),
            b: b.flat(),
            height,
            material,
        }
    }

    /// Wall footprint length in metres.
    pub fn length(&self) -> f64 {
        (self.b - self.a).norm()
    }

    /// The outward unit normal of the wall plane in plan view (one of the
    /// two; the sign is arbitrary but consistent).
    pub fn normal(&self) -> Vec3 {
        let d = (self.b - self.a).normalized();
        Vec3::new(-d.y, d.x, 0.0)
    }

    /// The midpoint of the wall footprint at half height — a convenient
    /// mounting anchor for surfaces.
    pub fn center(&self) -> Vec3 {
        let mid = self.a.lerp(self.b, 0.5);
        Vec3::new(mid.x, mid.y, self.height / 2.0)
    }

    /// The wall's bounding box: footprint extent × `[0, height]`, untight
    /// by nothing — callers pad it (see [`Aabb::grown`]) to cover the
    /// graze-margin overhang `intersect_segment` allows on `u`.
    pub fn aabb(&self) -> Aabb {
        let lo = self.a.min(self.b);
        let hi = self.a.max(self.b);
        Aabb::new(
            Vec3::new(lo.x, lo.y, 0.0),
            Vec3::new(hi.x, hi.y, self.height),
        )
    }

    /// The endpoint-graze margin on the wall parameter `u` (1 mm normalized
    /// by footprint length). Constant per wall — spatial indexes precompute
    /// it so candidate tests skip the square root.
    pub fn u_margin(&self) -> f64 {
        GRAZE_MARGIN_M / (self.b - self.a).norm().max(1e-9)
    }

    /// The endpoint-graze margin on the ray parameter `t` (1 mm normalized
    /// by plan-view segment length). Constant per segment — computed once
    /// per query when testing many walls.
    pub fn t_margin(from: Vec3, to: Vec3) -> f64 {
        GRAZE_MARGIN_M / (to.flat() - from.flat()).norm().max(1e-9)
    }

    /// Tests whether the open segment `from → to` crosses this wall, and if
    /// so where.
    ///
    /// Endpoints *on* the wall (within 1 mm) do not count as crossings —
    /// a transmitter or surface mounted on a wall must not be considered
    /// blocked by its own mounting wall.
    pub fn intersect_segment(&self, from: Vec3, to: Vec3) -> Option<WallHit> {
        self.intersect_segment_impl(from, to, None)
    }

    /// [`Wall::intersect_segment`] with the graze margins supplied by the
    /// caller (see [`Wall::t_margin`] / [`Wall::u_margin`]). Passing the
    /// margins those methods compute yields bit-identical results while
    /// hoisting both square roots out of per-wall inner loops.
    pub fn intersect_segment_with_margins(
        &self,
        from: Vec3,
        to: Vec3,
        t_margin: f64,
        u_margin: f64,
    ) -> Option<WallHit> {
        self.intersect_segment_impl(from, to, Some((t_margin, u_margin)))
    }

    fn intersect_segment_impl(
        &self,
        from: Vec3,
        to: Vec3,
        margins: Option<(f64, f64)>,
    ) -> Option<WallHit> {
        // 2-D segment intersection in plan view.
        let p = from.flat();
        let r = to.flat() - p;
        let q = self.a;
        let s = self.b - q;

        let rxs = r.x * s.y - r.y * s.x;
        if rxs.abs() < 1e-12 {
            return None; // parallel or colinear: treat as no crossing
        }
        let qp = q - p;
        let t = (qp.x * s.y - qp.y * s.x) / rxs;
        let u = (qp.x * r.y - qp.y * r.x) / rxs;

        // Margins: exclude endpoint grazes (1 mm normalized against segment
        // lengths) so devices mounted on walls see through their own wall.
        let (t_margin, u_margin) = match margins {
            Some(m) => m,
            None => (Self::t_margin(from, to), self.u_margin()),
        };
        if t <= t_margin || t >= 1.0 - t_margin {
            return None;
        }
        if !(u >= -u_margin && u <= 1.0 + u_margin) {
            return None;
        }

        // Height check on the true 3-D ray.
        let z = from.z + (to.z - from.z) * t;
        if z < 0.0 || z > self.height {
            return None;
        }

        let point = from.lerp(to, t);
        Some(WallHit { t, point })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn wall() -> Wall {
        Wall::new(
            Vec3::xy(0.0, 0.0),
            Vec3::xy(4.0, 0.0),
            3.0,
            Material::Drywall,
        )
    }

    #[test]
    fn crossing_detected() {
        let w = wall();
        let hit = w
            .intersect_segment(Vec3::new(2.0, -1.0, 1.5), Vec3::new(2.0, 1.0, 1.5))
            .expect("must hit");
        assert!((hit.t - 0.5).abs() < 1e-9);
        assert!((hit.point - Vec3::new(2.0, 0.0, 1.5)).norm() < 1e-9);
    }

    #[test]
    fn parallel_misses() {
        let w = wall();
        assert!(w
            .intersect_segment(Vec3::new(0.0, 1.0, 1.0), Vec3::new(4.0, 1.0, 1.0))
            .is_none());
    }

    #[test]
    fn beyond_footprint_misses() {
        let w = wall();
        assert!(w
            .intersect_segment(Vec3::new(5.0, -1.0, 1.0), Vec3::new(5.0, 1.0, 1.0))
            .is_none());
    }

    #[test]
    fn over_the_wall_misses() {
        let w = wall(); // 3 m tall
        assert!(w
            .intersect_segment(Vec3::new(2.0, -1.0, 4.0), Vec3::new(2.0, 1.0, 4.0))
            .is_none());
        // A slanted ray whose crossing point is above the top of the wall.
        assert!(w
            .intersect_segment(Vec3::new(2.0, -0.1, 3.2), Vec3::new(2.0, 1.9, 5.2))
            .is_none());
    }

    #[test]
    fn endpoint_on_wall_does_not_count() {
        let w = wall();
        // Transmitter mounted exactly on the wall plane.
        let on_wall = Vec3::new(2.0, 0.0, 1.5);
        assert!(w
            .intersect_segment(on_wall, Vec3::new(2.0, 2.0, 1.5))
            .is_none());
        assert!(w
            .intersect_segment(Vec3::new(2.0, -2.0, 1.5), on_wall)
            .is_none());
    }

    #[test]
    fn slanted_ray_height_interpolated() {
        let w = wall();
        // Ray rises from 0.5 to 2.5; crosses wall plane at z=1.5, inside.
        assert!(w
            .intersect_segment(Vec3::new(2.0, -1.0, 0.5), Vec3::new(2.0, 1.0, 2.5))
            .is_some());
    }

    #[test]
    fn normal_is_unit_and_perpendicular() {
        let w = Wall::new(
            Vec3::xy(1.0, 1.0),
            Vec3::xy(3.0, 4.0),
            2.5,
            Material::Concrete,
        );
        let n = w.normal();
        assert!((n.norm() - 1.0).abs() < 1e-12);
        assert!(n.dot(w.b - w.a).abs() < 1e-12);
    }

    #[test]
    fn center_is_midpoint_half_height() {
        let w = wall();
        assert!((w.center() - Vec3::new(2.0, 0.0, 1.5)).norm() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_wall_rejected() {
        let _ = Wall::new(Vec3::xy(1.0, 1.0), Vec3::xy(1.0, 1.0), 3.0, Material::Wood);
    }

    proptest! {
        #[test]
        fn prop_hit_point_is_on_wall_plane(
            y0 in -5.0..-0.1f64, y1 in 0.1..5.0f64, x in 0.2..3.8f64,
            z0 in 0.1..2.9f64, z1 in 0.1..2.9f64,
        ) {
            let w = wall();
            let from = Vec3::new(x, y0, z0);
            let to = Vec3::new(x, y1, z1);
            let hit = w.intersect_segment(from, to);
            prop_assert!(hit.is_some());
            let h = hit.unwrap();
            prop_assert!(h.point.y.abs() < 1e-9);
            prop_assert!(h.point.z >= 0.0 && h.point.z <= 3.0);
            prop_assert!(h.t > 0.0 && h.t < 1.0);
        }
    }
}
