//! Axis-aligned bounding boxes and a packed, SAH-built bounding-volume
//! hierarchy for conservative segment queries.
//!
//! Ray tracing asks one geometric question over and over: *which primitives
//! might this segment touch?* A brute scan answers it in `O(n)` per segment;
//! the [`Bvh`] here answers it in `O(log n + hits)`. Queries are
//! **conservative**: they yield a superset of the truly-intersected
//! primitives (a candidate may still miss under the exact test), and never
//! drop a true hit — callers run the exact intersection test on each
//! candidate, so results are bit-identical to the brute scan.
//!
//! ## Construction: binned SAH, median fallback
//!
//! [`Bvh::build`] partitions with the **surface-area heuristic**: each
//! range's centroids are scattered into [`SAH_BINS`] equal-width bins along
//! the widest centroid axis, and the split plane minimizing
//! `C_trav + C_isect · (n_L·A_L + n_R·A_R) / A_parent` is chosen by a
//! prefix/suffix area sweep. SAH packs spatially coherent primitives under
//! tight boxes, which is what keeps traversal sublinear on building-scale
//! plans (1000s of walls) where the room/corridor structure is highly
//! non-uniform. When SAH degenerates — coincident centroids, every centroid
//! in one bin, a zero-area node — the builder falls back to the median
//! split, which always makes progress. [`Bvh::build_median`] forces the
//! median split everywhere; it is the pre-SAH reference builder, kept for
//! equivalence proptests and the `plan/crossings_building` benches (query
//! *results* through either tree are identical; only cost differs).
//!
//! ## Layout: packed 32-byte nodes
//!
//! Nodes live in one contiguous `Vec` of 32-byte entries: bounds squeezed
//! to `6 × f32` (minima rounded down, maxima rounded up, so the packed box
//! never shrinks below the exact `f64` box — conservatism survives the
//! narrowing) plus one word packing the leaf count with the first-primitive
//! slot (leaf) or the left-child index (interior). Sibling children are
//! adjacent (`left`, `left + 1`), so a traversal that pops one sibling
//! prefetches the other and the whole pair spans a single 64-byte cache
//! line.

use crate::vec3::Vec3;
use surfos_em::simd::{Backend, F32x8, SimdF32x8, SimdMask8};

/// An axis-aligned bounding box.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Aabb {
    /// The empty box: unions as identity, intersects nothing.
    pub fn empty() -> Self {
        Aabb {
            min: Vec3::new(f64::INFINITY, f64::INFINITY, f64::INFINITY),
            max: Vec3::new(f64::NEG_INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// The box spanning two corners (normalized per axis).
    pub fn new(a: Vec3, b: Vec3) -> Self {
        Aabb {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// The tightest box around a set of points.
    pub fn from_points(points: impl IntoIterator<Item = Vec3>) -> Self {
        let mut out = Self::empty();
        for p in points {
            out.min = out.min.min(p);
            out.max = out.max.max(p);
        }
        out
    }

    /// The union of two boxes.
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// The box grown by `pad` on every face. Padding is how callers make
    /// queries conservative against exact-test tolerances (endpoint-graze
    /// margins, boundary `<=` comparisons).
    pub fn grown(&self, pad: f64) -> Aabb {
        let d = Vec3::new(pad, pad, pad);
        Aabb {
            min: self.min - d,
            max: self.max + d,
        }
    }

    /// The box centre.
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Surface area `2·(wx·wy + wy·wz + wz·wx)` — the SAH cost weight.
    /// Zero for empty (inverted) boxes; degenerate flat boxes contribute
    /// their cross-section, which is exactly what the heuristic wants.
    pub fn surface_area(&self) -> f64 {
        let d = self.max - self.min;
        if d.x < 0.0 || d.y < 0.0 || d.z < 0.0 {
            return 0.0;
        }
        2.0 * (d.x * d.y + d.y * d.z + d.z * d.x)
    }

    fn axis(v: Vec3, axis: usize) -> f64 {
        match axis {
            0 => v.x,
            1 => v.y,
            _ => v.z,
        }
    }

    /// Slab test: does the closed segment `from → to` touch the box?
    ///
    /// Never returns a false negative for a segment that contains a point
    /// strictly inside the box — the property the conservative-culling
    /// contract rests on. Degenerate (axis-parallel) directions fall back to
    /// a containment check on that axis.
    pub fn intersects_segment(&self, from: Vec3, to: Vec3) -> bool {
        if self.min.x > self.max.x || self.min.y > self.max.y || self.min.z > self.max.z {
            return false; // empty (inverted) box: the slab swap would pass it
        }
        let mut t0 = 0.0f64;
        let mut t1 = 1.0f64;
        for axis in 0..3 {
            let o = Self::axis(from, axis);
            let d = Self::axis(to, axis) - o;
            let lo = Self::axis(self.min, axis);
            let hi = Self::axis(self.max, axis);
            if d.abs() < 1e-12 {
                if o < lo || o > hi {
                    return false;
                }
                continue;
            }
            let inv = 1.0 / d;
            let (mut a, mut b) = ((lo - o) * inv, (hi - o) * inv);
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            t0 = t0.max(a);
            t1 = t1.min(b);
            if t0 > t1 {
                return false;
            }
        }
        true
    }
}

/// The largest `f32` not above `v`: packed node *minima* round down so the
/// narrowed box never excludes a point the exact `f64` box contains.
fn round_down(v: f64) -> f32 {
    let f = v as f32;
    if (f as f64) > v {
        f.next_down()
    } else {
        f
    }
}

/// The smallest `f32` not below `v`: packed node *maxima* round up.
fn round_up(v: f64) -> f32 {
    let f = v as f32;
    if (f as f64) < v {
        f.next_up()
    } else {
        f
    }
}

/// Bits of `word` carrying the leaf start / left-child index.
const PAYLOAD_BITS: u32 = 27;
const PAYLOAD_MASK: u32 = (1 << PAYLOAD_BITS) - 1;

/// One node of the packed tree: bounds squeezed to `f32` (conservatively
/// rounded outward, see [`round_down`]/[`round_up`]) plus one word whose
/// top 5 bits hold the leaf count (0 marks an interior node) and whose low
/// 27 bits hold either the first primitive slot in `order` (leaf) or the
/// left-child index (interior; the right child is adjacent at `left + 1`).
/// `align(32)` pads the 28 content bytes to a 32-byte stride, so one
/// sibling pair spans a single 64-byte cache line.
#[repr(C, align(32))]
#[derive(Debug, Clone, Copy)]
struct PackedNode {
    min: [f32; 3],
    max: [f32; 3],
    word: u32,
}

impl PackedNode {
    const PLACEHOLDER: PackedNode = PackedNode {
        min: [0.0; 3],
        max: [0.0; 3],
        word: 0,
    };

    fn new(aabb: &Aabb, word: u32) -> Self {
        PackedNode {
            min: [
                round_down(aabb.min.x),
                round_down(aabb.min.y),
                round_down(aabb.min.z),
            ],
            max: [
                round_up(aabb.max.x),
                round_up(aabb.max.y),
                round_up(aabb.max.z),
            ],
            word,
        }
    }

    fn leaf_word(start: usize, count: usize) -> u32 {
        debug_assert!((1..=MAX_LEAF_SIZE).contains(&count));
        ((count as u32) << PAYLOAD_BITS) | start as u32
    }

    fn interior_word(left: usize) -> u32 {
        left as u32
    }

    /// Leaf primitive count; 0 for interior nodes.
    fn count(&self) -> usize {
        (self.word >> PAYLOAD_BITS) as usize
    }

    /// Leaf start slot or interior left-child index.
    fn payload(&self) -> usize {
        (self.word & PAYLOAD_MASK) as usize
    }

    /// The packed bounds widened back to `f64` (exact — every `f32` is a
    /// representable `f64`), a superset of the box the node was packed from.
    fn aabb(&self) -> Aabb {
        Aabb {
            min: Vec3::new(self.min[0] as f64, self.min[1] as f64, self.min[2] as f64),
            max: Vec3::new(self.max[0] as f64, self.max[1] as f64, self.max[2] as f64),
        }
    }
}

/// Primitives per leaf below which a range is never split: small enough to
/// cull well, large enough that the tree stays shallow.
const LEAF_SIZE: usize = 4;

/// SAH may terminate a range into a leaf up to this size when every
/// candidate split costs more than testing the primitives directly. Must
/// fit the 5 leaf-count bits (≤ 31).
const MAX_LEAF_SIZE: usize = 16;

/// Centroid bins per axis for the SAH sweep.
pub const SAH_BINS: usize = 16;

/// SAH cost of one traversal step, relative to [`COST_INTERSECT`].
const COST_TRAVERSAL: f64 = 0.5;

/// SAH cost of one exact primitive test.
const COST_INTERSECT: f64 = 1.0;

/// Below this depth SAH may pick arbitrarily lopsided splits; beyond it the
/// builder forces median splits (balanced halves), bounding total depth at
/// `SAH_DEPTH_LIMIT + ⌈log2 n⌉ < MAX_DEPTH` for any `n ≤ MAX_PRIMS`.
const SAH_DEPTH_LIMIT: usize = 32;

/// Traversal stack capacity; covers the depth bound above.
const MAX_DEPTH: usize = 64;

/// Capacity cap: payloads carry 27 bits and a tree over `n` primitives has
/// at most `2n − 1` nodes, so `n` is held one bit lower.
const MAX_PRIMS: usize = 1 << 26;

/// How a range of primitives gets divided (or not).
enum Split {
    /// SAH found a paying split; `order[lo..mid]` / `order[mid..hi]` are
    /// already partitioned.
    At(usize),
    /// Every candidate split costs more than a leaf of this range.
    Leaf,
    /// SAH degenerated (coincident centroids, one occupied bin, zero-area
    /// node) — divide at the centroid median instead.
    MedianFallback,
}

/// Which splitter drives construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SplitStrategy {
    Sah,
    Median,
}

/// A primitive's own bounds in the packed `f32` layout (conservatively
/// rounded outward like node bounds), stored in *slot* order so packet
/// leaf loops stream through them. Leaf node boxes are unions of up to
/// [`MAX_LEAF_SIZE`] primitives; testing the per-primitive box culls the
/// union's slack before the (much costlier) exact per-candidate test.
#[derive(Debug, Clone, Copy)]
struct PrimBox {
    min: [f32; 3],
    max: [f32; 3],
}

impl PrimBox {
    fn new(aabb: &Aabb) -> Self {
        PrimBox {
            min: [
                round_down(aabb.min.x),
                round_down(aabb.min.y),
                round_down(aabb.min.z),
            ],
            max: [
                round_up(aabb.max.x),
                round_up(aabb.max.y),
                round_up(aabb.max.z),
            ],
        }
    }
}

/// A bounding-volume hierarchy over primitive bounding boxes.
///
/// The tree stores only indices into the caller's primitive array; callers
/// keep primitives in their original order, which is what makes index-order
/// tie-breaking (and thus bit-identical results) possible downstream.
#[derive(Debug, Clone, Default)]
pub struct Bvh {
    nodes: Vec<PackedNode>,
    order: Vec<u32>,
    prim_boxes: Vec<PrimBox>,
}

impl Bvh {
    /// Builds the hierarchy with binned-SAH partitioning (see the module
    /// docs). Deterministic: binning, the cost sweep and the side/index
    /// partition sort depend only on the input boxes.
    ///
    /// # Panics
    /// Panics when `boxes` exceeds the 2²⁶-primitive packing capacity.
    pub fn build(boxes: &[Aabb]) -> Self {
        Self::build_with(boxes, SplitStrategy::Sah)
    }

    /// Builds the hierarchy with the reference median splitter everywhere
    /// (the pre-SAH construction). Queries through a median tree return the
    /// same candidate *supersets* contract — and therefore bit-identical
    /// final results — as [`Bvh::build`]; only traversal cost differs. Kept
    /// for equivalence proptests and the building-scale benchmarks.
    pub fn build_median(boxes: &[Aabb]) -> Self {
        Self::build_with(boxes, SplitStrategy::Median)
    }

    fn build_with(boxes: &[Aabb], strategy: SplitStrategy) -> Self {
        assert!(
            boxes.len() <= MAX_PRIMS,
            "BVH capacity is {MAX_PRIMS} primitives"
        );
        let timer = surfos_obs::enabled().then(std::time::Instant::now);
        let mut bvh = Bvh {
            nodes: Vec::with_capacity(2 * boxes.len().max(1)),
            order: (0..boxes.len() as u32).collect(),
            prim_boxes: Vec::new(),
        };
        if !boxes.is_empty() {
            bvh.nodes.push(PackedNode::PLACEHOLDER);
            bvh.build_node(boxes, 0, 0, boxes.len(), 0, strategy);
            bvh.repack_prim_boxes(boxes);
        }
        if let Some(t0) = timer {
            surfos_obs::observe("geometry.bvh.build_ns", t0.elapsed().as_nanos() as u64);
            surfos_obs::observe("geometry.bvh.build_prims", boxes.len() as u64);
        }
        bvh
    }

    /// Number of indexed primitives.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when no primitives are indexed (every query yields nothing).
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Number of packed nodes (leaves + interiors) in the flat array.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn build_node(
        &mut self,
        boxes: &[Aabb],
        node: usize,
        lo: usize,
        hi: usize,
        depth: usize,
        strategy: SplitStrategy,
    ) {
        let mut aabb = Aabb::empty();
        for &i in &self.order[lo..hi] {
            aabb = aabb.union(&boxes[i as usize]);
        }
        let count = hi - lo;
        if count <= LEAF_SIZE {
            self.nodes[node] = PackedNode::new(&aabb, PackedNode::leaf_word(lo, count));
            return;
        }
        let split = match strategy {
            SplitStrategy::Sah if depth < SAH_DEPTH_LIMIT => self.sah_split(boxes, lo, hi, &aabb),
            _ => Split::MedianFallback,
        };
        let mid = match split {
            Split::Leaf => {
                self.nodes[node] = PackedNode::new(&aabb, PackedNode::leaf_word(lo, count));
                return;
            }
            Split::At(mid) => {
                surfos_obs::add("geometry.bvh.sah_splits", 1);
                mid
            }
            Split::MedianFallback => {
                if strategy == SplitStrategy::Sah {
                    surfos_obs::add("geometry.bvh.median_fallbacks", 1);
                }
                self.median_split(boxes, lo, hi)
            }
        };
        // Allocate the sibling pair adjacently, then recurse into each.
        let left = self.nodes.len();
        self.nodes.push(PackedNode::PLACEHOLDER);
        self.nodes.push(PackedNode::PLACEHOLDER);
        self.nodes[node] = PackedNode::new(&aabb, PackedNode::interior_word(left));
        self.build_node(boxes, left, lo, mid, depth + 1, strategy);
        self.build_node(boxes, left + 1, mid, hi, depth + 1, strategy);
    }

    /// The widest-axis centroid bounds of `order[lo..hi]`, shared by both
    /// splitters.
    fn centroid_spread(&self, boxes: &[Aabb], lo: usize, hi: usize) -> (Aabb, usize) {
        let bounds = Aabb::from_points(
            self.order[lo..hi]
                .iter()
                .map(|&i| boxes[i as usize].center()),
        );
        let spread = bounds.max - bounds.min;
        let axis = if spread.x >= spread.y && spread.x >= spread.z {
            0
        } else if spread.y >= spread.z {
            1
        } else {
            2
        };
        (bounds, axis)
    }

    /// Binned SAH: scatter centroids into [`SAH_BINS`] bins on the widest
    /// centroid axis, sweep the `SAH_BINS − 1` bin boundaries for the
    /// minimum `C_trav + C_isect·(n_L·A_L + n_R·A_R)/A_parent`, and
    /// partition the range at the winner (stable on primitive index, so
    /// construction is deterministic). Degenerate inputs fall back to the
    /// median; ranges where no split beats a direct leaf become leaves.
    fn sah_split(&mut self, boxes: &[Aabb], lo: usize, hi: usize, node_aabb: &Aabb) -> Split {
        let count = hi - lo;
        let (centroid_bounds, axis) = self.centroid_spread(boxes, lo, hi);
        let extent = Aabb::axis(centroid_bounds.max - centroid_bounds.min, axis);
        let parent_area = node_aabb.surface_area();
        if extent < 1e-9 || parent_area <= 0.0 {
            // Coincident centroids (stacked walls, duplicate blockers) or a
            // zero-area node: SAH cannot rank splits, the median can.
            return Split::MedianFallback;
        }
        let origin = Aabb::axis(centroid_bounds.min, axis);
        let scale = SAH_BINS as f64 / extent;
        let bin_of = |b: &Aabb| {
            (((Aabb::axis(b.center(), axis) - origin) * scale) as usize).min(SAH_BINS - 1)
        };
        let mut counts = [0usize; SAH_BINS];
        let mut bounds = [Aabb::empty(); SAH_BINS];
        for &i in &self.order[lo..hi] {
            let b = bin_of(&boxes[i as usize]);
            counts[b] += 1;
            bounds[b] = bounds[b].union(&boxes[i as usize]);
        }
        // Suffix sweep: area/count of everything right of each boundary.
        let mut right_area = [0.0f64; SAH_BINS];
        let mut right_count = [0usize; SAH_BINS];
        let mut acc = Aabb::empty();
        let mut n_acc = 0usize;
        for k in (1..SAH_BINS).rev() {
            acc = acc.union(&bounds[k]);
            n_acc += counts[k];
            right_area[k] = acc.surface_area();
            right_count[k] = n_acc;
        }
        // Prefix sweep over boundaries; strict `<` keeps the leftmost
        // boundary on cost ties, so the choice is deterministic.
        let mut best: Option<(f64, usize, usize)> = None;
        let mut left_box = Aabb::empty();
        let mut left_n = 0usize;
        for k in 1..SAH_BINS {
            left_box = left_box.union(&bounds[k - 1]);
            left_n += counts[k - 1];
            if left_n == 0 || right_count[k] == 0 {
                continue;
            }
            let cost = COST_TRAVERSAL
                + COST_INTERSECT
                    * (left_n as f64 * left_box.surface_area()
                        + right_count[k] as f64 * right_area[k])
                    / parent_area;
            if best.is_none_or(|(c, _, _)| cost < c) {
                best = Some((cost, k, left_n));
            }
        }
        let Some((best_cost, best_k, best_left_n)) = best else {
            return Split::MedianFallback; // every centroid landed in one bin
        };
        if best_cost >= COST_INTERSECT * count as f64 && count <= MAX_LEAF_SIZE {
            return Split::Leaf;
        }
        self.order[lo..hi].sort_unstable_by_key(|&i| (bin_of(&boxes[i as usize]) >= best_k, i));
        Split::At(lo + best_left_n)
    }

    /// Splits at the median centroid along the widest centroid axis (equal
    /// centroids tie-break on primitive index). Always makes progress —
    /// even fully coincident centroids divide by index order — which is why
    /// it backs SAH up.
    fn median_split(&mut self, boxes: &[Aabb], lo: usize, hi: usize) -> usize {
        let (_, axis) = self.centroid_spread(boxes, lo, hi);
        self.order[lo..hi].sort_unstable_by(|&a, &b| {
            Aabb::axis(boxes[a as usize].center(), axis)
                .total_cmp(&Aabb::axis(boxes[b as usize].center(), axis))
                .then(a.cmp(&b))
        });
        lo + (hi - lo) / 2
    }

    /// Recomputes every node's bounds for updated primitive boxes without
    /// re-splitting: the topology and primitive order are kept, only the
    /// box unions are refreshed, bottom-up, in `O(nodes)`.
    ///
    /// This is the moving-primitive fast path — a scene where a few boxes
    /// shift per tick refits instead of rebuilding. Queries stay exactly as
    /// conservative as on a fresh build (every node bounds the union of its
    /// primitives' *current* boxes, re-rounded outward for the packed `f32`
    /// layout); only the split quality is frozen at build time, so
    /// refitting is for perturbations, not for a scene that has been wholly
    /// rearranged.
    ///
    /// # Panics
    /// Panics when `boxes` does not have one box per indexed primitive.
    pub fn refit(&mut self, boxes: &[Aabb]) {
        assert_eq!(
            boxes.len(),
            self.order.len(),
            "refit requires one box per indexed primitive"
        );
        surfos_obs::add("geometry.bvh.refits", 1);
        // The sibling pair is always allocated after its parent, so children
        // sit at higher indices and one reverse sweep sees every child
        // before its parent.
        for idx in (0..self.nodes.len()).rev() {
            let node = self.nodes[idx];
            let count = node.count();
            let aabb = if count > 0 {
                let start = node.payload();
                let mut aabb = Aabb::empty();
                for &i in &self.order[start..start + count] {
                    aabb = aabb.union(&boxes[i as usize]);
                }
                aabb
            } else {
                // Child bounds are already f32-exact, so this union (and
                // its re-pack below) is lossless.
                let left = node.payload();
                self.nodes[left].aabb().union(&self.nodes[left + 1].aabb())
            };
            self.nodes[idx] = PackedNode::new(&aabb, node.word);
        }
        self.repack_prim_boxes(boxes);
    }

    /// Refreshes the slot-ordered per-primitive `f32` boxes from the
    /// current primitive boxes (build and refit both end here).
    fn repack_prim_boxes(&mut self, boxes: &[Aabb]) {
        self.prim_boxes.clear();
        self.prim_boxes
            .extend(self.order.iter().map(|&i| PrimBox::new(&boxes[i as usize])));
    }

    /// Calls `visit` with the index of every primitive whose box the segment
    /// touches (a conservative superset of the exact hits). Visiting order
    /// is deterministic but *not* primitive order — callers that need
    /// ordered results sort by `(t, index)` afterwards.
    ///
    /// Returns early (and `true`) as soon as `visit` returns `true` —
    /// the any-hit fast path `has_los`-style queries use.
    pub fn segment_candidates_until(
        &self,
        from: Vec3,
        to: Vec3,
        mut visit: impl FnMut(usize) -> bool,
    ) -> bool {
        if self.nodes.is_empty() {
            return false;
        }
        let mut nodes_visited = 0u64;
        let mut candidates = 0u64;
        let mut hit = false;
        let mut stack = [0u32; MAX_DEPTH];
        let mut sp = 0usize;
        stack[sp] = 0;
        sp += 1;
        'traverse: while sp > 0 {
            sp -= 1;
            let node = &self.nodes[stack[sp] as usize];
            nodes_visited += 1;
            if !node.aabb().intersects_segment(from, to) {
                continue;
            }
            let count = node.count();
            if count > 0 {
                let start = node.payload();
                for &i in &self.order[start..start + count] {
                    candidates += 1;
                    if visit(i as usize) {
                        hit = true;
                        break 'traverse;
                    }
                }
            } else {
                // The sibling pair is adjacent; popping left first keeps the
                // walk linear through the packed array (a cache nicety, not
                // a correctness requirement).
                let left = node.payload();
                debug_assert!(sp + 2 <= MAX_DEPTH, "BVH deeper than traversal stack");
                stack[sp] = (left + 1) as u32;
                stack[sp + 1] = left as u32;
                sp += 2;
            }
        }
        if surfos_obs::enabled() {
            surfos_obs::add("geometry.bvh.queries", 1);
            surfos_obs::add("geometry.bvh.nodes_visited", nodes_visited);
            surfos_obs::add("geometry.bvh.candidates", candidates);
            // What a brute-force scan would have tested for this query.
            surfos_obs::add("geometry.bvh.brute_walls", self.order.len() as u64);
        }
        hit
    }

    /// Calls `visit` for every candidate primitive (no early exit).
    pub fn for_each_segment_candidate(&self, from: Vec3, to: Vec3, mut visit: impl FnMut(usize)) {
        self.segment_candidates_until(from, to, |i| {
            visit(i);
            false
        });
    }

    /// Collects candidate indices into a vector (convenience for tests).
    pub fn segment_candidates(&self, from: Vec3, to: Vec3) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_each_segment_candidate(from, to, |i| out.push(i));
        out
    }

    /// Packet analogue of [`Self::segment_candidates_until`]: walks the
    /// tree **once** for up to [`SegmentPacket::LANES`] segments, testing
    /// every packed node box against all lanes with one vectorized slab
    /// test and sharing the traversal stack.
    ///
    /// `visit(lane, slot, prim)` is called for every (lane, candidate)
    /// pair — `prim` is the caller's original primitive index, `slot` its
    /// position in the tree's internal order (stable for a given tree;
    /// callers keeping slot-ordered side tables get sequential reads
    /// inside each leaf). Returning `true` retires that lane (the any-hit
    /// early exit), and the traversal stops once every lane has retired.
    /// Per lane, the candidate stream is the same conservative superset
    /// contract as the scalar traversal — a superset of the primitives
    /// the segment truly touches, in the same deterministic depth-first
    /// order — so callers that run the exact test per candidate and sort
    /// by `(t, index)` get results bit-identical to per-segment scalar
    /// queries.
    ///
    /// Returns the bitmask of lanes whose `visit` returned `true`.
    ///
    /// `#[inline(always)]` is load-bearing: AVX2 instantiations must
    /// inline into their caller's `#[target_feature(enable = "avx2")]`
    /// frame so the lane intrinsics compile to bare instructions.
    #[inline(always)]
    pub fn packet_candidates_until<V: SimdF32x8>(
        &self,
        packet: &SegmentPacket<V>,
        mut visit: impl FnMut(usize, usize, usize) -> bool,
    ) -> u8 {
        if self.nodes.is_empty() {
            return 0;
        }
        let obs_on = surfos_obs::enabled();
        let mut live = packet.active_bitmask();
        let mut done = 0u8;
        let mut nodes_visited = 0u64;
        let mut candidates = 0u64;
        let mut stack_node = [0u32; MAX_DEPTH];
        let mut stack_mask = [0u8; MAX_DEPTH];
        let mut sp = 0usize;
        stack_node[sp] = 0;
        stack_mask[sp] = live;
        sp += 1;
        'traverse: while sp > 0 {
            sp -= 1;
            let m = stack_mask[sp] & live;
            if m == 0 {
                continue;
            }
            let node = &self.nodes[stack_node[sp] as usize];
            nodes_visited += 1;
            if obs_on {
                surfos_obs::observe(
                    "geometry.bvh.packet_lanes_active",
                    u64::from(m.count_ones()),
                );
            }
            let hit = packet.test_box(&node.min, &node.max) & m;
            if hit == 0 {
                continue;
            }
            let count = node.count();
            if count > 0 {
                let start = node.payload();
                for (slot, &prim) in self.order[start..start + count].iter().enumerate() {
                    // A leaf box is the union of its primitives; re-testing
                    // the primitive's own (conservatively rounded) box culls
                    // the union slack before the exact per-candidate test.
                    let pb = &self.prim_boxes[start + slot];
                    let mut lanes = packet.test_box(&pb.min, &pb.max) & hit & live;
                    while lanes != 0 {
                        let lane = lanes.trailing_zeros() as usize;
                        lanes &= lanes - 1;
                        candidates += 1;
                        if visit(lane, start + slot, prim as usize) {
                            done |= 1 << lane;
                            live &= !(1 << lane);
                            if live == 0 {
                                break 'traverse;
                            }
                        }
                    }
                }
            } else {
                // Children inherit the lanes that hit this node; each is
                // re-tested against its own box when popped.
                let left = node.payload();
                debug_assert!(sp + 2 <= MAX_DEPTH, "BVH deeper than traversal stack");
                stack_node[sp] = (left + 1) as u32;
                stack_mask[sp] = hit;
                stack_node[sp + 1] = left as u32;
                stack_mask[sp + 1] = hit;
                sp += 2;
            }
        }
        if obs_on {
            let lanes = packet.len() as u64;
            surfos_obs::add("geometry.bvh.packet_traversals", 1);
            // Keep the scalar-era ratio metrics meaningful: a packet
            // serves `lanes` logical queries, visits each popped node
            // once for all of them, and a brute scan would have tested
            // every primitive per lane.
            surfos_obs::add("geometry.bvh.queries", lanes);
            surfos_obs::add("geometry.bvh.nodes_visited", nodes_visited);
            surfos_obs::add("geometry.bvh.candidates", candidates);
            surfos_obs::add("geometry.bvh.brute_walls", self.order.len() as u64 * lanes);
        }
        done
    }

    /// Calls `visit(lane, slot, prim)` for every packet candidate (no
    /// early exit); packet analogue of
    /// [`Self::for_each_segment_candidate`]. Inlines always, for the
    /// same reason as [`Self::packet_candidates_until`].
    #[inline(always)]
    pub fn for_each_packet_candidate<V: SimdF32x8>(
        &self,
        packet: &SegmentPacket<V>,
        mut visit: impl FnMut(usize, usize, usize),
    ) {
        self.packet_candidates_until(packet, |lane, slot, prim| {
            visit(lane, slot, prim);
            false
        });
    }

    /// The tree's internal primitive order: `order()[slot]` is the
    /// original index of the primitive stored at `slot`. Callers building
    /// slot-ordered side tables (so leaf-local candidate reads are
    /// sequential) key them with this.
    pub fn order(&self) -> &[u32] {
        &self.order
    }
}

/// Segment directions with an axis component below this are treated as
/// axis-parallel by the packet slab test and fall back to a (padded)
/// containment check on that axis — a far wider net than the scalar
/// `1e-12` threshold, because the `f32` lanes cannot resolve the huge
/// `1/d` magnitudes near-degenerate directions produce. Conservatism, not
/// accuracy: within `|d| < 1e-3` the segment moves less than a millimetre
/// along the axis, and the containment pad absorbs that.
const PACKET_D_EPS: f32 = 1e-3;

/// Up to eight segments bundled lane-per-segment in SoA form, with the
/// per-lane reciprocals, slab slacks and degenerate-axis masks hoisted so
/// the per-node work inside [`Bvh::packet_candidates_until`] is pure
/// vector arithmetic.
///
/// The slab test runs in `f32` against the packed node bounds. Every
/// quantity is padded by a per-packet error bound (`slack`, `pad`)
/// derived from the largest endpoint coordinate, so a lane never misses
/// a node box its exact-`f64` segment touches — the packet layer keeps
/// the tree's conservative-culling contract, and exactness is restored
/// by the caller's per-candidate test. Node boxes are assumed
/// non-inverted, which holds for every node of a built tree (built and
/// refitted boxes are unions of primitive boxes).
///
/// Generic over the 8-lane vector type `V` so the same traversal math
/// runs on the portable pair registers ([`F32x8`]) and the native AVX2
/// registers (`surfos_em::simd::avx2::F32x8A`); every [`SimdF32x8`]
/// implementor has bit-identical lane semantics, so the candidate sets
/// are identical whichever instantiation runs.
#[derive(Debug, Clone)]
pub struct SegmentPacket<V: SimdF32x8 = F32x8> {
    /// Per-axis lane origins.
    o: [V; 3],
    /// Per-axis lane reciprocal directions (`0.0` on degenerate lanes).
    inv: [V; 3],
    /// Per-axis conservative widening of the slab interval, in `t` units;
    /// `+∞` on parallel lanes, so their slab interval is `(-∞, +∞)` and
    /// never constrains `t` — no per-axis select needed.
    slack: [V; 3],
    /// Per-axis mask of lanes that are parallel to the axis.
    par: [V::Mask; 3],
    /// Whether any lane is parallel to any axis; when `false` the
    /// containment sweep in [`Self::test_box`] is skipped wholesale.
    has_par: bool,
    /// Containment pad for parallel-axis checks, in metres.
    pad: V,
    /// Mask of lanes holding real segments.
    active: V::Mask,
    /// Number of real segments (`1..=LANES`).
    len: usize,
}

impl<V: SimdF32x8> SegmentPacket<V> {
    /// Packet width.
    pub const LANES: usize = 8;

    /// Bundles `segments` (each `(from, to)`) into a packet. Unused
    /// lanes repeat the first segment so every vector is well-defined,
    /// and are masked out of traversal and visits.
    ///
    /// # Panics
    /// Panics if `segments` is empty or holds more than [`Self::LANES`].
    #[inline(always)]
    pub fn new(segments: &[(Vec3, Vec3)]) -> Self {
        let len = segments.len();
        assert!(
            (1..=Self::LANES).contains(&len),
            "packet holds 1..=8 segments, got {len}"
        );
        let seg = |lane: usize| segments[lane.min(len - 1)];

        // Error budget, from the largest coordinate magnitude in the
        // packet: converting an endpoint to f32 and subtracting it from a
        // node bound each lose at most ~mag·2⁻²⁴, and the slab product
        // loses ~|t|·2⁻²³ more. The generous constants below dominate
        // both terms; they widen candidate sets by micro-metres, which
        // the exact per-candidate test absorbs.
        let mut mag = 1.0f64;
        for &(from, to) in segments {
            for v in [from, to] {
                mag = mag.max(v.x.abs()).max(v.y.abs()).max(v.z.abs());
            }
        }
        let eps_pos = mag * 2.4e-7;
        let pad_scalar = ((PACKET_D_EPS as f64 + eps_pos) * 1.01) as f32;

        let mut o = [[0.0f32; 8]; 3];
        let mut inv = [[0.0f32; 8]; 3];
        let mut slack = [[0.0f32; 8]; 3];
        let mut par_abs_d = [[0.0f32; 8]; 3];
        for lane in 0..Self::LANES {
            let (from, to) = seg(lane);
            for (axis, (f, t)) in [(from.x, to.x), (from.y, to.y), (from.z, to.z)]
                .into_iter()
                .enumerate()
            {
                let of = f as f32;
                let df = (t - f) as f32;
                o[axis][lane] = of;
                par_abs_d[axis][lane] = df.abs();
                if df.abs() >= PACKET_D_EPS {
                    let inv_f = 1.0 / df;
                    inv[axis][lane] = inv_f;
                    slack[axis][lane] = ((eps_pos * (inv_f as f64).abs() + 1e-6) * 1.01) as f32;
                } else {
                    // Parallel lane: `inv` stays 0, so the slab products are
                    // 0 and an infinite slack makes the interval (-∞, +∞) —
                    // the axis never constrains `t` and the (cheap) slab
                    // math needs no per-axis select. Rejection on this axis
                    // is the padded containment check instead.
                    slack[axis][lane] = f32::INFINITY;
                }
            }
        }
        let d_eps = V::splat(PACKET_D_EPS);
        let par = par_abs_d.map(|d| V::from_array(d).simd_lt(d_eps));
        SegmentPacket {
            o: o.map(V::from_array),
            inv: inv.map(V::from_array),
            slack: slack.map(V::from_array),
            has_par: par.iter().any(|m| m.any()),
            par,
            pad: V::splat(pad_scalar),
            active: V::mask_first_n(len),
            len,
        }
    }

    /// Number of real segments in the packet.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `false` — a packet always holds at least one segment.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Bitmask of lanes holding real segments (lane 0 in bit 0).
    pub fn active_bitmask(&self) -> u8 {
        self.active.bitmask()
    }

    /// The vectorized conservative slab test: one bit per lane whose
    /// segment may touch the box `[min, max]`.
    #[inline(always)]
    fn test_box(&self, min: &[f32; 3], max: &[f32; 3]) -> u8 {
        let mut t0 = V::splat(0.0);
        let mut t1 = V::splat(1.0);
        for axis in 0..3 {
            let lo = V::splat(min[axis]);
            let hi = V::splat(max[axis]);
            let o = self.o[axis];
            let inv = self.inv[axis];
            let a = lo.sub(o).mul(inv);
            let b = hi.sub(o).mul(inv);
            // Parallel lanes have `inv = 0` and `slack = +∞`: their slab
            // interval is (-∞, +∞) and never constrains `t` here.
            let slack = self.slack[axis];
            t0 = t0.max(a.min(b).sub(slack));
            t1 = t1.min(a.max(b).add(slack));
        }
        let mut hit = t0.simd_le(t1);
        // Parallel lanes pass an axis iff the origin sits inside the padded
        // slab; packets with no parallel lane (the common case for bounce
        // fans) skip the sweep entirely.
        if self.has_par {
            for axis in 0..3 {
                let lo = V::splat(min[axis]);
                let hi = V::splat(max[axis]);
                let o = self.o[axis];
                let par = self.par[axis];
                let inside = o.simd_ge(lo.sub(self.pad)).and(o.simd_le(hi.add(self.pad)));
                hit = hit.and(inside.or(par.not()));
            }
        }
        hit.bitmask()
    }
}

/// An 8-lane conservative interval bank over a *fixed set of boxes*:
/// the transpose of [`SegmentPacket`] — one segment tested against
/// eight boxes per step instead of eight segments against one box.
///
/// `surfos-channel` keeps one bank per blocker list and one per
/// doorway-aperture list, replacing the per-box scalar
/// [`Aabb::intersects_segment`] scan in the trace/transmission loops
/// with a vector sweep. The bank is **conservative by construction**
/// (mirroring the `SpecularBank` design): box bounds are rounded
/// outward to `f32`, and the per-segment slab parameters carry the
/// same error budget as [`SegmentPacket::new`], so no box the exact
/// `f64` test accepts is ever prefiltered out. Survivors are visited
/// in ascending index order and re-tested exactly by the caller, so
/// downstream results are bit-identical to the unfiltered scan.
///
/// Queries dispatch on [`surfos_em::simd::backend()`]: the AVX2 arm
/// sweeps native 256-bit lanes, the SSE2 arm the portable pair type,
/// and the scalar reference arm visits every index (the unfiltered
/// pre-bank behaviour).
#[derive(Debug, Clone, Default)]
pub struct AabbBank {
    /// Per-axis minima, rounded down to `f32`, padded to a multiple of
    /// 8 with never-visited rows.
    min: [Vec<f32>; 3],
    /// Per-axis maxima, rounded up to `f32`.
    max: [Vec<f32>; 3],
    /// Number of real boxes (the padding rows are dropped by the index
    /// bound check while visiting).
    len: usize,
}

impl AabbBank {
    /// Number of box lanes swept per step.
    pub const LANES: usize = 8;

    /// Builds a bank over `boxes` (index `i` in the bank is `boxes[i]`).
    pub fn new(boxes: &[Aabb]) -> Self {
        let padded = boxes.len().next_multiple_of(Self::LANES).max(Self::LANES);
        let mut min: [Vec<f32>; 3] = core::array::from_fn(|_| vec![0.0; padded]);
        let mut max: [Vec<f32>; 3] = core::array::from_fn(|_| vec![0.0; padded]);
        for (i, b) in boxes.iter().enumerate() {
            for axis in 0..3 {
                min[axis][i] = round_down(Aabb::axis(b.min, axis));
                max[axis][i] = round_up(Aabb::axis(b.max, axis));
            }
        }
        AabbBank {
            min,
            max,
            len: boxes.len(),
        }
    }

    /// Number of real boxes in the bank.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the bank holds no boxes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Calls `visit(i)`, in ascending index order, for every box the
    /// segment `from → to` *may* touch — a conservative superset of the
    /// boxes [`Aabb::intersects_segment`] accepts. Dispatches on the
    /// process-wide SIMD backend.
    #[inline]
    pub fn for_each_candidate(&self, from: Vec3, to: Vec3, visit: impl FnMut(usize)) {
        self.for_each_candidate_with(surfos_em::simd::backend(), from, to, visit);
    }

    /// [`Self::for_each_candidate`] with an explicit kernel arm, for
    /// benches and cross-backend equivalence tests.
    ///
    /// # Panics
    /// Panics if `Backend::Avx2` is forced on a host without AVX2+FMA.
    #[doc(hidden)]
    pub fn for_each_candidate_with(
        &self,
        backend: Backend,
        from: Vec3,
        to: Vec3,
        mut visit: impl FnMut(usize),
    ) {
        // Below one lane group the vector setup (segment splat + interval
        // reps) costs more than just exact-testing every box — and a
        // visit-all pass is trivially conservative. Keeps per-shard
        // blocker banks (a walker or two each) off the sweep entirely.
        if self.len <= Self::LANES {
            for i in 0..self.len {
                visit(i);
            }
            return;
        }
        match backend {
            // The scalar reference arm: no prefilter, every box goes to
            // the caller's exact test (the pre-bank behaviour).
            Backend::Scalar => {
                for i in 0..self.len {
                    visit(i);
                }
            }
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => {
                assert!(
                    surfos_em::simd::avx2_available(),
                    "Backend::Avx2 forced without AVX2+FMA support"
                );
                // SAFETY: avx2 presence asserted just above.
                unsafe { self.sweep_avx2(from, to, &mut visit) }
            }
            _ => self.sweep::<F32x8>(from, to, &mut visit),
        }
    }

    /// AVX2 entry point: compiles [`Self::sweep`] with 256-bit lanes.
    ///
    /// # Safety
    /// Requires the `avx2` CPU feature (the dispatch arm checks).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn sweep_avx2(&self, from: Vec3, to: Vec3, visit: &mut impl FnMut(usize)) {
        self.sweep::<surfos_em::simd::avx2::F32x8A>(from, to, visit);
    }

    /// The vector sweep: the [`SegmentPacket`] slab math transposed
    /// (segment parameters splat, box bounds loaded per lane), with the
    /// identical error budget, so the conservativeness argument carries
    /// over unchanged.
    #[inline(always)]
    fn sweep<V: SimdF32x8>(&self, from: Vec3, to: Vec3, visit: &mut impl FnMut(usize)) {
        // Per-segment scalar precompute, mirroring SegmentPacket::new.
        let mut mag = 1.0f64;
        for v in [from, to] {
            mag = mag.max(v.x.abs()).max(v.y.abs()).max(v.z.abs());
        }
        let eps_pos = mag * 2.4e-7;
        let pad = ((PACKET_D_EPS as f64 + eps_pos) * 1.01) as f32;
        let mut o = [0.0f32; 3];
        let mut inv = [0.0f32; 3];
        let mut slack = [0.0f32; 3];
        let mut par = [false; 3];
        for (axis, (f, t)) in [(from.x, to.x), (from.y, to.y), (from.z, to.z)]
            .into_iter()
            .enumerate()
        {
            o[axis] = f as f32;
            let df = (t - f) as f32;
            if df.abs() >= PACKET_D_EPS {
                let inv_f = 1.0 / df;
                inv[axis] = inv_f;
                slack[axis] = ((eps_pos * (inv_f as f64).abs() + 1e-6) * 1.01) as f32;
            } else {
                par[axis] = true;
            }
        }
        let mut base = 0;
        while base < self.min[0].len() {
            let mut t0 = V::splat(0.0);
            let mut t1 = V::splat(1.0);
            let mut ok = V::Mask::splat(true);
            for axis in 0..3 {
                let lo = V::from_array(self.min[axis][base..base + 8].try_into().unwrap());
                let hi = V::from_array(self.max[axis][base..base + 8].try_into().unwrap());
                let ov = V::splat(o[axis]);
                if par[axis] {
                    // Degenerate axis: padded containment, exactly as
                    // the packet layer handles parallel lanes.
                    let pv = V::splat(pad);
                    let inside = ov.simd_ge(lo.sub(pv)).and(ov.simd_le(hi.add(pv)));
                    ok = ok.and(inside);
                } else {
                    let iv = V::splat(inv[axis]);
                    let sv = V::splat(slack[axis]);
                    let a = lo.sub(ov).mul(iv);
                    let b = hi.sub(ov).mul(iv);
                    t0 = t0.max(a.min(b).sub(sv));
                    t1 = t1.min(a.max(b).add(sv));
                }
            }
            let mut bits = ok.and(t0.simd_le(t1)).bitmask();
            while bits != 0 {
                let lane = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let i = base + lane;
                if i < self.len {
                    visit(i);
                }
            }
            base += 8;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn packed_node_is_32_bytes() {
        assert_eq!(std::mem::size_of::<PackedNode>(), 32);
        assert_eq!(std::mem::align_of::<PackedNode>(), 32);
    }

    #[test]
    fn conservative_rounding_brackets_value() {
        for v in [
            0.1,
            1.0 / 3.0,
            -7.3e-9,
            1e300,
            -1e300,
            12345.6789,
            0.0,
            -0.0,
            2.0,
        ] {
            assert!(round_down(v) as f64 <= v, "round_down({v}) above value");
            assert!(round_up(v) as f64 >= v, "round_up({v}) below value");
        }
        // Infinities (the empty box) pass through unchanged.
        assert_eq!(round_down(f64::INFINITY), f32::INFINITY);
        assert_eq!(round_up(f64::NEG_INFINITY), f32::NEG_INFINITY);
    }

    #[test]
    fn empty_box_intersects_nothing() {
        let e = Aabb::empty();
        assert!(!e.intersects_segment(Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0)));
        let b = Aabb::new(Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0));
        assert_eq!(e.union(&b), b);
        assert_eq!(e.surface_area(), 0.0);
    }

    #[test]
    fn surface_area_matches_hand_value() {
        let b = Aabb::new(Vec3::ZERO, Vec3::new(2.0, 3.0, 4.0));
        assert_eq!(b.surface_area(), 2.0 * (6.0 + 12.0 + 8.0));
        // A flat (zero-extent) box still has its cross-section.
        let flat = Aabb::new(Vec3::ZERO, Vec3::new(2.0, 3.0, 0.0));
        assert_eq!(flat.surface_area(), 2.0 * 6.0);
    }

    #[test]
    fn segment_through_box_hits() {
        let b = Aabb::new(Vec3::new(1.0, 1.0, 0.0), Vec3::new(2.0, 2.0, 3.0));
        assert!(b.intersects_segment(Vec3::new(0.0, 1.5, 1.0), Vec3::new(3.0, 1.5, 1.0)));
        assert!(!b.intersects_segment(Vec3::new(0.0, 3.0, 1.0), Vec3::new(3.0, 3.0, 1.0)));
        // Segment ending before the box: no hit.
        assert!(!b.intersects_segment(Vec3::new(0.0, 1.5, 1.0), Vec3::new(0.5, 1.5, 1.0)));
        // Axis-parallel segment inside the slab.
        assert!(b.intersects_segment(Vec3::new(1.5, 0.0, 1.0), Vec3::new(1.5, 3.0, 1.0)));
    }

    #[test]
    fn segment_fully_inside_box_hits() {
        let b = Aabb::new(Vec3::ZERO, Vec3::new(4.0, 4.0, 4.0));
        assert!(b.intersects_segment(Vec3::new(1.0, 1.0, 1.0), Vec3::new(2.0, 3.0, 2.0)));
    }

    #[test]
    fn empty_bvh_yields_nothing() {
        for bvh in [Bvh::build(&[]), Bvh::build_median(&[])] {
            assert!(bvh.is_empty());
            assert_eq!(bvh.node_count(), 0);
            assert!(bvh
                .segment_candidates(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0))
                .is_empty());
        }
    }

    #[test]
    fn single_box_found() {
        let boxes = [Aabb::new(
            Vec3::new(1.0, -1.0, 0.0),
            Vec3::new(2.0, 1.0, 3.0),
        )];
        let bvh = Bvh::build(&boxes);
        assert_eq!(bvh.len(), 1);
        assert_eq!(bvh.node_count(), 1);
        let c = bvh.segment_candidates(Vec3::new(0.0, 0.0, 1.0), Vec3::new(3.0, 0.0, 1.0));
        assert_eq!(c, vec![0]);
    }

    #[test]
    fn coincident_centroids_fall_back_to_median() {
        // 40 identical point boxes: zero centroid spread on every axis, the
        // exact input SAH binning cannot rank. The median fallback must
        // still build a working (index-ordered) tree.
        let boxes = vec![Aabb::new(Vec3::new(1.0, 1.0, 1.0), Vec3::new(1.0, 1.0, 1.0)); 40];
        let bvh = Bvh::build(&boxes);
        let mut c = bvh.segment_candidates(Vec3::ZERO, Vec3::new(2.0, 2.0, 2.0));
        c.sort_unstable();
        assert_eq!(c, (0..40).collect::<Vec<_>>());
        assert!(bvh
            .segment_candidates(Vec3::new(0.0, 5.0, 0.0), Vec3::new(2.0, 5.0, 0.0))
            .is_empty());
    }

    /// Deterministic pseudo-random boxes for the superset property.
    fn scene_boxes(seed: u64, n: usize) -> Vec<Aabb> {
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        (0..n)
            .map(|_| {
                let c = Vec3::new(next() * 20.0, next() * 20.0, next() * 4.0);
                let h = Vec3::new(
                    0.05 + next() * 2.0,
                    0.05 + next() * 2.0,
                    0.05 + next() * 2.0,
                );
                Aabb::new(c - h, c + h)
            })
            .collect()
    }

    /// Degenerate boxes: zero-extent "walls" (flat in one axis), point
    /// boxes, and clusters sharing one exact centroid — the inputs where
    /// SAH binning must fall back to the median split.
    fn degenerate_boxes(seed: u64, n: usize) -> Vec<Aabb> {
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        (0..n)
            .map(|i| {
                let c = match i % 3 {
                    // A shared exact centroid: coincident on every axis.
                    0 => Vec3::new(5.0, 5.0, 1.0),
                    _ => Vec3::new(next() * 20.0, next() * 20.0, next() * 4.0),
                };
                match i % 3 {
                    // Varying halfwidths around the shared centroid.
                    0 => {
                        let h = next() * 1.5;
                        Aabb::new(c - Vec3::new(h, h, h), c + Vec3::new(h, h, h))
                    }
                    // Zero-extent wall: flat in x or y.
                    1 => {
                        let h = Vec3::new(
                            if i % 2 == 0 { 0.0 } else { 1.0 + next() },
                            if i % 2 == 0 { 1.0 + next() } else { 0.0 },
                            1.5,
                        );
                        Aabb::new(c - h, c + h)
                    }
                    // Point box.
                    _ => Aabb::new(c, c),
                }
            })
            .collect()
    }

    /// Deterministic segments for packet tests: a mix of general-position,
    /// axis-parallel (degenerate direction) and short segments.
    fn packet_segments(seed: u64, k: usize) -> Vec<(Vec3, Vec3)> {
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        (0..k)
            .map(|i| {
                let from = Vec3::new(next() * 24.0 - 2.0, next() * 24.0 - 2.0, next() * 4.0);
                let to = match i % 4 {
                    // Axis-parallel in y and z: exercises the degenerate
                    // containment fallback lanes.
                    0 => Vec3::new(next() * 24.0 - 2.0, from.y, from.z),
                    // Fully degenerate z.
                    1 => Vec3::new(next() * 24.0 - 2.0, next() * 24.0 - 2.0, from.z),
                    // Short segment.
                    2 => from + Vec3::new(next() * 0.5, next() * 0.5, next() * 0.1),
                    _ => Vec3::new(next() * 24.0 - 2.0, next() * 24.0 - 2.0, next() * 4.0),
                };
                (from, to)
            })
            .collect()
    }

    #[test]
    fn packet_early_exit_retires_only_that_lane() {
        let boxes = scene_boxes(11, 80);
        let bvh = Bvh::build(&boxes);
        let seg = (Vec3::new(-1.0, -1.0, 1.0), Vec3::new(21.0, 21.0, 2.0));
        let packet = SegmentPacket::<F32x8>::new(&[seg, seg, seg]);
        let mut counts = [0usize; 3];
        let done = bvh.packet_candidates_until(&packet, |lane, _, _| {
            counts[lane] += 1;
            lane == 1
        });
        assert_eq!(done, 0b010, "only lane 1 asked to retire");
        assert_eq!(counts[1], 1, "retired lane sees no further candidates");
        // The surviving identical lanes keep visiting the full stream.
        assert!(counts[0] > 1);
        assert_eq!(counts[0], counts[2]);
    }

    #[test]
    fn packet_on_empty_tree_visits_nothing() {
        let bvh = Bvh::build(&[]);
        let packet = SegmentPacket::<F32x8>::new(&[(Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0))]);
        let done = bvh.packet_candidates_until(&packet, |_, _, _| panic!("no candidates expected"));
        assert_eq!(done, 0);
    }

    #[test]
    #[should_panic(expected = "packet holds 1..=8 segments")]
    fn packet_rejects_empty_batch() {
        SegmentPacket::<F32x8>::new(&[]);
    }

    #[test]
    fn refit_with_unchanged_boxes_preserves_candidates() {
        let boxes = scene_boxes(7, 60);
        let built = Bvh::build(&boxes);
        let mut refitted = built.clone();
        refitted.refit(&boxes);
        for (from, to) in [
            (Vec3::new(-1.0, -1.0, 1.0), Vec3::new(21.0, 21.0, 2.0)),
            (Vec3::new(5.0, 0.0, 0.5), Vec3::new(5.0, 20.0, 3.5)),
        ] {
            assert_eq!(
                built.segment_candidates(from, to),
                refitted.segment_candidates(from, to)
            );
        }
    }

    #[test]
    #[should_panic(expected = "one box per indexed primitive")]
    fn refit_rejects_mismatched_box_count() {
        let boxes = scene_boxes(3, 10);
        let mut bvh = Bvh::build(&boxes);
        bvh.refit(&boxes[..9]);
    }

    /// Shared conservative-superset check: every brute box hit must appear
    /// among the tree's candidates.
    fn assert_superset(bvh: &Bvh, boxes: &[Aabb], from: Vec3, to: Vec3) -> Result<(), String> {
        let candidates = bvh.segment_candidates(from, to);
        for (i, b) in boxes.iter().enumerate() {
            if b.intersects_segment(from, to) && !candidates.contains(&i) {
                return Err(format!("dropped true hit {i}"));
            }
        }
        for &i in &candidates {
            if i >= boxes.len() {
                return Err(format!("fabricated candidate {i}"));
            }
        }
        Ok(())
    }

    proptest! {
        #[test]
        fn prop_refit_stays_conservative_after_moves(
            seed in 0u64..100_000,
            n in 1usize..120,
            moved in 0usize..8,
            dx in -6.0..6.0f64, dy in -6.0..6.0f64,
        ) {
            // Build on the original boxes, move a few, refit, and check the
            // conservative-superset contract against the *moved* boxes.
            let mut boxes = scene_boxes(seed, n);
            let mut bvh = Bvh::build(&boxes);
            let delta = Vec3::new(dx, dy, 0.0);
            for b in boxes.iter_mut().take(moved.min(n)) {
                *b = Aabb::new(b.min + delta, b.max + delta);
            }
            bvh.refit(&boxes);
            let from = Vec3::new(-8.0, -8.0, 1.0);
            let to = Vec3::new(28.0, 28.0, 2.0);
            prop_assert!(assert_superset(&bvh, &boxes, from, to).is_ok());
        }

        #[test]
        fn prop_degenerate_boxes_build_and_refit_conservative(
            seed in 0u64..100_000,
            n in 1usize..90,
            moved in 0usize..8,
            dx in -4.0..4.0f64, dz in -1.0..1.0f64,
            x0 in -2.0..22.0f64, y0 in -2.0..22.0f64,
            x1 in -2.0..22.0f64, y1 in -2.0..22.0f64,
        ) {
            // Zero-extent walls, point boxes and coincident centroids:
            // exercise the SAH median fallback on build, then perturb and
            // refit — the conservative contract must hold throughout, for
            // both builders.
            let mut boxes = degenerate_boxes(seed, n);
            let mut sah = Bvh::build(&boxes);
            let mut median = Bvh::build_median(&boxes);
            let from = Vec3::new(x0, y0, 0.5);
            let to = Vec3::new(x1, y1, 2.5);
            prop_assert!(assert_superset(&sah, &boxes, from, to).is_ok());
            prop_assert!(assert_superset(&median, &boxes, from, to).is_ok());

            let delta = Vec3::new(dx, 0.0, dz);
            for b in boxes.iter_mut().take(moved.min(n)) {
                *b = Aabb::new(b.min + delta, b.max + delta);
            }
            sah.refit(&boxes);
            median.refit(&boxes);
            prop_assert!(assert_superset(&sah, &boxes, from, to).is_ok());
            prop_assert!(assert_superset(&median, &boxes, from, to).is_ok());
        }

        #[test]
        fn prop_candidates_superset_of_brute_hits(
            seed in 0u64..1_000_000,
            n in 0usize..200,
            x0 in -2.0..22.0f64, y0 in -2.0..22.0f64, z0 in -1.0..5.0f64,
            x1 in -2.0..22.0f64, y1 in -2.0..22.0f64, z1 in -1.0..5.0f64,
        ) {
            let boxes = scene_boxes(seed, n);
            let from = Vec3::new(x0, y0, z0);
            let to = Vec3::new(x1, y1, z1);
            // Both builders obey the same conservative contract.
            prop_assert!(assert_superset(&Bvh::build(&boxes), &boxes, from, to).is_ok());
            prop_assert!(assert_superset(&Bvh::build_median(&boxes), &boxes, from, to).is_ok());
        }

        #[test]
        fn prop_packet_candidates_conservative(
            seed in 0u64..100_000,
            n in 1usize..150,
            k in 1usize..=8,
            degenerate in 0usize..2,
        ) {
            // Packet traversal must uphold the same conservative-superset
            // contract per lane as the scalar walk, for every packet
            // width (including <8 remainder packets) and for degenerate
            // zero-extent / point boxes.
            let boxes = if degenerate == 1 {
                degenerate_boxes(seed, n)
            } else {
                scene_boxes(seed, n)
            };
            let segs = packet_segments(seed ^ 0xD1F7, k);
            let packet = SegmentPacket::<F32x8>::new(&segs);
            prop_assert_eq!(packet.len(), k);
            for bvh in [Bvh::build(&boxes), Bvh::build_median(&boxes)] {
                // Indexing by lane also asserts no visit ever names an
                // inactive lane (lane >= k would panic).
                let mut per_lane: Vec<Vec<usize>> = vec![Vec::new(); k];
                let mut slot_pairs: Vec<(usize, usize)> = Vec::new();
                bvh.for_each_packet_candidate(&packet, |lane, slot, prim| {
                    slot_pairs.push((slot, prim));
                    per_lane[lane].push(prim);
                });
                for (slot, prim) in slot_pairs {
                    prop_assert_eq!(bvh.order()[slot] as usize, prim, "slot/prim mismatch");
                }
                for (lane, &(from, to)) in segs.iter().enumerate() {
                    for (i, b) in boxes.iter().enumerate() {
                        if b.intersects_segment(from, to) {
                            prop_assert!(
                                per_lane[lane].contains(&i),
                                "lane {} dropped true hit {}", lane, i
                            );
                        }
                    }
                    for &i in &per_lane[lane] {
                        prop_assert!(i < boxes.len(), "fabricated candidate {}", i);
                    }
                }
            }
        }

        #[test]
        fn prop_no_duplicate_candidates(seed in 0u64..100_000, n in 0usize..100) {
            let boxes = scene_boxes(seed, n);
            for bvh in [Bvh::build(&boxes), Bvh::build_median(&boxes)] {
                let mut c = bvh.segment_candidates(
                    Vec3::new(-1.0, -1.0, 1.0),
                    Vec3::new(21.0, 21.0, 2.0),
                );
                let total = c.len();
                c.sort_unstable();
                c.dedup();
                prop_assert_eq!(total, c.len());
                // Leaves partition the primitive set: every primitive is in
                // exactly one leaf, so a full-cover query finds all of them.
                prop_assert!(bvh.len() == n);
            }
        }
    }

    // ── AabbBank ───────────────────────────────────────────────────────

    /// The backends the host can actually run, scalar reference first.
    fn runnable_backends() -> Vec<surfos_em::simd::Backend> {
        use surfos_em::simd::Backend;
        let mut backends = vec![Backend::Scalar, Backend::Sse2];
        if surfos_em::simd::avx2_available() {
            backends.push(Backend::Avx2);
        }
        backends
    }

    #[test]
    fn aabb_bank_empty_visits_nothing() {
        let bank = AabbBank::new(&[]);
        assert!(bank.is_empty());
        assert_eq!(bank.len(), 0);
        for backend in runnable_backends() {
            bank.for_each_candidate_with(backend, Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0), |_| {
                panic!("empty bank produced a candidate")
            });
        }
    }

    #[test]
    fn aabb_bank_visits_hit_boxes_in_order() {
        let boxes = scene_boxes(3, 40);
        let bank = AabbBank::new(&boxes);
        assert_eq!(bank.len(), 40);
        let from = Vec3::new(-1.0, -1.0, 1.0);
        let to = Vec3::new(21.0, 21.0, 2.0);
        for backend in runnable_backends() {
            let mut got = Vec::new();
            bank.for_each_candidate_with(backend, from, to, |i| got.push(i));
            assert!(got.windows(2).all(|w| w[0] < w[1]), "{backend:?} unordered");
            for (i, b) in boxes.iter().enumerate() {
                if b.intersects_segment(from, to) {
                    assert!(got.contains(&i), "{backend:?} dropped hit box {i}");
                }
            }
        }
    }

    proptest! {
        #[test]
        fn prop_aabb_bank_is_conservative_on_every_backend(
            seed in 0u64..100_000,
            n in 0usize..60,
            k in 1usize..8,
        ) {
            // The bank must never drop a box the exact f64 segment test
            // accepts — on any backend, including axis-parallel segments
            // (the padded-containment path) and degenerate boxes.
            let boxes = if seed % 2 == 0 {
                degenerate_boxes(seed, n)
            } else {
                scene_boxes(seed, n)
            };
            let bank = AabbBank::new(&boxes);
            for (from, to) in packet_segments(seed ^ 0x0BB5, k) {
                for backend in runnable_backends() {
                    let mut got = vec![false; n];
                    bank.for_each_candidate_with(backend, from, to, |i| got[i] = true);
                    for (i, b) in boxes.iter().enumerate() {
                        if b.intersects_segment(from, to) {
                            prop_assert!(
                                got[i],
                                "{:?} dropped intersected box {}", backend, i
                            );
                        }
                    }
                }
            }
        }
    }
}
