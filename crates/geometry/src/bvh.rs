//! Axis-aligned bounding boxes and a bounding-volume hierarchy for
//! conservative segment queries.
//!
//! Ray tracing asks one geometric question over and over: *which primitives
//! might this segment touch?* A brute scan answers it in `O(n)` per segment;
//! the [`Bvh`] here answers it in `O(log n + hits)` by recursively splitting
//! the primitive set at the median of its centroid spread. Queries are
//! **conservative**: they yield a superset of the truly-intersected
//! primitives (a candidate may still miss under the exact test), and never
//! drop a true hit — callers run the exact intersection test on each
//! candidate, so results are bit-identical to the brute scan.

use crate::vec3::Vec3;

/// An axis-aligned bounding box.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Aabb {
    /// The empty box: unions as identity, intersects nothing.
    pub fn empty() -> Self {
        Aabb {
            min: Vec3::new(f64::INFINITY, f64::INFINITY, f64::INFINITY),
            max: Vec3::new(f64::NEG_INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// The box spanning two corners (normalized per axis).
    pub fn new(a: Vec3, b: Vec3) -> Self {
        Aabb {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// The tightest box around a set of points.
    pub fn from_points(points: impl IntoIterator<Item = Vec3>) -> Self {
        let mut out = Self::empty();
        for p in points {
            out.min = out.min.min(p);
            out.max = out.max.max(p);
        }
        out
    }

    /// The union of two boxes.
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// The box grown by `pad` on every face. Padding is how callers make
    /// queries conservative against exact-test tolerances (endpoint-graze
    /// margins, boundary `<=` comparisons).
    pub fn grown(&self, pad: f64) -> Aabb {
        let d = Vec3::new(pad, pad, pad);
        Aabb {
            min: self.min - d,
            max: self.max + d,
        }
    }

    /// The box centre.
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    fn axis(v: Vec3, axis: usize) -> f64 {
        match axis {
            0 => v.x,
            1 => v.y,
            _ => v.z,
        }
    }

    /// Slab test: does the closed segment `from → to` touch the box?
    ///
    /// Never returns a false negative for a segment that contains a point
    /// strictly inside the box — the property the conservative-culling
    /// contract rests on. Degenerate (axis-parallel) directions fall back to
    /// a containment check on that axis.
    pub fn intersects_segment(&self, from: Vec3, to: Vec3) -> bool {
        if self.min.x > self.max.x || self.min.y > self.max.y || self.min.z > self.max.z {
            return false; // empty (inverted) box: the slab swap would pass it
        }
        let mut t0 = 0.0f64;
        let mut t1 = 1.0f64;
        for axis in 0..3 {
            let o = Self::axis(from, axis);
            let d = Self::axis(to, axis) - o;
            let lo = Self::axis(self.min, axis);
            let hi = Self::axis(self.max, axis);
            if d.abs() < 1e-12 {
                if o < lo || o > hi {
                    return false;
                }
                continue;
            }
            let inv = 1.0 / d;
            let (mut a, mut b) = ((lo - o) * inv, (hi - o) * inv);
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            t0 = t0.max(a);
            t1 = t1.min(b);
            if t0 > t1 {
                return false;
            }
        }
        true
    }
}

/// One node of the flattened hierarchy. Leaves (`count > 0`) own the
/// primitive indices `order[start..start + count]`; interior nodes put their
/// left child at the next array slot and their right child at `right`.
#[derive(Debug, Clone, Copy)]
struct Node {
    aabb: Aabb,
    start: u32,
    count: u32,
    right: u32,
}

/// Primitives per leaf: small enough to cull well, large enough that the
/// tree stays shallow and near-degenerate scenes don't over-branch.
const LEAF_SIZE: usize = 4;

/// Median-split traversal depth is `⌈log2(n / LEAF_SIZE)⌉ + 1`; 64 covers
/// any primitive count a `u32`-indexed tree can hold.
const MAX_DEPTH: usize = 64;

/// A bounding-volume hierarchy over primitive bounding boxes.
///
/// The tree stores only indices into the caller's primitive array; callers
/// keep primitives in their original order, which is what makes index-order
/// tie-breaking (and thus bit-identical results) possible downstream.
#[derive(Debug, Clone, Default)]
pub struct Bvh {
    nodes: Vec<Node>,
    order: Vec<u32>,
}

impl Bvh {
    /// Builds the hierarchy over one box per primitive, by recursive median
    /// split on the centroid spread's longest axis. Deterministic: equal
    /// centroids tie-break on primitive index.
    pub fn build(boxes: &[Aabb]) -> Self {
        let mut bvh = Bvh {
            nodes: Vec::with_capacity(2 * boxes.len().max(1)),
            order: (0..boxes.len() as u32).collect(),
        };
        if !boxes.is_empty() {
            bvh.build_range(boxes, 0, boxes.len());
        }
        bvh
    }

    /// Number of indexed primitives.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when no primitives are indexed (every query yields nothing).
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    fn build_range(&mut self, boxes: &[Aabb], lo: usize, hi: usize) -> u32 {
        let node_idx = self.nodes.len() as u32;
        let mut aabb = Aabb::empty();
        for &i in &self.order[lo..hi] {
            aabb = aabb.union(&boxes[i as usize]);
        }
        self.nodes.push(Node {
            aabb,
            start: lo as u32,
            count: (hi - lo) as u32,
            right: 0,
        });
        if hi - lo <= LEAF_SIZE {
            return node_idx;
        }
        // Split at the median centroid along the widest centroid axis.
        let centroid_bounds = Aabb::from_points(
            self.order[lo..hi]
                .iter()
                .map(|&i| boxes[i as usize].center()),
        );
        let spread = centroid_bounds.max - centroid_bounds.min;
        let axis = if spread.x >= spread.y && spread.x >= spread.z {
            0
        } else if spread.y >= spread.z {
            1
        } else {
            2
        };
        self.order[lo..hi].sort_by(|&a, &b| {
            Aabb::axis(boxes[a as usize].center(), axis)
                .total_cmp(&Aabb::axis(boxes[b as usize].center(), axis))
                .then(a.cmp(&b))
        });
        let mid = lo + (hi - lo) / 2;
        self.build_range(boxes, lo, mid); // left child lands at node_idx + 1
        let right = self.build_range(boxes, mid, hi);
        self.nodes[node_idx as usize].count = 0;
        self.nodes[node_idx as usize].right = right;
        node_idx
    }

    /// Recomputes every node's bounds for updated primitive boxes without
    /// re-splitting: the topology and primitive order are kept, only the
    /// box unions are refreshed, bottom-up, in `O(nodes)`.
    ///
    /// This is the moving-primitive fast path — a scene where a few boxes
    /// shift per tick refits instead of rebuilding. Queries stay exactly as
    /// conservative as on a fresh build (every node bounds the union of its
    /// primitives' *current* boxes); only the split quality is frozen at
    /// build time, so refitting is for perturbations, not for a scene that
    /// has been wholly rearranged.
    ///
    /// # Panics
    /// Panics when `boxes` does not have one box per indexed primitive.
    pub fn refit(&mut self, boxes: &[Aabb]) {
        assert_eq!(
            boxes.len(),
            self.order.len(),
            "refit requires one box per indexed primitive"
        );
        surfos_obs::add("geometry.bvh.refits", 1);
        // Children always sit at higher indices than their parent (left at
        // `idx + 1`, right after the whole left subtree), so one reverse
        // sweep sees every child before its parent.
        for idx in (0..self.nodes.len()).rev() {
            let node = self.nodes[idx];
            self.nodes[idx].aabb = if node.count > 0 {
                let mut aabb = Aabb::empty();
                for &i in &self.order[node.start as usize..(node.start + node.count) as usize] {
                    aabb = aabb.union(&boxes[i as usize]);
                }
                aabb
            } else {
                self.nodes[idx + 1]
                    .aabb
                    .union(&self.nodes[node.right as usize].aabb)
            };
        }
    }

    /// Calls `visit` with the index of every primitive whose box the segment
    /// touches (a conservative superset of the exact hits). Visiting order
    /// is deterministic but *not* primitive order — callers that need
    /// ordered results sort by `(t, index)` afterwards.
    ///
    /// Returns early (and `true`) as soon as `visit` returns `true` —
    /// the any-hit fast path `has_los`-style queries use.
    pub fn segment_candidates_until(
        &self,
        from: Vec3,
        to: Vec3,
        mut visit: impl FnMut(usize) -> bool,
    ) -> bool {
        if self.nodes.is_empty() {
            return false;
        }
        let mut nodes_visited = 0u64;
        let mut candidates = 0u64;
        let mut hit = false;
        let mut stack = [0u32; MAX_DEPTH];
        let mut sp = 0usize;
        stack[sp] = 0;
        sp += 1;
        'traverse: while sp > 0 {
            sp -= 1;
            let idx = stack[sp] as usize;
            let node = &self.nodes[idx];
            nodes_visited += 1;
            if !node.aabb.intersects_segment(from, to) {
                continue;
            }
            if node.count > 0 {
                for &i in &self.order[node.start as usize..(node.start + node.count) as usize] {
                    candidates += 1;
                    if visit(i as usize) {
                        hit = true;
                        break 'traverse;
                    }
                }
            } else {
                // Left child is the next array slot; right was recorded at
                // build time. Pop order (left first) is a cache nicety, not
                // a correctness requirement.
                debug_assert!(sp + 2 <= MAX_DEPTH, "BVH deeper than traversal stack");
                stack[sp] = node.right;
                stack[sp + 1] = (idx + 1) as u32;
                sp += 2;
            }
        }
        if surfos_obs::enabled() {
            surfos_obs::add("geometry.bvh.queries", 1);
            surfos_obs::add("geometry.bvh.nodes_visited", nodes_visited);
            surfos_obs::add("geometry.bvh.candidates", candidates);
            // What a brute-force scan would have tested for this query.
            surfos_obs::add("geometry.bvh.brute_walls", self.order.len() as u64);
        }
        hit
    }

    /// Calls `visit` for every candidate primitive (no early exit).
    pub fn for_each_segment_candidate(&self, from: Vec3, to: Vec3, mut visit: impl FnMut(usize)) {
        self.segment_candidates_until(from, to, |i| {
            visit(i);
            false
        });
    }

    /// Collects candidate indices into a vector (convenience for tests).
    pub fn segment_candidates(&self, from: Vec3, to: Vec3) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_each_segment_candidate(from, to, |i| out.push(i));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_box_intersects_nothing() {
        let e = Aabb::empty();
        assert!(!e.intersects_segment(Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0)));
        let b = Aabb::new(Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0));
        assert_eq!(e.union(&b), b);
    }

    #[test]
    fn segment_through_box_hits() {
        let b = Aabb::new(Vec3::new(1.0, 1.0, 0.0), Vec3::new(2.0, 2.0, 3.0));
        assert!(b.intersects_segment(Vec3::new(0.0, 1.5, 1.0), Vec3::new(3.0, 1.5, 1.0)));
        assert!(!b.intersects_segment(Vec3::new(0.0, 3.0, 1.0), Vec3::new(3.0, 3.0, 1.0)));
        // Segment ending before the box: no hit.
        assert!(!b.intersects_segment(Vec3::new(0.0, 1.5, 1.0), Vec3::new(0.5, 1.5, 1.0)));
        // Axis-parallel segment inside the slab.
        assert!(b.intersects_segment(Vec3::new(1.5, 0.0, 1.0), Vec3::new(1.5, 3.0, 1.0)));
    }

    #[test]
    fn segment_fully_inside_box_hits() {
        let b = Aabb::new(Vec3::ZERO, Vec3::new(4.0, 4.0, 4.0));
        assert!(b.intersects_segment(Vec3::new(1.0, 1.0, 1.0), Vec3::new(2.0, 3.0, 2.0)));
    }

    #[test]
    fn empty_bvh_yields_nothing() {
        let bvh = Bvh::build(&[]);
        assert!(bvh.is_empty());
        assert!(bvh
            .segment_candidates(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0))
            .is_empty());
    }

    #[test]
    fn single_box_found() {
        let boxes = [Aabb::new(
            Vec3::new(1.0, -1.0, 0.0),
            Vec3::new(2.0, 1.0, 3.0),
        )];
        let bvh = Bvh::build(&boxes);
        assert_eq!(bvh.len(), 1);
        let c = bvh.segment_candidates(Vec3::new(0.0, 0.0, 1.0), Vec3::new(3.0, 0.0, 1.0));
        assert_eq!(c, vec![0]);
    }

    /// Deterministic pseudo-random boxes for the superset property.
    fn scene_boxes(seed: u64, n: usize) -> Vec<Aabb> {
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        (0..n)
            .map(|_| {
                let c = Vec3::new(next() * 20.0, next() * 20.0, next() * 4.0);
                let h = Vec3::new(
                    0.05 + next() * 2.0,
                    0.05 + next() * 2.0,
                    0.05 + next() * 2.0,
                );
                Aabb::new(c - h, c + h)
            })
            .collect()
    }

    #[test]
    fn refit_with_unchanged_boxes_preserves_candidates() {
        let boxes = scene_boxes(7, 60);
        let built = Bvh::build(&boxes);
        let mut refitted = built.clone();
        refitted.refit(&boxes);
        for (from, to) in [
            (Vec3::new(-1.0, -1.0, 1.0), Vec3::new(21.0, 21.0, 2.0)),
            (Vec3::new(5.0, 0.0, 0.5), Vec3::new(5.0, 20.0, 3.5)),
        ] {
            assert_eq!(
                built.segment_candidates(from, to),
                refitted.segment_candidates(from, to)
            );
        }
    }

    #[test]
    #[should_panic(expected = "one box per indexed primitive")]
    fn refit_rejects_mismatched_box_count() {
        let boxes = scene_boxes(3, 10);
        let mut bvh = Bvh::build(&boxes);
        bvh.refit(&boxes[..9]);
    }

    proptest! {
        #[test]
        fn prop_refit_stays_conservative_after_moves(
            seed in 0u64..100_000,
            n in 1usize..120,
            moved in 0usize..8,
            dx in -6.0..6.0f64, dy in -6.0..6.0f64,
        ) {
            // Build on the original boxes, move a few, refit, and check the
            // conservative-superset contract against the *moved* boxes.
            let mut boxes = scene_boxes(seed, n);
            let mut bvh = Bvh::build(&boxes);
            let delta = Vec3::new(dx, dy, 0.0);
            for b in boxes.iter_mut().take(moved.min(n)) {
                *b = Aabb::new(b.min + delta, b.max + delta);
            }
            bvh.refit(&boxes);
            let from = Vec3::new(-8.0, -8.0, 1.0);
            let to = Vec3::new(28.0, 28.0, 2.0);
            let candidates = bvh.segment_candidates(from, to);
            for (i, b) in boxes.iter().enumerate() {
                if b.intersects_segment(from, to) {
                    prop_assert!(
                        candidates.contains(&i),
                        "refit dropped true hit {i} (seed {seed}, n {n})"
                    );
                }
            }
        }

        #[test]
        fn prop_candidates_superset_of_brute_hits(
            seed in 0u64..1_000_000,
            n in 0usize..200,
            x0 in -2.0..22.0f64, y0 in -2.0..22.0f64, z0 in -1.0..5.0f64,
            x1 in -2.0..22.0f64, y1 in -2.0..22.0f64, z1 in -1.0..5.0f64,
        ) {
            let boxes = scene_boxes(seed, n);
            let bvh = Bvh::build(&boxes);
            let from = Vec3::new(x0, y0, z0);
            let to = Vec3::new(x1, y1, z1);
            let candidates = bvh.segment_candidates(from, to);
            // Every brute-force box hit must be among the candidates.
            for (i, b) in boxes.iter().enumerate() {
                if b.intersects_segment(from, to) {
                    prop_assert!(
                        candidates.contains(&i),
                        "BVH dropped true hit {i} (seed {seed}, n {n})"
                    );
                }
            }
            // And no candidate is fabricated.
            for &i in &candidates {
                prop_assert!(i < n);
            }
        }

        #[test]
        fn prop_no_duplicate_candidates(seed in 0u64..100_000, n in 0usize..100) {
            let boxes = scene_boxes(seed, n);
            let bvh = Bvh::build(&boxes);
            let mut c = bvh.segment_candidates(
                Vec3::new(-1.0, -1.0, 1.0),
                Vec3::new(21.0, 21.0, 2.0),
            );
            let total = c.len();
            c.sort_unstable();
            c.dedup();
            prop_assert_eq!(total, c.len());
        }
    }
}
