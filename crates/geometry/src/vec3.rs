//! 3-D vector math.
//!
//! A deliberately small, fully-tested vector type. SurfOS only needs the
//! operations ray tracing and frame transforms use; anything fancier would
//! be an invitation for unused, untested surface area.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point or direction in 3-D space, metres.
///
/// Convention throughout SurfOS: x–y is the floor plane, +z is up.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// X component (metres).
    pub x: f64,
    /// Y component (metres).
    pub y: f64,
    /// Z component (metres), up.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector / world origin.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit x.
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit y.
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit z (up).
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// A point on the floor plane (`z = 0`).
    #[inline]
    pub const fn xy(x: f64, y: f64) -> Self {
        Vec3 { x, y, z: 0.0 }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Euclidean length.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared length (cheaper; no square root).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.dot(self)
    }

    /// Distance to another point.
    #[inline]
    pub fn distance(self, o: Vec3) -> f64 {
        (self - o).norm()
    }

    /// Returns the unit vector in this direction.
    ///
    /// # Panics
    /// Panics on the (numerically) zero vector — a zero direction is always
    /// a logic bug upstream, never a valid geometry.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        assert!(n > 1e-12, "cannot normalize a zero vector");
        self / n
    }

    /// Linear interpolation: `self` at `t = 0`, `o` at `t = 1`.
    #[inline]
    pub fn lerp(self, o: Vec3, t: f64) -> Vec3 {
        self + (o - self) * t
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    /// Projection of this point onto the floor plane (`z = 0`).
    #[inline]
    pub fn flat(self) -> Vec3 {
        Vec3::new(self.x, self.y, 0.0)
    }

    /// Returns `true` if any component is NaN or infinite.
    #[inline]
    pub fn is_invalid(self) -> bool {
        !(self.x.is_finite() && self.y.is_finite() && self.z.is_finite())
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, k: f64) -> Vec3 {
        Vec3::new(self.x * k, self.y * k, self.z * k)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, k: f64) -> Vec3 {
        Vec3::new(self.x / k, self.y / k, self.z / k)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl std::fmt::Display for Vec3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.3}, {:.3}, {:.3})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-1.0, 0.5, 2.0);
        assert_eq!(a + b, Vec3::new(0.0, 2.5, 5.0));
        assert_eq!(a - b, Vec3::new(2.0, 1.5, 1.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn dot_and_cross() {
        assert_eq!(Vec3::X.dot(Vec3::Y), 0.0);
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
    }

    #[test]
    fn norm_and_distance() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert!((v.norm() - 5.0).abs() < 1e-12);
        assert!((Vec3::ZERO.distance(v) - 5.0).abs() < 1e-12);
        assert!((v.norm_sqr() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_is_unit() {
        let v = Vec3::new(2.0, -7.0, 0.5).normalized();
        assert!((v.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cannot normalize a zero vector")]
    fn normalize_zero_rejected() {
        let _ = Vec3::ZERO.normalized();
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn flat_zeroes_z() {
        assert_eq!(Vec3::new(1.0, 2.0, 3.0).flat(), Vec3::new(1.0, 2.0, 0.0));
    }

    #[test]
    fn invalid_detection() {
        assert!(Vec3::new(f64::NAN, 0.0, 0.0).is_invalid());
        assert!(!Vec3::new(1.0, 2.0, 3.0).is_invalid());
    }

    proptest! {
        #[test]
        fn prop_cross_orthogonal(
            ax in -10.0..10.0f64, ay in -10.0..10.0f64, az in -10.0..10.0f64,
            bx in -10.0..10.0f64, by in -10.0..10.0f64, bz in -10.0..10.0f64,
        ) {
            let a = Vec3::new(ax, ay, az);
            let b = Vec3::new(bx, by, bz);
            let c = a.cross(b);
            prop_assert!(c.dot(a).abs() < 1e-6);
            prop_assert!(c.dot(b).abs() < 1e-6);
        }

        #[test]
        fn prop_triangle_inequality(
            ax in -10.0..10.0f64, ay in -10.0..10.0f64, az in -10.0..10.0f64,
            bx in -10.0..10.0f64, by in -10.0..10.0f64, bz in -10.0..10.0f64,
        ) {
            let a = Vec3::new(ax, ay, az);
            let b = Vec3::new(bx, by, bz);
            prop_assert!((a + b).norm() <= a.norm() + b.norm() + 1e-9);
        }
    }
}
