//! Ready-made deployment scenarios.
//!
//! The paper's exploratory studies run in "two rooms of a furnished
//! apartment" (Figure 4a): an AP near the living-room wall, and an adjacent
//! target room (bedroom) that mmWave cannot reach through the concrete
//! partition — only through the open doorway, and then only a sliver.
//! Surfaces mounted at pre-determined anchors re-route energy into the
//! bedroom. [`two_room_apartment`] reconstructs that environment; the other
//! builders provide additional test environments.

use crate::material::Material;
use crate::plan::{FloorPlan, Room};
use crate::pose::Pose;
use crate::vec3::Vec3;
use crate::wall::Wall;

/// A deployment scenario: the environment plus the placement anchors the
/// paper treats as pre-determined.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The environment model.
    pub plan: FloorPlan,
    /// Access-point pose (position + facing).
    pub ap_pose: Pose,
    /// Named mounting anchors for surfaces (position + facing).
    pub anchors: Vec<(String, Pose)>,
    /// The name of the room coverage/sensing services target.
    pub target_room: String,
}

impl Scenario {
    /// Looks up an anchor pose by name.
    pub fn anchor(&self, name: &str) -> Option<&Pose> {
        self.anchors.iter().find(|(n, _)| n == name).map(|(_, p)| p)
    }

    /// The target [`Room`].
    ///
    /// # Panics
    /// Panics if the scenario was built with a dangling room name (builder
    /// bug, not user error).
    pub fn target(&self) -> &Room {
        self.plan
            .room(&self.target_room)
            .expect("scenario target room must exist")
    }
}

/// Ceiling height used by all builders (metres).
pub const CEILING_M: f64 = 3.0;

/// The two-room apartment of Figure 4a.
///
/// Layout (plan view, metres):
///
/// ```text
/// y=4  +--------------------+---------------+
///      |   living room      D   bedroom     |
///      |  AP                D  (target)     |
/// y=0  +--------------------+---------------+
///      x=0                 x=5             x=9
/// ```
///
/// - Exterior walls: concrete.
/// - Partition at `x = 5`: concrete, with an open doorway `D` at
///   `y ∈ [3.0, 3.8]` (no door leaf).
/// - AP: near the west living-room wall at `(0.3, 0.5, 2.0)`, facing +x by
///   default; experiments re-aim the boresight at the serving surface.
/// - Anchor `"living-wall"`: north living-room wall at `(2.5, 3.95, 1.5)`
///   facing −y (the paper's passive backhaul surface goes here; it sees
///   the AP and, through the doorway, the `"bedroom-wall"` anchor).
/// - Anchor `"bedroom-north"`: north bedroom wall at `(5.8, 3.95, 1.5)`
///   facing −y — visible from the AP through the doorway, covering the
///   whole bedroom (single-surface deployments mount here).
/// - Anchor `"bedroom-wall"`: east bedroom wall at `(8.95, 2.0, 1.5)`
///   facing −x (the paper's programmable steering surface goes here; it is
///   hidden from the AP but reachable from `"living-wall"`).
pub fn two_room_apartment() -> Scenario {
    let mut plan = FloorPlan::new();
    let h = CEILING_M;
    let conc = Material::Concrete;

    // Exterior shell.
    plan.add_wall(Wall::new(Vec3::xy(0.0, 0.0), Vec3::xy(9.0, 0.0), h, conc));
    plan.add_wall(Wall::new(Vec3::xy(9.0, 0.0), Vec3::xy(9.0, 4.0), h, conc));
    plan.add_wall(Wall::new(Vec3::xy(9.0, 4.0), Vec3::xy(0.0, 4.0), h, conc));
    plan.add_wall(Wall::new(Vec3::xy(0.0, 4.0), Vec3::xy(0.0, 0.0), h, conc));

    // Partition with open doorway at y in [3.0, 3.8].
    plan.add_wall(Wall::new(Vec3::xy(5.0, 0.0), Vec3::xy(5.0, 3.0), h, conc));
    plan.add_wall(Wall::new(Vec3::xy(5.0, 3.8), Vec3::xy(5.0, 4.0), h, conc));

    plan.add_room(Room::new(
        "living-room",
        Vec3::xy(0.0, 0.0),
        Vec3::xy(5.0, 4.0),
    ));
    plan.add_room(Room::new("bedroom", Vec3::xy(5.0, 0.0), Vec3::xy(9.0, 4.0)));

    let ap_pose = Pose::wall_mounted(Vec3::new(0.3, 0.5, 2.0), Vec3::X);
    let anchors = vec![
        (
            "living-wall".to_string(),
            Pose::wall_mounted(Vec3::new(2.5, 3.95, 1.5), Vec3::new(0.0, -1.0, 0.0)),
        ),
        (
            "bedroom-north".to_string(),
            Pose::wall_mounted(Vec3::new(5.8, 3.95, 1.5), Vec3::new(0.0, -1.0, 0.0)),
        ),
        (
            "bedroom-wall".to_string(),
            Pose::wall_mounted(Vec3::new(8.95, 2.0, 1.5), Vec3::new(-1.0, 0.0, 0.0)),
        ),
    ];

    Scenario {
        plan,
        ap_pose,
        anchors,
        target_room: "bedroom".to_string(),
    }
}

/// A three-room house: living room flanked by a bedroom (east, as in the
/// apartment) and an office (south), each behind a concrete wall with its
/// own doorway. Anchors: `"bedroom-north"` and `"office-east"` (each
/// doorway-visible from the AP and covering its room), plus
/// `"living-wall"`. Exercises multi-surface, multi-room deployments.
///
/// ```text
/// y=4  +--------------------+---------------+
///      |   living room      D1  bedroom     |
///      |  AP                D1              |
/// y=0  +------D2------------+---------------+
///      |   office           |   x=5..9
/// y=-4 +--------------------+
///      x=0                 x=5
/// ```
pub fn three_room_house() -> Scenario {
    let mut scen = two_room_apartment();
    let h = CEILING_M;
    let conc = Material::Concrete;

    // Carve a doorway D2 into the south wall of the living room and add
    // the office below it. The original south wall ran (0,0)→(9,0); keep
    // the bedroom's stretch and split the living-room stretch around
    // x ∈ [1.0, 1.8].
    // (Walls are append-only; the original south wall is replaced by
    // rebuilding the plan.)
    let mut plan = FloorPlan::new();
    // South wall: living-room part with doorway, then bedroom part.
    plan.add_wall(Wall::new(Vec3::xy(0.0, 0.0), Vec3::xy(1.0, 0.0), h, conc));
    plan.add_wall(Wall::new(Vec3::xy(1.8, 0.0), Vec3::xy(9.0, 0.0), h, conc));
    // East, north, west exterior walls (as in the apartment).
    plan.add_wall(Wall::new(Vec3::xy(9.0, 0.0), Vec3::xy(9.0, 4.0), h, conc));
    plan.add_wall(Wall::new(Vec3::xy(9.0, 4.0), Vec3::xy(0.0, 4.0), h, conc));
    plan.add_wall(Wall::new(Vec3::xy(0.0, 4.0), Vec3::xy(0.0, 0.0), h, conc));
    // Partition with doorway D1 (as in the apartment).
    plan.add_wall(Wall::new(Vec3::xy(5.0, 0.0), Vec3::xy(5.0, 3.0), h, conc));
    plan.add_wall(Wall::new(Vec3::xy(5.0, 3.8), Vec3::xy(5.0, 4.0), h, conc));
    // Office shell below the living room.
    plan.add_wall(Wall::new(Vec3::xy(0.0, 0.0), Vec3::xy(0.0, -4.0), h, conc));
    plan.add_wall(Wall::new(Vec3::xy(0.0, -4.0), Vec3::xy(5.0, -4.0), h, conc));
    plan.add_wall(Wall::new(Vec3::xy(5.0, -4.0), Vec3::xy(5.0, 0.0), h, conc));

    plan.add_room(Room::new(
        "living-room",
        Vec3::xy(0.0, 0.0),
        Vec3::xy(5.0, 4.0),
    ));
    plan.add_room(Room::new("bedroom", Vec3::xy(5.0, 0.0), Vec3::xy(9.0, 4.0)));
    plan.add_room(Room::new("office", Vec3::xy(0.0, -4.0), Vec3::xy(5.0, 0.0)));

    scen.plan = plan;
    // The office anchor: east office wall, facing west into the room,
    // visible from the AP through doorway D2 (AP at (0.3, 0.5) sees
    // through x ∈ [1.0, 1.8] at y=0 into the office).
    scen.anchors.push((
        "office-east".to_string(),
        Pose::wall_mounted(Vec3::new(4.95, -2.0, 1.5), Vec3::new(-1.0, 0.0, 0.0)),
    ));
    scen
}

/// A single open-plan office, 10 × 6 m, with a metal cabinet creating an
/// NLoS pocket. Anchor `"side-wall"` faces the pocket. Used by examples and
/// tests that need LOS plus one strong reflector.
pub fn open_office() -> Scenario {
    let mut plan = FloorPlan::new();
    let h = CEILING_M;
    let conc = Material::Concrete;

    plan.add_wall(Wall::new(Vec3::xy(0.0, 0.0), Vec3::xy(10.0, 0.0), h, conc));
    plan.add_wall(Wall::new(Vec3::xy(10.0, 0.0), Vec3::xy(10.0, 6.0), h, conc));
    plan.add_wall(Wall::new(Vec3::xy(10.0, 6.0), Vec3::xy(0.0, 6.0), h, conc));
    plan.add_wall(Wall::new(Vec3::xy(0.0, 6.0), Vec3::xy(0.0, 0.0), h, conc));
    // A 2 m metal cabinet in the middle of the room.
    plan.add_wall(Wall::new(
        Vec3::xy(5.0, 2.0),
        Vec3::xy(5.0, 4.0),
        2.0,
        Material::Metal,
    ));

    plan.add_room(Room::new("office", Vec3::xy(0.0, 0.0), Vec3::xy(10.0, 6.0)));

    let ap_pose = Pose::wall_mounted(Vec3::new(0.3, 3.0, 2.2), Vec3::X);
    let anchors = vec![(
        "side-wall".to_string(),
        Pose::wall_mounted(Vec3::new(5.0, 5.95, 2.0), Vec3::new(0.0, -1.0, 0.0)),
    )];

    Scenario {
        plan,
        ap_pose,
        anchors,
        target_room: "office".to_string(),
    }
}

/// An L-shaped corridor: the AP sees down one leg, the anchor
/// `"corner-wall"` sits at the corner and can bend coverage into the other
/// leg — the classic mmWave corner-reflector deployment.
pub fn corridor() -> Scenario {
    let mut plan = FloorPlan::new();
    let h = CEILING_M;
    let conc = Material::Concrete;

    // Leg A: x from 0..12, y from 0..2. Leg B: x from 10..12, y from 0..10.
    plan.add_wall(Wall::new(Vec3::xy(0.0, 0.0), Vec3::xy(12.0, 0.0), h, conc));
    plan.add_wall(Wall::new(Vec3::xy(0.0, 2.0), Vec3::xy(10.0, 2.0), h, conc));
    plan.add_wall(Wall::new(Vec3::xy(0.0, 0.0), Vec3::xy(0.0, 2.0), h, conc));
    plan.add_wall(Wall::new(
        Vec3::xy(12.0, 0.0),
        Vec3::xy(12.0, 10.0),
        h,
        conc,
    ));
    plan.add_wall(Wall::new(
        Vec3::xy(10.0, 2.0),
        Vec3::xy(10.0, 10.0),
        h,
        conc,
    ));
    plan.add_wall(Wall::new(
        Vec3::xy(10.0, 10.0),
        Vec3::xy(12.0, 10.0),
        h,
        conc,
    ));

    plan.add_room(Room::new("leg-a", Vec3::xy(0.0, 0.0), Vec3::xy(10.0, 2.0)));
    plan.add_room(Room::new(
        "leg-b",
        Vec3::xy(10.0, 2.0),
        Vec3::xy(12.0, 10.0),
    ));

    let ap_pose = Pose::wall_mounted(Vec3::new(0.3, 1.0, 2.2), Vec3::X);
    let anchors = vec![(
        "corner-wall".to_string(),
        Pose::wall_mounted(Vec3::new(11.9, 1.0, 1.8), Vec3::new(-1.0, 0.0, 0.0)),
    )];

    Scenario {
        plan,
        ap_pose,
        anchors,
        target_room: "leg-b".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surfos_em::band::NamedBand;

    #[test]
    fn apartment_rooms_exist() {
        let s = two_room_apartment();
        assert!(s.plan.room("living-room").is_some());
        assert!(s.plan.room("bedroom").is_some());
        assert_eq!(s.target().name, "bedroom");
    }

    #[test]
    fn ap_cannot_see_deep_bedroom() {
        let s = two_room_apartment();
        let deep = Vec3::new(7.0, 1.0, 1.2);
        assert!(!s.plan.has_los(s.ap_pose.position, deep));
        // Through concrete the mmWave loss is fatal.
        let band = NamedBand::MmWave28GHz.band();
        assert!(s.plan.penetration_loss_db(s.ap_pose.position, deep, &band) > 40.0);
    }

    #[test]
    fn doorway_admits_some_los() {
        let s = two_room_apartment();
        // The living-wall anchor sees into the bedroom through the doorway.
        let anchor = s.anchor("living-wall").expect("anchor exists");
        let through = Vec3::new(8.95, 2.0, 1.5); // the bedroom-wall anchor
        assert!(
            s.plan.has_los(anchor.position, through),
            "living-wall anchor must see bedroom-wall anchor through the doorway"
        );
    }

    #[test]
    fn ap_sees_living_wall_anchor() {
        let s = two_room_apartment();
        let anchor = s.anchor("living-wall").unwrap();
        assert!(s.plan.has_los(s.ap_pose.position, anchor.position));
        // And the anchor faces the AP (AP is in front of the surface).
        assert!(anchor.is_in_front(s.ap_pose.position));
    }

    #[test]
    fn bedroom_anchors_cover_room() {
        let s = two_room_apartment();
        for name in ["bedroom-wall", "bedroom-north"] {
            let anchor = s.anchor(name).unwrap();
            let grid = s.target().sample_grid(4, 4, 1.2, 0.4);
            for p in grid {
                assert!(s.plan.has_los(anchor.position, p), "{name} blocked to {p}");
                assert!(anchor.is_in_front(p), "{name}: behind surface: {p}");
            }
        }
    }

    #[test]
    fn ap_sees_bedroom_north_anchor_through_doorway() {
        let s = two_room_apartment();
        let anchor = s.anchor("bedroom-north").unwrap();
        assert!(s.plan.has_los(s.ap_pose.position, anchor.position));
        assert!(anchor.is_in_front(s.ap_pose.position));
    }

    #[test]
    fn ap_cannot_see_bedroom_wall_anchor() {
        let s = two_room_apartment();
        let anchor = s.anchor("bedroom-wall").unwrap();
        assert!(!s.plan.has_los(s.ap_pose.position, anchor.position));
    }

    #[test]
    fn unknown_anchor_is_none() {
        let s = two_room_apartment();
        assert!(s.anchor("garage").is_none());
    }

    #[test]
    fn house_office_anchor_geometry() {
        let s = three_room_house();
        let office = s.plan.room("office").expect("office exists");
        let anchor = s.anchor("office-east").expect("anchor exists");
        // The AP sees the anchor through the south doorway.
        assert!(
            s.plan.has_los(s.ap_pose.position, anchor.position),
            "AP must see office-east through D2"
        );
        // And the anchor covers the office.
        for p in office.sample_grid(3, 3, 1.2, 0.5) {
            assert!(s.plan.has_los(anchor.position, p), "blocked to {p}");
            assert!(anchor.is_in_front(p));
        }
        // Deep office is dead to the AP directly.
        assert!(!s
            .plan
            .has_los(s.ap_pose.position, Vec3::new(3.5, -3.0, 1.2)));
        // The apartment anchors are still present and correct.
        assert!(s.anchor("bedroom-north").is_some());
        assert!(s.anchor("living-wall").is_some());
    }

    #[test]
    fn office_cabinet_blocks() {
        let s = open_office();
        let behind = Vec3::new(7.0, 3.0, 1.0);
        assert!(!s.plan.has_los(s.ap_pose.position, behind));
        let clear = Vec3::new(7.0, 5.5, 1.0);
        assert!(s.plan.has_los(s.ap_pose.position, clear));
    }

    #[test]
    fn corridor_corner_blocks() {
        let s = corridor();
        let around = Vec3::new(11.0, 8.0, 1.5);
        assert!(!s.plan.has_los(s.ap_pose.position, around));
        let anchor = s.anchor("corner-wall").unwrap();
        assert!(s.plan.has_los(s.ap_pose.position, anchor.position));
        assert!(s.plan.has_los(anchor.position, around));
    }
}
