//! Building materials with frequency-dependent RF behaviour.
//!
//! Two numbers matter per material per band: how much power survives
//! *through* it (penetration) and how much survives a specular *bounce*
//! (reflection). Both rise steeply with frequency for lossy dielectrics —
//! the reason mmWave needs surfaces at all. Values follow the usual indoor
//! measurement literature (ITU-R P.2040-class numbers), rounded; the
//! qualitative ordering is what the experiments rely on.

use serde::{Deserialize, Serialize};
use surfos_em::band::Band;

/// A building material, exposing penetration and reflection losses by band.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Material {
    /// Gypsum board on studs — interior partition walls.
    Drywall,
    /// Poured or block concrete — structural walls.
    Concrete,
    /// Single-pane glass — windows.
    Glass,
    /// Sheet metal / metallized surfaces — effectively opaque, mirror-like.
    Metal,
    /// Solid wood — doors, furniture.
    Wood,
    /// A human body (used by the dynamics model for walking blockers).
    HumanBody,
}

impl Material {
    /// Every variant, in discriminant order: `ALL[m.index()] == m`.
    /// Band-sweep hot loops use this to tabulate per-band losses once per
    /// probe instead of re-evaluating the match per crossed wall.
    pub const ALL: [Material; 6] = [
        Material::Drywall,
        Material::Concrete,
        Material::Glass,
        Material::Metal,
        Material::Wood,
        Material::HumanBody,
    ];

    /// Dense index of this variant within [`Material::ALL`].
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// One-way penetration loss in dB (positive) for a ray crossing the
    /// material at the given band.
    ///
    /// Sub-6 GHz values are modest; mmWave values are large enough that a
    /// single interior wall kills a 60 GHz link — the premise of the
    /// paper's coverage-extension scenarios.
    pub fn penetration_loss_db(self, band: &Band) -> f64 {
        let f_ghz = band.center_hz / 1e9;
        match self {
            Material::Drywall => {
                if f_ghz < 6.0 {
                    3.0
                } else if f_ghz < 40.0 {
                    12.0
                } else {
                    20.0
                }
            }
            Material::Concrete => {
                if f_ghz < 6.0 {
                    12.0
                } else if f_ghz < 40.0 {
                    45.0
                } else {
                    80.0
                }
            }
            Material::Glass => {
                if f_ghz < 6.0 {
                    2.0
                } else if f_ghz < 40.0 {
                    6.0
                } else {
                    10.0
                }
            }
            Material::Metal => 90.0,
            Material::Wood => {
                if f_ghz < 6.0 {
                    4.0
                } else if f_ghz < 40.0 {
                    9.0
                } else {
                    15.0
                }
            }
            Material::HumanBody => {
                if f_ghz < 6.0 {
                    5.0
                } else {
                    25.0
                }
            }
        }
    }

    /// Power loss in dB (positive) for a specular reflection off the
    /// material at the given band. Metal mirrors almost perfectly;
    /// dielectrics lose several dB per bounce.
    pub fn reflection_loss_db(self, band: &Band) -> f64 {
        let f_ghz = band.center_hz / 1e9;
        match self {
            Material::Drywall => {
                if f_ghz < 6.0 {
                    7.0
                } else {
                    10.0
                }
            }
            Material::Concrete => {
                if f_ghz < 6.0 {
                    4.0
                } else {
                    10.0
                }
            }
            Material::Glass => {
                if f_ghz < 6.0 {
                    6.0
                } else {
                    8.0
                }
            }
            Material::Metal => 0.5,
            Material::Wood => {
                if f_ghz < 6.0 {
                    8.0
                } else {
                    11.0
                }
            }
            Material::HumanBody => 15.0,
        }
    }

    /// Linear *amplitude* transmission factor through the material
    /// (`10^(-loss/20)`).
    pub fn transmission_amplitude(self, band: &Band) -> f64 {
        surfos_em::units::db_to_amplitude(-self.penetration_loss_db(band))
    }

    /// Linear *amplitude* reflection factor off the material.
    pub fn reflection_amplitude(self, band: &Band) -> f64 {
        surfos_em::units::db_to_amplitude(-self.reflection_loss_db(band))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surfos_em::band::NamedBand;

    #[test]
    fn mmwave_walls_are_much_more_opaque() {
        let lo = NamedBand::Ism2_4GHz.band();
        let hi = NamedBand::MmWave60GHz.band();
        for m in [Material::Drywall, Material::Concrete, Material::Wood] {
            assert!(
                m.penetration_loss_db(&hi) > 2.0 * m.penetration_loss_db(&lo),
                "{m:?}"
            );
        }
    }

    #[test]
    fn concrete_blocks_mmwave_dead() {
        // > 60 dB one-way: a 60 GHz link through concrete is unusable.
        let band = NamedBand::MmWave60GHz.band();
        assert!(Material::Concrete.penetration_loss_db(&band) > 60.0);
    }

    #[test]
    fn metal_reflects_nearly_perfectly() {
        let band = NamedBand::MmWave28GHz.band();
        assert!(Material::Metal.reflection_loss_db(&band) < 1.0);
        assert!(Material::Metal.penetration_loss_db(&band) > 80.0);
    }

    #[test]
    fn amplitude_factors_in_unit_range() {
        for m in [
            Material::Drywall,
            Material::Concrete,
            Material::Glass,
            Material::Metal,
            Material::Wood,
            Material::HumanBody,
        ] {
            for nb in NamedBand::ALL {
                let b = nb.band();
                let t = m.transmission_amplitude(&b);
                let r = m.reflection_amplitude(&b);
                assert!((0.0..=1.0).contains(&t), "{m:?} {nb:?} t={t}");
                assert!((0.0..=1.0).contains(&r), "{m:?} {nb:?} r={r}");
            }
        }
    }

    #[test]
    fn reflection_beats_penetration_for_metal_and_concrete_mmwave() {
        let band = NamedBand::MmWave24GHz.band();
        for m in [Material::Metal, Material::Concrete] {
            assert!(m.reflection_amplitude(&band) > m.transmission_amplitude(&band));
        }
    }

    #[test]
    fn human_body_blocks_mmwave() {
        let band = NamedBand::MmWave60GHz.band();
        assert!(Material::HumanBody.penetration_loss_db(&band) >= 20.0);
    }
}
