//! # surfos-geometry
//!
//! 3-D geometry substrate for SurfOS: the indoor environments whose radio
//! propagation the OS manages.
//!
//! The model is 2.5-D, the standard indoor-RF compromise: walls are vertical
//! rectangles described by a 2-D segment in plan view plus a height, while
//! all positions, distances and reflections are computed in full 3-D. This
//! captures what the paper's experiments need — mmWave-opaque walls carving
//! an apartment into rooms, surfaces mounted on walls, ray paths with
//! specular bounces — without a triangle-mesh tracer.
//!
//! Modules:
//! - [`vec3`]: 3-D vector math,
//! - [`material`]: building materials with frequency-dependent losses,
//! - [`wall`]: vertical wall panels and ray intersection,
//! - [`pose`]: surface mounting poses and local-frame transforms,
//! - [`plan`]: floor plans (walls + named room regions) and LOS queries,
//! - [`bvh`]: bounding boxes and a binned-SAH BVH with a packed 32-byte
//!   node layout, for conservative segment queries,
//! - [`reflect`]: specular reflection via the image method,
//! - [`scenario`]: ready-made environments, including the paper's two-room
//!   apartment (Figure 4a).

#![warn(missing_docs)]

pub mod bvh;
pub mod material;
pub mod plan;
pub mod pose;
pub mod reflect;
pub mod scenario;
pub mod vec3;
pub mod wall;

pub use bvh::{Aabb, Bvh, SegmentPacket};
pub use material::Material;
pub use plan::{FloorPlan, Room, WallIndex};
pub use pose::Pose;
pub use vec3::Vec3;
pub use wall::Wall;
