//! Mounting poses and local-frame transforms.
//!
//! A surface (or AP array) is mounted somewhere with some orientation. The
//! [`Pose`] carries that placement and converts between the world frame and
//! the device's local frame, where `surfos-em`'s array math lives: local
//! x–y is the device plane, local +z is the device normal.

use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// Position plus orientation of a planar device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pose {
    /// Device centre in world coordinates.
    pub position: Vec3,
    /// Unit normal of the device plane (local +z) in world coordinates.
    pub normal: Vec3,
    /// Unit "up" direction of the device (local +y) in world coordinates.
    pub up: Vec3,
}

impl Pose {
    /// Creates a pose. `normal` and `up` are normalized and `up` is
    /// re-orthogonalized against `normal` (Gram–Schmidt), so callers may
    /// pass approximate vectors.
    ///
    /// # Panics
    /// Panics if `normal` is zero or `up` is parallel to `normal`.
    pub fn new(position: Vec3, normal: Vec3, up: Vec3) -> Self {
        let n = normal.normalized();
        let u_raw = up - n * up.dot(n);
        assert!(
            u_raw.norm() > 1e-9,
            "up direction parallel to normal; orientation undefined"
        );
        Pose {
            position,
            normal: n,
            up: u_raw.normalized(),
        }
    }

    /// A wall-mounted pose: device at `position`, facing along `facing`
    /// (horizontal), with local up = world +z.
    pub fn wall_mounted(position: Vec3, facing: Vec3) -> Self {
        let f = Vec3::new(facing.x, facing.y, 0.0);
        Pose::new(position, f, Vec3::Z)
    }

    /// The local x axis (device "right") in world coordinates.
    pub fn right(&self) -> Vec3 {
        self.up.cross(self.normal)
    }

    /// Converts a world-frame point to the device's local frame.
    pub fn world_to_local(&self, p: Vec3) -> Vec3 {
        let d = p - self.position;
        Vec3::new(d.dot(self.right()), d.dot(self.up), d.dot(self.normal))
    }

    /// Converts a local-frame point (e.g. an element offset) to world
    /// coordinates.
    pub fn local_to_world(&self, p: Vec3) -> Vec3 {
        self.position + self.right() * p.x + self.up * p.y + self.normal * p.z
    }

    /// The local-frame direction (unit) from the device centre towards a
    /// world point — the form `surfos_em::array::SteeringVector` expects.
    ///
    /// # Panics
    /// Panics if `p` coincides with the device centre.
    pub fn local_direction_to(&self, p: Vec3) -> [f64; 3] {
        let local = self.world_to_local(p).normalized();
        [local.x, local.y, local.z]
    }

    /// Angle in radians between the device normal and the direction to a
    /// world point: 0 on boresight, > π/2 behind the device.
    pub fn off_boresight_angle(&self, p: Vec3) -> f64 {
        let d = (p - self.position).normalized();
        d.dot(self.normal).clamp(-1.0, 1.0).acos()
    }

    /// Returns `true` if the world point is in front of the device plane.
    pub fn is_in_front(&self, p: Vec3) -> bool {
        (p - self.position).dot(self.normal) > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pose() -> Pose {
        // Mounted on a wall at x=0, facing +x, 1.5 m up.
        Pose::wall_mounted(Vec3::new(0.0, 2.0, 1.5), Vec3::X)
    }

    #[test]
    fn frame_is_orthonormal() {
        let p = Pose::new(
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(1.0, 1.0, 0.3),
            Vec3::new(0.1, 0.0, 1.0),
        );
        let (r, u, n) = (p.right(), p.up, p.normal);
        for v in [r, u, n] {
            assert!((v.norm() - 1.0).abs() < 1e-9);
        }
        assert!(r.dot(u).abs() < 1e-9);
        assert!(u.dot(n).abs() < 1e-9);
        assert!(n.dot(r).abs() < 1e-9);
        // right-handed: right × up = normal
        assert!((r.cross(u) - n).norm() < 1e-9);
    }

    #[test]
    fn world_local_roundtrip() {
        let p = pose();
        let w = Vec3::new(3.0, -1.0, 2.0);
        let back = p.local_to_world(p.world_to_local(w));
        assert!((back - w).norm() < 1e-9);
    }

    #[test]
    fn boresight_point_is_local_z() {
        let p = pose();
        let ahead = p.position + Vec3::X * 5.0;
        let local = p.world_to_local(ahead);
        assert!((local - Vec3::new(0.0, 0.0, 5.0)).norm() < 1e-9);
        assert!(p.off_boresight_angle(ahead) < 1e-9);
    }

    #[test]
    fn behind_detection() {
        let p = pose();
        assert!(p.is_in_front(p.position + Vec3::X));
        assert!(!p.is_in_front(p.position - Vec3::X));
        assert!(p.off_boresight_angle(p.position - Vec3::X) > std::f64::consts::FRAC_PI_2);
    }

    #[test]
    fn local_direction_is_unit() {
        let p = pose();
        let d = p.local_direction_to(Vec3::new(4.0, 4.0, 0.0));
        let n = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
        assert!((n - 1.0).abs() < 1e-9);
    }

    #[test]
    fn up_gram_schmidt() {
        // Slightly tilted up vector gets squared against the normal.
        let p = Pose::new(Vec3::ZERO, Vec3::X, Vec3::new(0.5, 0.0, 1.0));
        assert!(p.up.dot(p.normal).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "parallel to normal")]
    fn parallel_up_rejected() {
        let _ = Pose::new(Vec3::ZERO, Vec3::X, Vec3::X);
    }

    proptest! {
        #[test]
        fn prop_roundtrip_any_point(
            px in -10.0..10.0f64, py in -10.0..10.0f64, pz in -10.0..10.0f64,
            nx in -1.0..1.0f64, ny in -1.0..1.0f64,
        ) {
            // ensure non-degenerate normal
            let normal = Vec3::new(nx + 2.0, ny, 0.3);
            let pose = Pose::new(Vec3::new(1.0, -2.0, 0.5), normal, Vec3::Z);
            let w = Vec3::new(px, py, pz);
            let back = pose.local_to_world(pose.world_to_local(w));
            prop_assert!((back - w).norm() < 1e-8);
        }

        #[test]
        fn prop_transform_preserves_distance(
            px in -10.0..10.0f64, py in -10.0..10.0f64, pz in -10.0..10.0f64,
        ) {
            let pose = pose();
            let w = Vec3::new(px, py, pz);
            let local = pose.world_to_local(w);
            prop_assert!((local.norm() - (w - pose.position).norm()).abs() < 1e-8);
        }
    }
}
