//! Specular reflection via the image method.
//!
//! First-order wall bounces are the dominant NLoS mechanism indoors. For a
//! wall plane, the image method reflects the source across the plane; the
//! straight line from the image to the receiver crosses the wall exactly at
//! the specular point. The bounce is valid only if that point lies within
//! the finite wall panel.

use crate::vec3::Vec3;
use crate::wall::Wall;

/// A validated first-order specular reflection off a wall.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reflection {
    /// The specular point on the wall.
    pub point: Vec3,
    /// Path length source → specular point.
    pub d1: f64,
    /// Path length specular point → receiver.
    pub d2: f64,
}

impl Reflection {
    /// Total unfolded path length.
    pub fn total_length(&self) -> f64 {
        self.d1 + self.d2
    }
}

/// Mirrors point `p` across the (infinite) vertical plane containing `wall`.
pub fn mirror_across_wall(p: Vec3, wall: &Wall) -> Vec3 {
    let n = wall.normal(); // horizontal unit normal of the wall plane
    let d = (p - wall.a).dot(n);
    p - n * (2.0 * d)
}

/// Computes the first-order specular reflection of `source → wall → receiver`
/// if one exists on the finite panel.
///
/// Returns `None` when:
/// - source and receiver are on opposite sides of the wall plane (a bounce
///   needs both on the same side),
/// - the specular point falls outside the wall footprint or above its top,
/// - either point lies (numerically) on the wall plane.
pub fn specular_reflection(source: Vec3, receiver: Vec3, wall: &Wall) -> Option<Reflection> {
    let n = wall.normal();
    let ds = (source - wall.a).dot(n);
    let dr = (receiver - wall.a).dot(n);
    // Both must be strictly on the same side of the plane.
    if ds.abs() < 1e-9 || dr.abs() < 1e-9 || ds.signum() != dr.signum() {
        return None;
    }

    let image = mirror_across_wall(source, wall);
    // Parametrize image → receiver; it crosses the plane at t where the
    // signed distance interpolates through zero.
    let di = (image - wall.a).dot(n); // = -ds
    let t = di / (di - dr);
    if !(0.0..=1.0).contains(&t) {
        return None;
    }
    let point = image.lerp(receiver, t);

    // Must land on the finite panel: within the footprint segment and height.
    let seg = wall.b - wall.a;
    let u = (point - wall.a).dot(seg) / seg.norm_sqr();
    if !(0.0..=1.0).contains(&u) {
        return None;
    }
    if point.z < 0.0 || point.z > wall.height {
        return None;
    }

    Some(Reflection {
        point,
        d1: source.distance(point),
        d2: point.distance(receiver),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::material::Material;
    use proptest::prelude::*;

    fn wall() -> Wall {
        // Wall along the x axis from (0,0) to (10,0), 3 m tall.
        Wall::new(
            Vec3::xy(0.0, 0.0),
            Vec3::xy(10.0, 0.0),
            3.0,
            Material::Metal,
        )
    }

    #[test]
    fn mirror_flips_normal_component() {
        let w = wall();
        let p = Vec3::new(2.0, 3.0, 1.0);
        let m = mirror_across_wall(p, &w);
        assert!((m - Vec3::new(2.0, -3.0, 1.0)).norm() < 1e-9);
        // Mirroring twice is the identity.
        assert!((mirror_across_wall(m, &w) - p).norm() < 1e-9);
    }

    #[test]
    fn symmetric_bounce_at_midpoint() {
        let w = wall();
        let s = Vec3::new(3.0, 2.0, 1.0);
        let r = Vec3::new(7.0, 2.0, 1.0);
        let refl = specular_reflection(s, r, &w).expect("bounce exists");
        assert!((refl.point - Vec3::new(5.0, 0.0, 1.0)).norm() < 1e-9);
        assert!((refl.d1 - refl.d2).abs() < 1e-9);
    }

    #[test]
    fn angle_of_incidence_equals_reflection() {
        let w = wall();
        let s = Vec3::new(1.0, 1.0, 1.5);
        let r = Vec3::new(8.0, 4.0, 1.5);
        let refl = specular_reflection(s, r, &w).expect("bounce exists");
        let n = w.normal();
        let in_dir = (refl.point - s).normalized();
        let out_dir = (r - refl.point).normalized();
        // Angles to the wall normal are equal.
        assert!((in_dir.dot(n).abs() - out_dir.dot(n).abs()).abs() < 1e-9);
        // And the reflected path equals the image-method straight line.
        let image = mirror_across_wall(s, &w);
        assert!((refl.total_length() - image.distance(r)).abs() < 1e-9);
    }

    #[test]
    fn opposite_sides_no_bounce() {
        let w = wall();
        let s = Vec3::new(3.0, 2.0, 1.0);
        let r = Vec3::new(7.0, -2.0, 1.0);
        assert!(specular_reflection(s, r, &w).is_none());
    }

    #[test]
    fn bounce_off_panel_end_rejected() {
        let w = wall();
        // Specular point would be at x = 12, beyond the panel.
        let s = Vec3::new(11.0, 2.0, 1.0);
        let r = Vec3::new(13.0, 2.0, 1.0);
        assert!(specular_reflection(s, r, &w).is_none());
    }

    #[test]
    fn bounce_above_wall_rejected() {
        let w = wall(); // 3 m tall
        let s = Vec3::new(3.0, 2.0, 5.0);
        let r = Vec3::new(7.0, 2.0, 5.0);
        assert!(specular_reflection(s, r, &w).is_none());
    }

    #[test]
    fn point_on_plane_rejected() {
        let w = wall();
        let s = Vec3::new(3.0, 0.0, 1.0);
        let r = Vec3::new(7.0, 2.0, 1.0);
        assert!(specular_reflection(s, r, &w).is_none());
    }

    proptest! {
        #[test]
        fn prop_reflection_shortest_bounce_path(
            sx in 1.0..9.0f64, sy in 0.5..5.0f64,
            rx in 1.0..9.0f64, ry in 0.5..5.0f64,
            bx in 0.0..10.0f64,
        ) {
            // The specular point minimizes d1+d2 over the wall; compare with
            // an arbitrary candidate point on the wall at the same height.
            let w = wall();
            let s = Vec3::new(sx, sy, 1.0);
            let r = Vec3::new(rx, ry, 1.0);
            if let Some(refl) = specular_reflection(s, r, &w) {
                let candidate = Vec3::new(bx, 0.0, 1.0);
                let alt = s.distance(candidate) + candidate.distance(r);
                prop_assert!(refl.total_length() <= alt + 1e-9);
            }
        }

        #[test]
        fn prop_mirror_involution(
            px in -20.0..20.0f64, py in -20.0..20.0f64, pz in 0.0..5.0f64,
        ) {
            let w = wall();
            let p = Vec3::new(px, py, pz);
            let back = mirror_across_wall(mirror_across_wall(p, &w), &w);
            prop_assert!((back - p).norm() < 1e-9);
        }
    }
}
