//! Floor plans: walls plus named room regions, and propagation queries.
//!
//! The [`FloorPlan`] is the environment model the channel simulator takes as
//! input (the paper's "3D environment model"). It answers the two queries
//! ray tracing needs:
//!
//! - which walls does a segment cross (→ penetration loss), and
//! - is there line of sight between two points.

use crate::bvh::{Aabb, Bvh};
use crate::material::Material;
use crate::vec3::Vec3;
use crate::wall::Wall;
use serde::{Deserialize, Serialize};
use surfos_em::band::Band;

/// Conservative padding on wall bounding boxes: `intersect_segment` accepts
/// crossings up to the 1 mm graze margin beyond a wall's footprint ends, so
/// boxes grow by 2 mm to keep every acceptable crossing point strictly
/// inside (no floating-point edge cases on box faces).
const WALL_AABB_PAD: f64 = 2e-3;

/// A spatial index over a [`FloorPlan`]'s walls: a [`Bvh`] over padded wall
/// boxes plus the per-wall graze margins, so candidate tests skip both the
/// `O(walls)` scan and the per-wall square root.
///
/// Built by [`FloorPlan::build_wall_index`] and valid until the wall set
/// changes; the indexed queries (`*_with`) are bit-identical to their brute
/// counterparts on the plan the index was built from.
#[derive(Debug, Clone, Default)]
pub struct WallIndex {
    bvh: Bvh,
    u_margins: Vec<f64>,
}

impl WallIndex {
    /// Number of indexed walls (must match the queried plan's).
    pub fn wall_count(&self) -> usize {
        self.u_margins.len()
    }

    /// The underlying hierarchy (for benchmarks and composition into
    /// higher-level scene indexes).
    pub fn bvh(&self) -> &Bvh {
        &self.bvh
    }
}

/// A named rectangular room region (plan view), used for "optimize coverage
/// in the bedroom"-style service goals and for sampling evaluation grids.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Room {
    /// Human-readable name, e.g. `"bedroom"`.
    pub name: String,
    /// Minimum corner (plan view).
    pub min: Vec3,
    /// Maximum corner (plan view).
    pub max: Vec3,
}

impl Room {
    /// Creates a room from a name and two opposite corners.
    ///
    /// # Panics
    /// Panics if the region is degenerate.
    pub fn new(name: impl Into<String>, min: Vec3, max: Vec3) -> Self {
        let (min, max) = (min.min(max), min.max(max));
        assert!(
            max.x - min.x > 1e-9 && max.y - min.y > 1e-9,
            "room region is degenerate"
        );
        Room {
            name: name.into(),
            min: min.flat(),
            max: max.flat(),
        }
    }

    /// Plan-view area in square metres.
    pub fn area_m2(&self) -> f64 {
        (self.max.x - self.min.x) * (self.max.y - self.min.y)
    }

    /// Returns `true` if a point lies inside the room (plan view, edges
    /// inclusive).
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// The room centre at a given height.
    pub fn center(&self, z: f64) -> Vec3 {
        Vec3::new(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
            z,
        )
    }

    /// A uniform `nx × ny` grid of sample points at height `z`, inset from
    /// the walls by `margin` metres. This is the evaluation grid the
    /// paper's heatmaps and CDFs are computed over.
    pub fn sample_grid(&self, nx: usize, ny: usize, z: f64, margin: f64) -> Vec<Vec3> {
        assert!(nx > 0 && ny > 0, "grid must be non-empty");
        let x0 = self.min.x + margin;
        let x1 = self.max.x - margin;
        let y0 = self.min.y + margin;
        let y1 = self.max.y - margin;
        assert!(x1 > x0 && y1 > y0, "margin leaves no room interior");
        let mut pts = Vec::with_capacity(nx * ny);
        for iy in 0..ny {
            for ix in 0..nx {
                let fx = if nx == 1 {
                    0.5
                } else {
                    ix as f64 / (nx - 1) as f64
                };
                let fy = if ny == 1 {
                    0.5
                } else {
                    iy as f64 / (ny - 1) as f64
                };
                pts.push(Vec3::new(x0 + fx * (x1 - x0), y0 + fy * (y1 - y0), z));
            }
        }
        pts
    }
}

/// The environment model: a set of walls and named rooms.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FloorPlan {
    walls: Vec<Wall>,
    rooms: Vec<Room>,
}

impl FloorPlan {
    /// Creates an empty plan (free space).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a wall and returns its index.
    pub fn add_wall(&mut self, wall: Wall) -> usize {
        self.walls.push(wall);
        self.walls.len() - 1
    }

    /// Adds a room region and returns its index.
    pub fn add_room(&mut self, room: Room) -> usize {
        self.rooms.push(room);
        self.rooms.len() - 1
    }

    /// All walls.
    pub fn walls(&self) -> &[Wall] {
        &self.walls
    }

    /// All rooms.
    pub fn rooms(&self) -> &[Room] {
        &self.rooms
    }

    /// Looks a room up by name.
    pub fn room(&self, name: &str) -> Option<&Room> {
        self.rooms.iter().find(|r| r.name == name)
    }

    /// All wall crossings of the segment `from → to`, sorted by distance
    /// along the segment.
    pub fn crossings(&self, from: Vec3, to: Vec3) -> Vec<(usize, Material)> {
        let mut hits: Vec<(f64, usize, Material)> = self
            .walls
            .iter()
            .enumerate()
            .filter_map(|(i, w)| w.intersect_segment(from, to).map(|h| (h.t, i, w.material)))
            .collect();
        hits.sort_by(|a, b| a.0.total_cmp(&b.0));
        hits.into_iter().map(|(_, i, m)| (i, m)).collect()
    }

    /// Total one-way penetration loss in dB along the segment at `band`.
    /// Zero when the path is clear.
    pub fn penetration_loss_db(&self, from: Vec3, to: Vec3, band: &Band) -> f64 {
        self.crossings(from, to)
            .iter()
            .map(|(_, m)| m.penetration_loss_db(band))
            .sum()
    }

    /// The linear amplitude factor surviving the walls along the segment.
    pub fn transmission_amplitude(&self, from: Vec3, to: Vec3, band: &Band) -> f64 {
        surfos_em::units::db_to_amplitude(-self.penetration_loss_db(from, to, band))
    }

    /// Returns `true` if no wall crosses the segment.
    pub fn has_los(&self, from: Vec3, to: Vec3) -> bool {
        self.walls
            .iter()
            .all(|w| w.intersect_segment(from, to).is_none())
    }

    /// Builds a [`WallIndex`] over the current wall set (binned-SAH packed
    /// tree, see [`Bvh::build`]). Rebuild whenever walls are added or
    /// edited; queries check only the wall *count*, so a stale index over
    /// mutated walls silently returns wrong answers.
    pub fn build_wall_index(&self) -> WallIndex {
        WallIndex {
            bvh: Bvh::build(&self.padded_wall_boxes()),
            u_margins: self.walls.iter().map(Wall::u_margin).collect(),
        }
    }

    /// A [`WallIndex`] whose hierarchy uses the reference median splitter
    /// ([`Bvh::build_median`]) instead of the default binned SAH. Indexed
    /// query results are bit-identical to [`FloorPlan::build_wall_index`]'s
    /// (the property tests pin this); only candidate counts and traversal
    /// cost differ. Kept as the comparison arm for equivalence proptests
    /// and the `plan/crossings_building` benchmarks.
    pub fn build_wall_index_median(&self) -> WallIndex {
        WallIndex {
            bvh: Bvh::build_median(&self.padded_wall_boxes()),
            u_margins: self.walls.iter().map(Wall::u_margin).collect(),
        }
    }

    /// Wall bounding boxes grown by [`WALL_AABB_PAD`], the primitive set
    /// both index builders consume.
    fn padded_wall_boxes(&self) -> Vec<Aabb> {
        self.walls
            .iter()
            .map(|w| w.aabb().grown(WALL_AABB_PAD))
            .collect()
    }

    /// [`FloorPlan::crossings`] through a [`WallIndex`]: same result, bit
    /// for bit, touching only candidate walls. Candidates arrive in tree
    /// order, so hits are re-sorted by `(t, wall index)` — exactly the
    /// order the brute scan's stable distance sort produces.
    pub fn crossings_with(
        &self,
        index: &WallIndex,
        from: Vec3,
        to: Vec3,
    ) -> Vec<(usize, Material)> {
        debug_assert_eq!(index.wall_count(), self.walls.len(), "stale wall index");
        let t_margin = Wall::t_margin(from, to);
        let mut hits: Vec<(f64, usize, Material)> = Vec::new();
        index.bvh.for_each_segment_candidate(from, to, |i| {
            let w = &self.walls[i];
            if let Some(h) =
                w.intersect_segment_with_margins(from, to, t_margin, index.u_margins[i])
            {
                hits.push((h.t, i, w.material));
            }
        });
        hits.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        hits.into_iter().map(|(_, i, m)| (i, m)).collect()
    }

    /// [`FloorPlan::penetration_loss_db`] through a [`WallIndex`].
    pub fn penetration_loss_db_with(
        &self,
        index: &WallIndex,
        from: Vec3,
        to: Vec3,
        band: &Band,
    ) -> f64 {
        self.crossings_with(index, from, to)
            .iter()
            .map(|(_, m)| m.penetration_loss_db(band))
            .sum()
    }

    /// [`FloorPlan::transmission_amplitude`] through a [`WallIndex`].
    pub fn transmission_amplitude_with(
        &self,
        index: &WallIndex,
        from: Vec3,
        to: Vec3,
        band: &Band,
    ) -> f64 {
        surfos_em::units::db_to_amplitude(-self.penetration_loss_db_with(index, from, to, band))
    }

    /// [`FloorPlan::has_los`] through a [`WallIndex`], with any-hit early
    /// exit.
    pub fn has_los_with(&self, index: &WallIndex, from: Vec3, to: Vec3) -> bool {
        debug_assert_eq!(index.wall_count(), self.walls.len(), "stale wall index");
        let t_margin = Wall::t_margin(from, to);
        !index.bvh.segment_candidates_until(from, to, |i| {
            self.walls[i]
                .intersect_segment_with_margins(from, to, t_margin, index.u_margins[i])
                .is_some()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surfos_em::band::NamedBand;

    /// Two 4×4 m rooms split by a drywall partition along x = 4.
    fn two_rooms() -> FloorPlan {
        let mut plan = FloorPlan::new();
        plan.add_wall(Wall::new(
            Vec3::xy(4.0, 0.0),
            Vec3::xy(4.0, 4.0),
            3.0,
            Material::Drywall,
        ));
        plan.add_room(Room::new("left", Vec3::xy(0.0, 0.0), Vec3::xy(4.0, 4.0)));
        plan.add_room(Room::new("right", Vec3::xy(4.0, 0.0), Vec3::xy(8.0, 4.0)));
        plan
    }

    #[test]
    fn los_within_room_blocked_across() {
        let plan = two_rooms();
        let a = Vec3::new(1.0, 2.0, 1.5);
        let b = Vec3::new(3.0, 2.0, 1.5);
        let c = Vec3::new(6.0, 2.0, 1.5);
        assert!(plan.has_los(a, b));
        assert!(!plan.has_los(a, c));
    }

    #[test]
    fn penetration_loss_accumulates() {
        let mut plan = two_rooms();
        plan.add_wall(Wall::new(
            Vec3::xy(6.0, 0.0),
            Vec3::xy(6.0, 4.0),
            3.0,
            Material::Concrete,
        ));
        let band = NamedBand::MmWave28GHz.band();
        let loss =
            plan.penetration_loss_db(Vec3::new(1.0, 2.0, 1.5), Vec3::new(7.0, 2.0, 1.5), &band);
        let want = Material::Drywall.penetration_loss_db(&band)
            + Material::Concrete.penetration_loss_db(&band);
        assert!((loss - want).abs() < 1e-9);
    }

    #[test]
    fn crossings_sorted_by_distance() {
        let mut plan = FloorPlan::new();
        let w_far = plan.add_wall(Wall::new(
            Vec3::xy(6.0, 0.0),
            Vec3::xy(6.0, 4.0),
            3.0,
            Material::Concrete,
        ));
        let w_near = plan.add_wall(Wall::new(
            Vec3::xy(4.0, 0.0),
            Vec3::xy(4.0, 4.0),
            3.0,
            Material::Drywall,
        ));
        let hits = plan.crossings(Vec3::new(1.0, 2.0, 1.0), Vec3::new(7.0, 2.0, 1.0));
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, w_near);
        assert_eq!(hits[1].0, w_far);
    }

    #[test]
    fn clear_path_no_loss() {
        let plan = two_rooms();
        let band = NamedBand::WiFi5GHz.band();
        let loss =
            plan.penetration_loss_db(Vec3::new(1.0, 1.0, 1.0), Vec3::new(2.0, 3.0, 1.0), &band);
        assert_eq!(loss, 0.0);
        assert_eq!(
            plan.transmission_amplitude(Vec3::new(1.0, 1.0, 1.0), Vec3::new(2.0, 3.0, 1.0), &band),
            1.0
        );
    }

    #[test]
    fn room_lookup_and_contains() {
        let plan = two_rooms();
        let left = plan.room("left").expect("room exists");
        assert!(left.contains(Vec3::xy(1.0, 1.0)));
        assert!(!left.contains(Vec3::xy(5.0, 1.0)));
        assert!(plan.room("kitchen").is_none());
    }

    #[test]
    fn sample_grid_inside_room() {
        let plan = two_rooms();
        let room = plan.room("right").unwrap();
        let grid = room.sample_grid(5, 4, 1.2, 0.3);
        assert_eq!(grid.len(), 20);
        for p in &grid {
            assert!(room.contains(*p), "{p} outside room");
            assert_eq!(p.z, 1.2);
            assert!(p.x >= room.min.x + 0.3 - 1e-9 && p.x <= room.max.x - 0.3 + 1e-9);
        }
    }

    #[test]
    fn single_point_grid_is_center() {
        let room = Room::new("r", Vec3::xy(0.0, 0.0), Vec3::xy(2.0, 2.0));
        let grid = room.sample_grid(1, 1, 1.0, 0.1);
        assert_eq!(grid.len(), 1);
        assert!((grid[0] - Vec3::new(1.0, 1.0, 1.0)).norm() < 1e-9);
    }

    #[test]
    fn room_corners_normalized() {
        let r = Room::new("r", Vec3::xy(3.0, 5.0), Vec3::xy(1.0, 2.0));
        assert_eq!(r.min, Vec3::xy(1.0, 2.0));
        assert_eq!(r.max, Vec3::xy(3.0, 5.0));
        assert!((r.area_m2() - 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_room_rejected() {
        let _ = Room::new("r", Vec3::xy(1.0, 1.0), Vec3::xy(1.0, 5.0));
    }

    // ── Wall-index equivalence ─────────────────────────────────────────

    use proptest::prelude::*;

    /// Deterministic pseudo-random clutter: `n` short walls scattered over
    /// a 10×10 m area with mixed materials.
    fn cluttered(n: usize, seed: u64) -> FloorPlan {
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        let materials = [
            Material::Drywall,
            Material::Concrete,
            Material::Glass,
            Material::Wood,
        ];
        let mut plan = FloorPlan::new();
        for i in 0..n {
            let x = next() * 10.0;
            let y = next() * 10.0;
            let ang = next() * std::f64::consts::TAU;
            let len = 0.4 + next() * 2.6;
            plan.add_wall(Wall::new(
                Vec3::xy(x, y),
                Vec3::xy(x + ang.cos() * len, y + ang.sin() * len),
                1.0 + next() * 3.0,
                materials[i % materials.len()],
            ));
        }
        plan
    }

    #[test]
    fn indexed_crossings_match_brute_on_two_rooms() {
        let plan = two_rooms();
        let index = plan.build_wall_index();
        let from = Vec3::new(1.0, 2.0, 1.5);
        let to = Vec3::new(6.0, 2.0, 1.5);
        assert_eq!(
            plan.crossings(from, to),
            plan.crossings_with(&index, from, to)
        );
        assert_eq!(plan.has_los(from, to), plan.has_los_with(&index, from, to));
    }

    #[test]
    fn empty_plan_index_answers_clear() {
        let plan = FloorPlan::new();
        let index = plan.build_wall_index();
        let band = NamedBand::WiFi5GHz.band();
        let from = Vec3::new(0.0, 0.0, 1.0);
        let to = Vec3::new(5.0, 5.0, 1.0);
        assert!(plan.crossings_with(&index, from, to).is_empty());
        assert!(plan.has_los_with(&index, from, to));
        assert_eq!(
            plan.transmission_amplitude_with(&index, from, to, &band),
            1.0
        );
    }

    proptest! {
        #[test]
        fn prop_indexed_queries_bit_identical_to_brute(
            seed in 0u64..1_000_000,
            n in 0usize..96,
            x0 in -1.0..11.0f64, y0 in -1.0..11.0f64, z0 in 0.1..4.0f64,
            x1 in -1.0..11.0f64, y1 in -1.0..11.0f64, z1 in 0.1..4.0f64,
        ) {
            let plan = cluttered(n, seed);
            let from = Vec3::new(x0, y0, z0);
            let to = Vec3::new(x1, y1, z1);
            let band = NamedBand::MmWave28GHz.band();

            // Both the SAH-packed tree and the reference median tree must
            // reproduce the brute scan bit for bit.
            for index in [plan.build_wall_index(), plan.build_wall_index_median()] {
                prop_assert_eq!(
                    plan.crossings(from, to),
                    plan.crossings_with(&index, from, to)
                );
                prop_assert_eq!(plan.has_los(from, to), plan.has_los_with(&index, from, to));
                prop_assert_eq!(
                    plan.penetration_loss_db(from, to, &band).to_bits(),
                    plan.penetration_loss_db_with(&index, from, to, &band).to_bits()
                );
                prop_assert_eq!(
                    plan.transmission_amplitude(from, to, &band).to_bits(),
                    plan.transmission_amplitude_with(&index, from, to, &band).to_bits()
                );
            }
        }
    }
}
