//! Floor plans: walls plus named room regions, and propagation queries.
//!
//! The [`FloorPlan`] is the environment model the channel simulator takes as
//! input (the paper's "3D environment model"). It answers the two queries
//! ray tracing needs:
//!
//! - which walls does a segment cross (→ penetration loss), and
//! - is there line of sight between two points.

use crate::bvh::{Aabb, Bvh, SegmentPacket};
use crate::material::Material;
use crate::vec3::Vec3;
use crate::wall::Wall;
use serde::{Deserialize, Serialize};
use surfos_em::band::Band;
use surfos_em::simd::{Backend, F32x8, F64x4, SimdF32x8, SimdF64x4, SimdMask8, SimdMaskD4};

/// Conservative padding on wall bounding boxes: `intersect_segment` accepts
/// crossings up to the 1 mm graze margin beyond a wall's footprint ends, so
/// boxes grow by 2 mm to keep every acceptable crossing point strictly
/// inside (no floating-point edge cases on box faces).
const WALL_AABB_PAD: f64 = 2e-3;

/// A spatial index over a [`FloorPlan`]'s walls: a [`Bvh`] over padded wall
/// boxes plus the per-wall graze margins, so candidate tests skip both the
/// `O(walls)` scan and the per-wall square root.
///
/// Built by [`FloorPlan::build_wall_index`] and valid until the wall set
/// changes; the indexed queries (`*_with`) are bit-identical to their brute
/// counterparts on the plan the index was built from.
#[derive(Debug, Clone, Default)]
pub struct WallIndex {
    bvh: Bvh,
    u_margins: Vec<f64>,
    /// Per-wall intersection operands in the tree's *slot* order, so the
    /// packet-candidate loops read them sequentially within each leaf
    /// instead of chasing the scattered `Wall` structs.
    soa: Vec<WallSoa>,
    /// The same operands as `soa`, columnar (still slot order), for the
    /// four-lane `f64` crossing solve in the batch queries.
    bank: WallBank,
    /// Reflection-geometry operands in *wall* order for the vectorized
    /// specular prefilter.
    spec: SpecularBank,
}

/// Lane width the specular bank is padded to.
const SPEC_LANES: usize = 8;

/// Margin coefficient for the prefilter's interval arithmetic: ~160× the
/// `f32` unit roundoff, so a handful of chained operations stay far inside
/// the bound while the filter still rejects everything that isn't within
/// ~1e-5 relative of a specular acceptance boundary.
const SPEC_EPS: f32 = 1e-5;

/// Per-wall specular-reflection operands in **wall order**, flattened to
/// `f32` rows padded to a multiple of [`SPEC_LANES`] so
/// [`WallIndex::specular_candidates`] streams them eight walls at a time.
/// Padding rows are all-zero, which the filter conservatively keeps and the
/// caller-side index bound discards.
#[derive(Debug, Clone, Default)]
struct SpecularBank {
    /// Wall anchor `a` (plan view).
    ax: Vec<f32>,
    ay: Vec<f32>,
    /// Wall direction `s = b − a`.
    sx: Vec<f32>,
    sy: Vec<f32>,
    /// Unnormalized wall normal `ñ = (−s.y, s.x)`; sign convention is
    /// irrelevant because every use is either sign-symmetric or squared.
    nx: Vec<f32>,
    ny: Vec<f32>,
    /// `1 / |s|²`.
    inv_l2: Vec<f32>,
    height: Vec<f32>,
    /// `|ñ.x| + |ñ.y|` — normal magnitude scale for error bounds.
    nmag: Vec<f32>,
    /// `|a.x| + |a.y|` — anchor magnitude scale for error bounds.
    amag: Vec<f32>,
}

impl SpecularBank {
    fn new(walls: &[Wall]) -> Self {
        let mut b = SpecularBank::default();
        for w in walls {
            let sx = w.b.x - w.a.x;
            let sy = w.b.y - w.a.y;
            b.ax.push(w.a.x as f32);
            b.ay.push(w.a.y as f32);
            b.sx.push(sx as f32);
            b.sy.push(sy as f32);
            b.nx.push(-sy as f32);
            b.ny.push(sx as f32);
            b.inv_l2.push((1.0 / (sx * sx + sy * sy)) as f32);
            b.height.push(w.height as f32);
            b.nmag.push((sy.abs() + sx.abs()) as f32);
            b.amag.push((w.a.x.abs() + w.a.y.abs()) as f32);
        }
        let pad = walls.len().next_multiple_of(SPEC_LANES);
        for v in [
            &mut b.ax,
            &mut b.ay,
            &mut b.sx,
            &mut b.sy,
            &mut b.nx,
            &mut b.ny,
            &mut b.inv_l2,
            &mut b.height,
            &mut b.nmag,
            &mut b.amag,
        ] {
            v.resize(pad, 0.0);
        }
        b
    }
}

/// The operands [`Wall::intersect_segment_with_margins`] reads, flattened
/// to one cache-friendly row. `s = b − a` is precomputed at build time —
/// the exact subtraction the wall test performs per call, so batched tests
/// using these rows stay bit-identical to the struct-walking scalar path.
#[derive(Debug, Clone, Copy)]
struct WallSoa {
    qx: f64,
    qy: f64,
    sx: f64,
    sy: f64,
    height: f64,
    u_margin: f64,
    material: Material,
}

impl WallSoa {
    fn new(w: &Wall) -> Self {
        WallSoa {
            qx: w.a.x,
            qy: w.a.y,
            sx: w.b.x - w.a.x,
            sy: w.b.y - w.a.y,
            height: w.height,
            u_margin: w.u_margin(),
            material: w.material,
        }
    }

    /// The crossing parameter `t` of segment `(p, p + r)` (plan view, with
    /// `fz`/`dz` the 3-D z interpolation operands) through this wall, or
    /// `None` — operation-for-operation the same arithmetic as
    /// [`Wall::intersect_segment_with_margins`], so accepted `t` values
    /// are bit-identical.
    #[inline]
    #[allow(clippy::too_many_arguments)] // flat scalars keep the per-lane call register-resident
    fn crossing_t(
        &self,
        px: f64,
        py: f64,
        rx: f64,
        ry: f64,
        fz: f64,
        dz: f64,
        t_margin: f64,
    ) -> Option<f64> {
        let rxs = rx * self.sy - ry * self.sx;
        if rxs.abs() < 1e-12 {
            return None;
        }
        let qpx = self.qx - px;
        let qpy = self.qy - py;
        let t = (qpx * self.sy - qpy * self.sx) / rxs;
        if t <= t_margin || t >= 1.0 - t_margin {
            return None;
        }
        let u = (qpx * ry - qpy * rx) / rxs;
        if !(u >= -self.u_margin && u <= 1.0 + self.u_margin) {
            return None;
        }
        let z = fz + dz * t;
        if z < 0.0 || z > self.height {
            return None;
        }
        Some(t)
    }
}

/// The [`WallSoa`] operands as `f64` columns (still tree-slot order), so
/// [`crossing_t_x4`] gathers four candidate walls into one vector register
/// per operand. The margin columns are pre-applied forms of the scalar
/// test's runtime expressions — `-u_margin` (exact negation) and
/// `1.0 + u_margin` (same addition, same rounding) — so the vector
/// comparisons see bit-identical thresholds.
#[derive(Debug, Clone, Default)]
struct WallBank {
    qx: Vec<f64>,
    qy: Vec<f64>,
    sx: Vec<f64>,
    sy: Vec<f64>,
    height: Vec<f64>,
    neg_u_margin: Vec<f64>,
    one_plus_u_margin: Vec<f64>,
    /// Low 64 bits of the batch sort key, precomputed per tree slot:
    /// `[wall index : 48][material index : 8]` shifted into place (see
    /// `crossings_batch_impl`). One sequential load per accepted hit
    /// replaces two scattered `order()`/`soa` reads in the hot callback.
    key_lo: Vec<u64>,
}

impl WallBank {
    fn new(soa: &[WallSoa], order: &[u32]) -> Self {
        let mut b = WallBank::default();
        for (w, &wall) in soa.iter().zip(order) {
            b.qx.push(w.qx);
            b.qy.push(w.qy);
            b.sx.push(w.sx);
            b.sy.push(w.sy);
            b.height.push(w.height);
            b.neg_u_margin.push(-w.u_margin);
            b.one_plus_u_margin.push(1.0 + w.u_margin);
            debug_assert!((wall as u64) < (1 << 48));
            b.key_lo
                .push(((wall as u64) << 16) | w.material.index() as u64);
        }
        b
    }
}

/// Four [`WallSoa::crossing_t`] solves at once: the crossing parameters of
/// one segment against the four walls at `slots`, as `(t lanes, accept
/// bitmask)`.
///
/// Every lane runs **operation-for-operation the same arithmetic** as the
/// scalar solve — each vector op is one correctly-rounded IEEE operation
/// per lane, and every [`SimdF64x4`] backend has bit-identical lane
/// semantics — so an accepted lane's `t` is bit-identical to the scalar
/// `Some(t)` and the accept decision matches the scalar one for all
/// finite inputs (NaN lanes, which finite walls never produce, fall on
/// the reject side of the `false`-on-NaN comparisons).
#[inline(always)]
#[allow(clippy::too_many_arguments)] // flat scalars keep the call register-resident
fn crossing_t_x4<W: SimdF64x4>(
    bank: &WallBank,
    slots: [usize; 4],
    px: f64,
    py: f64,
    rx: f64,
    ry: f64,
    fz: f64,
    dz: f64,
    t_margin: f64,
) -> (W, u8) {
    let gather = |col: &[f64]| W::from_array(slots.map(|s| col[s]));
    let sx = gather(&bank.sx);
    let sy = gather(&bank.sy);
    let rxv = W::splat(rx);
    let ryv = W::splat(ry);
    // rxs = rx·sy − ry·sx; |rxs| < 1e-12 ⇒ (near-)parallel, reject.
    let rxs = rxv.mul(sy).sub(ryv.mul(sx));
    let keep = rxs.abs().simd_ge(W::splat(1e-12));
    let qpx = gather(&bank.qx).sub(W::splat(px));
    let qpy = gather(&bank.qy).sub(W::splat(py));
    // t along the segment, accepted strictly inside the graze margins.
    let t = qpx.mul(sy).sub(qpy.mul(sx)).div(rxs);
    let keep = keep
        .and(W::splat(t_margin).simd_lt(t))
        .and(t.simd_lt(W::splat(1.0 - t_margin)));
    // u along the wall footprint, within the per-wall graze margins.
    let u = qpx.mul(ryv).sub(qpy.mul(rxv)).div(rxs);
    let keep = keep
        .and(u.simd_ge(gather(&bank.neg_u_margin)))
        .and(u.simd_le(gather(&bank.one_plus_u_margin)));
    // Crossing height within the wall's vertical extent.
    let z = W::splat(fz).add(W::splat(dz).mul(t));
    let keep = keep
        .and(z.simd_ge(W::splat(0.0)))
        .and(z.simd_le(gather(&bank.height)));
    (t, keep.bitmask())
}

impl WallIndex {
    /// Number of indexed walls (must match the queried plan's).
    pub fn wall_count(&self) -> usize {
        self.u_margins.len()
    }

    /// The underlying hierarchy (for benchmarks and composition into
    /// higher-level scene indexes).
    pub fn bvh(&self) -> &Bvh {
        &self.bvh
    }

    /// Walls that *might* give a specular reflection between `source` and
    /// `receiver`, in ascending wall order.
    ///
    /// This is a **conservative** vectorized prefilter over
    /// [`crate::reflect::specular_reflection`]'s acceptance tests: it
    /// re-derives the same-side, mirror-point footprint (`u ∈ [0, 1]`) and
    /// height (`z ∈ [0, height]`) conditions in `f32` **interval
    /// arithmetic** — every comparison carries an explicit error bound that
    /// dominates both the `f64 → f32` input rounding and the chained-op
    /// roundoff (coefficient `SPEC_EPS`, ~160× the `f32` unit roundoff),
    /// and NaN comparisons fall on the *keep* side. A wall is dropped only
    /// when the whole `f32` uncertainty interval lies outside the exact
    /// test's acceptance window, so the returned set is a superset of the
    /// walls the exact scan accepts (the property tests pin this). Callers
    /// run the exact test on the survivors; iterating them in the returned
    /// order reproduces the full-scan result exactly.
    ///
    /// Dispatches on [`surfos_em::simd::backend()`]: AVX2 native lanes,
    /// the portable pair type, or — on the scalar reference arm — no
    /// prefilter at all (every wall is returned, the trivially
    /// conservative superset).
    pub fn specular_candidates(&self, source: Vec3, receiver: Vec3) -> Vec<usize> {
        self.specular_candidates_with(surfos_em::simd::backend(), source, receiver)
    }

    /// [`Self::specular_candidates`] with an explicit kernel arm, for
    /// benches and cross-backend equivalence tests.
    ///
    /// # Panics
    /// Panics if `Backend::Avx2` is forced on a host without AVX2+FMA.
    #[doc(hidden)]
    pub fn specular_candidates_with(
        &self,
        backend: Backend,
        source: Vec3,
        receiver: Vec3,
    ) -> Vec<usize> {
        match backend {
            Backend::Scalar => (0..self.wall_count()).collect(),
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => {
                assert!(
                    surfos_em::simd::avx2_available(),
                    "Backend::Avx2 forced without AVX2+FMA support"
                );
                // SAFETY: avx2 presence asserted just above.
                unsafe { self.specular_candidates_avx2(source, receiver) }
            }
            _ => self.specular_candidates_impl::<F32x8>(source, receiver),
        }
    }

    /// AVX2 entry point: compiles the prefilter with 256-bit lanes.
    ///
    /// # Safety
    /// Requires the `avx2` CPU feature (the dispatch arm checks).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn specular_candidates_avx2(&self, source: Vec3, receiver: Vec3) -> Vec<usize> {
        self.specular_candidates_impl::<surfos_em::simd::avx2::F32x8A>(source, receiver)
    }

    #[inline(always)]
    fn specular_candidates_impl<V: SimdF32x8>(&self, source: Vec3, receiver: Vec3) -> Vec<usize> {
        let n = self.wall_count();
        let b = &self.spec;
        let mut out = Vec::new();
        let eps = V::splat(SPEC_EPS);
        let zero = V::splat(0.0);
        let one = V::splat(1.0);
        let two = V::splat(2.0);
        let four = V::splat(4.0);
        let sxp = V::splat(source.x as f32);
        let syp = V::splat(source.y as f32);
        let rxp = V::splat(receiver.x as f32);
        let ryp = V::splat(receiver.y as f32);
        let szp = V::splat(source.z as f32);
        let zspan = V::splat((receiver.z - source.z) as f32);
        let zspan_a = zspan.abs();
        // Endpoint magnitude scale: bounds the absolute rounding error of
        // any planar endpoint coordinate after the f32 conversion.
        let coordmag = V::splat(
            (source.x.abs() + source.y.abs() + receiver.x.abs() + receiver.y.abs()) as f32,
        );
        for c in (0..b.ax.len()).step_by(SPEC_LANES) {
            let load = |v: &[f32]| V::from_array(v[c..c + SPEC_LANES].try_into().unwrap());
            let ax = load(&b.ax);
            let ay = load(&b.ay);
            let nx = load(&b.nx);
            let ny = load(&b.ny);
            let nmag = load(&b.nmag);
            let amag = load(&b.amag);
            // Signed side values of both endpoints against ñ.
            let dsx = sxp.sub(ax);
            let dsy = syp.sub(ay);
            let drx = rxp.sub(ax);
            let dry = ryp.sub(ay);
            let p1 = dsx.mul(nx);
            let p2 = dsy.mul(ny);
            let p3 = drx.mul(nx);
            let p4 = dry.mul(ny);
            let ds = p1.add(p2);
            let dr = p3.add(p4);
            // Absolute error bound shared by ds and dr: term magnitudes
            // cover cancellation in the dots, the (coordmag + amag)·nmag
            // term covers input rounding of the endpoints and anchors.
            let e = p1
                .abs()
                .add(p2.abs())
                .add(p3.abs())
                .add(p4.abs())
                .add(coordmag.add(amag).mul(nmag))
                .mul(eps);
            let neg_e = zero.sub(e);
            let ds_pos = e.simd_lt(ds);
            let ds_neg = ds.simd_lt(neg_e);
            let dr_pos = e.simd_lt(dr);
            let dr_neg = dr.simd_lt(neg_e);
            // Certainly-opposite sides → the exact test certainly rejects.
            let opposite = ds_pos.and(dr_neg).or(ds_neg.and(dr_pos));
            // Certainly-same side with margin: t = ds/(ds+dr) is then a
            // well-conditioned value in (0, 1) and the u/z windows below
            // are trustworthy. Ambiguous lanes are kept outright.
            let same = ds_pos.and(dr_pos).or(ds_neg.and(dr_neg));
            let den = ds.add(dr);
            let t = ds.div(den);
            let err_t = e.mul(four).div(den.abs());
            // Mirror image of the source across the wall line, in the
            // unnormalized form image = source − ñ·(2·ds/|s|²).
            let inv_l2 = load(&b.inv_l2);
            let g = two.mul(ds).mul(inv_l2);
            let gx = nx.mul(g);
            let gy = ny.mul(g);
            let ix = sxp.sub(gx);
            let iy = syp.sub(gy);
            // Reflection point p = image + t·(receiver − image), taken
            // relative to the wall anchor for the footprint test.
            let dx = rxp.sub(ix);
            let dy = ryp.sub(iy);
            let px = ix.sub(ax).add(t.mul(dx));
            let py = iy.sub(ay).add(t.mul(dy));
            let sxw = load(&b.sx);
            let syw = load(&b.sy);
            let ux = px.mul(sxw);
            let uy = py.mul(syw);
            let u = ux.add(uy).mul(inv_l2);
            // Error budget for u: e_img bounds the image coordinates'
            // inherited error from E, cs·eps the raw coordinate roundoff,
            // err_t·|d| the lerp's parameter uncertainty; the lumped sums
            // over-count per-axis contributions, which only widens the
            // kept interval.
            let e_img = nmag.mul(two).mul(inv_l2).mul(e);
            let cs = coordmag.add(amag).add(gx.abs()).add(gy.abs());
            let e_c = e_img.add(cs.mul(eps));
            let e_p = e_c.mul(four).add(err_t.mul(dx.abs().add(dy.abs())));
            let e_ud = e_p
                .mul(sxw.abs().add(syw.abs()))
                .add(ux.abs().add(uy.abs()).mul(four).mul(eps));
            let eu = e_ud.mul(inv_l2);
            let u_rej = u.add(eu).simd_lt(zero).or(one.simd_lt(u.sub(eu)));
            // Height window (the mirror does not move z).
            let z = szp.add(zspan.mul(t));
            let ez = zspan_a
                .mul(err_t)
                .add(szp.abs().add(zspan_a).mul(four).mul(eps));
            let height = load(&b.height);
            let z_rej = z.add(ez).simd_lt(zero).or(height.simd_lt(z.sub(ez)));
            let reject = opposite.or(same.and(u_rej.or(z_rej)));
            let mut keep = reject.not().bitmask();
            while keep != 0 {
                let lane = keep.trailing_zeros() as usize;
                keep &= keep - 1;
                let i = c + lane;
                if i < n {
                    out.push(i);
                }
            }
        }
        out
    }
}

/// A named rectangular room region (plan view), used for "optimize coverage
/// in the bedroom"-style service goals and for sampling evaluation grids.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Room {
    /// Human-readable name, e.g. `"bedroom"`.
    pub name: String,
    /// Minimum corner (plan view).
    pub min: Vec3,
    /// Maximum corner (plan view).
    pub max: Vec3,
}

impl Room {
    /// Creates a room from a name and two opposite corners.
    ///
    /// # Panics
    /// Panics if the region is degenerate.
    pub fn new(name: impl Into<String>, min: Vec3, max: Vec3) -> Self {
        let (min, max) = (min.min(max), min.max(max));
        assert!(
            max.x - min.x > 1e-9 && max.y - min.y > 1e-9,
            "room region is degenerate"
        );
        Room {
            name: name.into(),
            min: min.flat(),
            max: max.flat(),
        }
    }

    /// Plan-view area in square metres.
    pub fn area_m2(&self) -> f64 {
        (self.max.x - self.min.x) * (self.max.y - self.min.y)
    }

    /// Returns `true` if a point lies inside the room (plan view, edges
    /// inclusive).
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// The room centre at a given height.
    pub fn center(&self, z: f64) -> Vec3 {
        Vec3::new(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
            z,
        )
    }

    /// A uniform `nx × ny` grid of sample points at height `z`, inset from
    /// the walls by `margin` metres. This is the evaluation grid the
    /// paper's heatmaps and CDFs are computed over.
    pub fn sample_grid(&self, nx: usize, ny: usize, z: f64, margin: f64) -> Vec<Vec3> {
        assert!(nx > 0 && ny > 0, "grid must be non-empty");
        let x0 = self.min.x + margin;
        let x1 = self.max.x - margin;
        let y0 = self.min.y + margin;
        let y1 = self.max.y - margin;
        assert!(x1 > x0 && y1 > y0, "margin leaves no room interior");
        let mut pts = Vec::with_capacity(nx * ny);
        for iy in 0..ny {
            for ix in 0..nx {
                let fx = if nx == 1 {
                    0.5
                } else {
                    ix as f64 / (nx - 1) as f64
                };
                let fy = if ny == 1 {
                    0.5
                } else {
                    iy as f64 / (ny - 1) as f64
                };
                pts.push(Vec3::new(x0 + fx * (x1 - x0), y0 + fy * (y1 - y0), z));
            }
        }
        pts
    }
}

/// The environment model: a set of walls and named rooms.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FloorPlan {
    walls: Vec<Wall>,
    rooms: Vec<Room>,
}

impl FloorPlan {
    /// Creates an empty plan (free space).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a wall and returns its index.
    pub fn add_wall(&mut self, wall: Wall) -> usize {
        self.walls.push(wall);
        self.walls.len() - 1
    }

    /// Adds a room region and returns its index.
    pub fn add_room(&mut self, room: Room) -> usize {
        self.rooms.push(room);
        self.rooms.len() - 1
    }

    /// All walls.
    pub fn walls(&self) -> &[Wall] {
        &self.walls
    }

    /// All rooms.
    pub fn rooms(&self) -> &[Room] {
        &self.rooms
    }

    /// Looks a room up by name.
    pub fn room(&self, name: &str) -> Option<&Room> {
        self.rooms.iter().find(|r| r.name == name)
    }

    /// All wall crossings of the segment `from → to`, sorted by distance
    /// along the segment.
    pub fn crossings(&self, from: Vec3, to: Vec3) -> Vec<(usize, Material)> {
        let mut hits: Vec<(f64, usize, Material)> = self
            .walls
            .iter()
            .enumerate()
            .filter_map(|(i, w)| w.intersect_segment(from, to).map(|h| (h.t, i, w.material)))
            .collect();
        hits.sort_by(|a, b| a.0.total_cmp(&b.0));
        hits.into_iter().map(|(_, i, m)| (i, m)).collect()
    }

    /// Total one-way penetration loss in dB along the segment at `band`.
    /// Zero when the path is clear.
    pub fn penetration_loss_db(&self, from: Vec3, to: Vec3, band: &Band) -> f64 {
        self.crossings(from, to)
            .iter()
            .map(|(_, m)| m.penetration_loss_db(band))
            .sum()
    }

    /// The linear amplitude factor surviving the walls along the segment.
    pub fn transmission_amplitude(&self, from: Vec3, to: Vec3, band: &Band) -> f64 {
        surfos_em::units::db_to_amplitude(-self.penetration_loss_db(from, to, band))
    }

    /// Returns `true` if no wall crosses the segment.
    pub fn has_los(&self, from: Vec3, to: Vec3) -> bool {
        self.walls
            .iter()
            .all(|w| w.intersect_segment(from, to).is_none())
    }

    /// Builds a [`WallIndex`] over the current wall set (binned-SAH packed
    /// tree, see [`Bvh::build`]). Rebuild whenever walls are added or
    /// edited; queries check only the wall *count*, so a stale index over
    /// mutated walls silently returns wrong answers.
    pub fn build_wall_index(&self) -> WallIndex {
        self.index_from(Bvh::build(&self.padded_wall_boxes()))
    }

    /// A [`WallIndex`] whose hierarchy uses the reference median splitter
    /// ([`Bvh::build_median`]) instead of the default binned SAH. Indexed
    /// query results are bit-identical to [`FloorPlan::build_wall_index`]'s
    /// (the property tests pin this); only candidate counts and traversal
    /// cost differ. Kept as the comparison arm for equivalence proptests
    /// and the `plan/crossings_building` benchmarks.
    pub fn build_wall_index_median(&self) -> WallIndex {
        self.index_from(Bvh::build_median(&self.padded_wall_boxes()))
    }

    /// Assembles a [`WallIndex`] around a built hierarchy: per-wall graze
    /// margins in wall order, intersection rows in tree-slot order.
    fn index_from(&self, bvh: Bvh) -> WallIndex {
        let soa: Vec<WallSoa> = bvh
            .order()
            .iter()
            .map(|&i| WallSoa::new(&self.walls[i as usize]))
            .collect();
        let bank = WallBank::new(&soa, bvh.order());
        WallIndex {
            bvh,
            u_margins: self.walls.iter().map(Wall::u_margin).collect(),
            soa,
            bank,
            spec: SpecularBank::new(&self.walls),
        }
    }

    /// Wall bounding boxes grown by [`WALL_AABB_PAD`], the primitive set
    /// both index builders consume.
    fn padded_wall_boxes(&self) -> Vec<Aabb> {
        self.walls
            .iter()
            .map(|w| w.aabb().grown(WALL_AABB_PAD))
            .collect()
    }

    /// [`FloorPlan::crossings`] through a [`WallIndex`]: same result, bit
    /// for bit, touching only candidate walls. Candidates arrive in tree
    /// order, so hits are re-sorted by `(t, wall index)` — exactly the
    /// order the brute scan's stable distance sort produces.
    pub fn crossings_with(
        &self,
        index: &WallIndex,
        from: Vec3,
        to: Vec3,
    ) -> Vec<(usize, Material)> {
        debug_assert_eq!(index.wall_count(), self.walls.len(), "stale wall index");
        let t_margin = Wall::t_margin(from, to);
        let mut hits: Vec<(f64, usize, Material)> = Vec::new();
        index.bvh.for_each_segment_candidate(from, to, |i| {
            let w = &self.walls[i];
            if let Some(h) =
                w.intersect_segment_with_margins(from, to, t_margin, index.u_margins[i])
            {
                hits.push((h.t, i, w.material));
            }
        });
        hits.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        hits.into_iter().map(|(_, i, m)| (i, m)).collect()
    }

    /// [`FloorPlan::penetration_loss_db`] through a [`WallIndex`].
    pub fn penetration_loss_db_with(
        &self,
        index: &WallIndex,
        from: Vec3,
        to: Vec3,
        band: &Band,
    ) -> f64 {
        self.crossings_with(index, from, to)
            .iter()
            .map(|(_, m)| m.penetration_loss_db(band))
            .sum()
    }

    /// [`FloorPlan::transmission_amplitude`] through a [`WallIndex`].
    pub fn transmission_amplitude_with(
        &self,
        index: &WallIndex,
        from: Vec3,
        to: Vec3,
        band: &Band,
    ) -> f64 {
        surfos_em::units::db_to_amplitude(-self.penetration_loss_db_with(index, from, to, band))
    }

    /// [`FloorPlan::has_los`] through a [`WallIndex`], with any-hit early
    /// exit.
    pub fn has_los_with(&self, index: &WallIndex, from: Vec3, to: Vec3) -> bool {
        debug_assert_eq!(index.wall_count(), self.walls.len(), "stale wall index");
        let t_margin = Wall::t_margin(from, to);
        !index.bvh.segment_candidates_until(from, to, |i| {
            self.walls[i]
                .intersect_segment_with_margins(from, to, t_margin, index.u_margins[i])
                .is_some()
        })
    }

    /// [`FloorPlan::crossings_with`] for a whole batch of segments: one
    /// `Vec` of `(wall index, material)` crossings per input segment, in
    /// the same order.
    ///
    /// Segments are traced in packets of up to [`SegmentPacket::LANES`]
    /// through [`Bvh::packet_candidates_until`], so coherent batches (the
    /// bounce-leg fans of a link trace) share most of their node visits,
    /// and each lane's surviving candidates run the exact `f64` crossing
    /// solve four walls at a time (`crossing_t_x4`). Every accepted `t`
    /// is bit-identical to the scalar solve and each lane's hits are
    /// re-sorted by `(t, wall index)`, so every per-segment result is
    /// **bit-identical** to [`FloorPlan::crossings_with`] on every SIMD
    /// backend — the wide layers only change which walls get *ruled out*
    /// early.
    pub fn crossings_batch(
        &self,
        index: &WallIndex,
        segments: &[(Vec3, Vec3)],
    ) -> Vec<Vec<(usize, Material)>> {
        self.crossings_batch_with(index, surfos_em::simd::backend(), segments)
    }

    /// [`Self::crossings_batch`] with an explicit kernel arm, for benches
    /// and cross-backend equivalence tests. The scalar reference arm runs
    /// the per-segment scalar query in a loop.
    ///
    /// # Panics
    /// Panics if `Backend::Avx2` is forced on a host without AVX2+FMA.
    #[doc(hidden)]
    pub fn crossings_batch_with(
        &self,
        index: &WallIndex,
        backend: Backend,
        segments: &[(Vec3, Vec3)],
    ) -> Vec<Vec<(usize, Material)>> {
        debug_assert_eq!(index.wall_count(), self.walls.len(), "stale wall index");
        let mut out = Vec::with_capacity(segments.len());
        match backend {
            Backend::Scalar => {
                for &(from, to) in segments {
                    out.push(self.crossings_with(index, from, to));
                }
            }
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => {
                assert!(
                    surfos_em::simd::avx2_available(),
                    "Backend::Avx2 forced without AVX2+FMA support"
                );
                // SAFETY: avx2 presence asserted just above.
                unsafe { self.crossings_batch_avx2(index, segments, &mut out) }
            }
            _ => self.crossings_batch_impl::<F32x8, F64x4>(index, segments, &mut out),
        }
        out
    }

    /// AVX2 entry point for the batch crossing solve.
    ///
    /// # Safety
    /// Requires the `avx2` CPU feature (the dispatch arm checks).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn crossings_batch_avx2(
        &self,
        index: &WallIndex,
        segments: &[(Vec3, Vec3)],
        out: &mut Vec<Vec<(usize, Material)>>,
    ) {
        use surfos_em::simd::avx2::{F32x8A, F64x4A};
        self.crossings_batch_impl::<F32x8A, F64x4A>(index, segments, out);
    }

    /// The wide batch body, generic over the `f32` packet lanes (`V`, the
    /// BVH traversal) and the `f64` solve lanes (`W`, the crossing test).
    #[inline(always)]
    fn crossings_batch_impl<V: SimdF32x8, W: SimdF64x4>(
        &self,
        index: &WallIndex,
        segments: &[(Vec3, Vec3)],
        out: &mut Vec<Vec<(usize, Material)>>,
    ) {
        // A hit is packed into one sortable u128 key:
        // `[t bits : 64][wall index : 48][material index : 8]` (top 8 bits
        // unused). Accepted `t` values are strictly positive finite
        // doubles, whose IEEE bit patterns order exactly like the values —
        // so an unsigned sort of the keys reproduces the scalar path's
        // `(t, wall_index)` lexicographic order (wall indices are unique
        // per segment, so the material byte never decides). 16-byte POD
        // keys with a branchless integer compare sort measurably faster
        // than 24-byte tuples under `f64::total_cmp`. The low half is
        // precomputed per tree slot in [`WallBank::key_lo`], so packing a
        // hit is one shift-or against one sequential load.
        let pack = |t: f64, slot: usize| -> u128 {
            debug_assert!(t > 0.0);
            ((t.to_bits() as u128) << 64) | index.bank.key_lo[slot] as u128
        };
        // Scratch buffers are reused across packets (drain/clear keep the
        // allocations), so a long batch settles into zero per-chunk
        // intermediate allocations.
        let mut hits: [Vec<u128>; SegmentPacket::<F32x8>::LANES] = Default::default();
        // Per-lane pending candidate slots: the f64 solve runs four-wide
        // as soon as a lane has a full group, right inside the traversal
        // callback, so candidate slots are never re-buffered.
        let mut pend = [[0usize; 4]; SegmentPacket::<F32x8>::LANES];
        let mut npend = [0usize; SegmentPacket::<F32x8>::LANES];
        let mut t_margins = [0.0f64; SegmentPacket::<F32x8>::LANES];
        // Per-lane segment operands, hoisted once per chunk in exactly the
        // form the wall test consumes: `p = from.flat()`, `r = to.flat() -
        // p`, plus the z-interpolation endpoints.
        let mut ops = [[0.0f64; 6]; SegmentPacket::<F32x8>::LANES];
        for chunk in segments.chunks(SegmentPacket::<F32x8>::LANES) {
            let packet = SegmentPacket::<V>::new(chunk);
            for (lane, &(from, to)) in chunk.iter().enumerate() {
                t_margins[lane] = Wall::t_margin(from, to);
                ops[lane] = [
                    from.x,
                    from.y,
                    to.x - from.x,
                    to.y - from.y,
                    from.z,
                    to.z - from.z,
                ];
            }
            index
                .bvh
                .for_each_packet_candidate(&packet, |lane, slot, _| {
                    pend[lane][npend[lane]] = slot;
                    npend[lane] += 1;
                    if npend[lane] == 4 {
                        npend[lane] = 0;
                        let slots = pend[lane];
                        let [px, py, rx, ry, fz, dz] = ops[lane];
                        let (t, mut accept) = crossing_t_x4::<W>(
                            &index.bank,
                            slots,
                            px,
                            py,
                            rx,
                            ry,
                            fz,
                            dz,
                            t_margins[lane],
                        );
                        if accept != 0 {
                            let ts = t.to_array();
                            while accept != 0 {
                                let j = accept.trailing_zeros() as usize;
                                accept &= accept - 1;
                                hits[lane].push(pack(ts[j], slots[j]));
                            }
                        }
                    }
                });
            for lane in 0..chunk.len() {
                // Remainder candidates run the scalar solve — bit-identical
                // to the vector lanes, so the mix is invisible downstream.
                let [px, py, rx, ry, fz, dz] = ops[lane];
                for &slot in &pend[lane][..npend[lane]] {
                    let w = &index.soa[slot];
                    if let Some(t) = w.crossing_t(px, py, rx, ry, fz, dz, t_margins[lane]) {
                        hits[lane].push(pack(t, slot));
                    }
                }
                npend[lane] = 0;
                hits[lane].sort_unstable();
                out.push(
                    hits[lane]
                        .drain(..)
                        .map(|k| {
                            (
                                ((k >> 16) & 0xFFFF_FFFF_FFFF) as usize,
                                Material::ALL[(k & 0xFF) as usize],
                            )
                        })
                        .collect(),
                );
            }
        }
    }

    /// [`FloorPlan::has_los_with`] for a whole batch of segments: one
    /// bool per input segment, in the same order, bit-identical to the
    /// per-segment query. Lanes retire from the shared packet traversal
    /// as soon as an exact wall crossing confirms them blocked.
    pub fn has_los_batch(&self, index: &WallIndex, segments: &[(Vec3, Vec3)]) -> Vec<bool> {
        self.has_los_batch_with(index, surfos_em::simd::backend(), segments)
    }

    /// [`Self::has_los_batch`] with an explicit kernel arm, for benches
    /// and cross-backend equivalence tests. The scalar reference arm runs
    /// the per-segment scalar query in a loop.
    ///
    /// # Panics
    /// Panics if `Backend::Avx2` is forced on a host without AVX2+FMA.
    #[doc(hidden)]
    pub fn has_los_batch_with(
        &self,
        index: &WallIndex,
        backend: Backend,
        segments: &[(Vec3, Vec3)],
    ) -> Vec<bool> {
        debug_assert_eq!(index.wall_count(), self.walls.len(), "stale wall index");
        let mut out = Vec::with_capacity(segments.len());
        match backend {
            Backend::Scalar => {
                for &(from, to) in segments {
                    out.push(self.has_los_with(index, from, to));
                }
            }
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => {
                assert!(
                    surfos_em::simd::avx2_available(),
                    "Backend::Avx2 forced without AVX2+FMA support"
                );
                // SAFETY: avx2 presence asserted just above.
                unsafe { self.has_los_batch_avx2(index, segments, &mut out) }
            }
            _ => self.has_los_batch_impl::<F32x8>(index, segments, &mut out),
        }
        out
    }

    /// AVX2 entry point for the batch LOS query.
    ///
    /// # Safety
    /// Requires the `avx2` CPU feature (the dispatch arm checks).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn has_los_batch_avx2(
        &self,
        index: &WallIndex,
        segments: &[(Vec3, Vec3)],
        out: &mut Vec<bool>,
    ) {
        self.has_los_batch_impl::<surfos_em::simd::avx2::F32x8A>(index, segments, out);
    }

    /// The wide LOS body. The per-candidate crossing solve stays scalar
    /// here: the any-hit early exit retires lanes after very few exact
    /// tests, so there is rarely a fourth candidate to fill an `f64`
    /// vector with.
    #[inline(always)]
    fn has_los_batch_impl<V: SimdF32x8>(
        &self,
        index: &WallIndex,
        segments: &[(Vec3, Vec3)],
        out: &mut Vec<bool>,
    ) {
        let mut t_margins = [0.0f64; SegmentPacket::<F32x8>::LANES];
        let mut ops = [[0.0f64; 6]; SegmentPacket::<F32x8>::LANES];
        for chunk in segments.chunks(SegmentPacket::<F32x8>::LANES) {
            let packet = SegmentPacket::<V>::new(chunk);
            for (lane, &(from, to)) in chunk.iter().enumerate() {
                t_margins[lane] = Wall::t_margin(from, to);
                ops[lane] = [
                    from.x,
                    from.y,
                    to.x - from.x,
                    to.y - from.y,
                    from.z,
                    to.z - from.z,
                ];
            }
            let blocked = index.bvh.packet_candidates_until(&packet, |lane, slot, _| {
                let [px, py, rx, ry, fz, dz] = ops[lane];
                index.soa[slot]
                    .crossing_t(px, py, rx, ry, fz, dz, t_margins[lane])
                    .is_some()
            });
            for lane in 0..chunk.len() {
                out.push(blocked & (1 << lane) == 0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surfos_em::band::NamedBand;

    /// Two 4×4 m rooms split by a drywall partition along x = 4.
    fn two_rooms() -> FloorPlan {
        let mut plan = FloorPlan::new();
        plan.add_wall(Wall::new(
            Vec3::xy(4.0, 0.0),
            Vec3::xy(4.0, 4.0),
            3.0,
            Material::Drywall,
        ));
        plan.add_room(Room::new("left", Vec3::xy(0.0, 0.0), Vec3::xy(4.0, 4.0)));
        plan.add_room(Room::new("right", Vec3::xy(4.0, 0.0), Vec3::xy(8.0, 4.0)));
        plan
    }

    #[test]
    fn los_within_room_blocked_across() {
        let plan = two_rooms();
        let a = Vec3::new(1.0, 2.0, 1.5);
        let b = Vec3::new(3.0, 2.0, 1.5);
        let c = Vec3::new(6.0, 2.0, 1.5);
        assert!(plan.has_los(a, b));
        assert!(!plan.has_los(a, c));
    }

    #[test]
    fn penetration_loss_accumulates() {
        let mut plan = two_rooms();
        plan.add_wall(Wall::new(
            Vec3::xy(6.0, 0.0),
            Vec3::xy(6.0, 4.0),
            3.0,
            Material::Concrete,
        ));
        let band = NamedBand::MmWave28GHz.band();
        let loss =
            plan.penetration_loss_db(Vec3::new(1.0, 2.0, 1.5), Vec3::new(7.0, 2.0, 1.5), &band);
        let want = Material::Drywall.penetration_loss_db(&band)
            + Material::Concrete.penetration_loss_db(&band);
        assert!((loss - want).abs() < 1e-9);
    }

    #[test]
    fn crossings_sorted_by_distance() {
        let mut plan = FloorPlan::new();
        let w_far = plan.add_wall(Wall::new(
            Vec3::xy(6.0, 0.0),
            Vec3::xy(6.0, 4.0),
            3.0,
            Material::Concrete,
        ));
        let w_near = plan.add_wall(Wall::new(
            Vec3::xy(4.0, 0.0),
            Vec3::xy(4.0, 4.0),
            3.0,
            Material::Drywall,
        ));
        let hits = plan.crossings(Vec3::new(1.0, 2.0, 1.0), Vec3::new(7.0, 2.0, 1.0));
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, w_near);
        assert_eq!(hits[1].0, w_far);
    }

    #[test]
    fn clear_path_no_loss() {
        let plan = two_rooms();
        let band = NamedBand::WiFi5GHz.band();
        let loss =
            plan.penetration_loss_db(Vec3::new(1.0, 1.0, 1.0), Vec3::new(2.0, 3.0, 1.0), &band);
        assert_eq!(loss, 0.0);
        assert_eq!(
            plan.transmission_amplitude(Vec3::new(1.0, 1.0, 1.0), Vec3::new(2.0, 3.0, 1.0), &band),
            1.0
        );
    }

    #[test]
    fn room_lookup_and_contains() {
        let plan = two_rooms();
        let left = plan.room("left").expect("room exists");
        assert!(left.contains(Vec3::xy(1.0, 1.0)));
        assert!(!left.contains(Vec3::xy(5.0, 1.0)));
        assert!(plan.room("kitchen").is_none());
    }

    #[test]
    fn sample_grid_inside_room() {
        let plan = two_rooms();
        let room = plan.room("right").unwrap();
        let grid = room.sample_grid(5, 4, 1.2, 0.3);
        assert_eq!(grid.len(), 20);
        for p in &grid {
            assert!(room.contains(*p), "{p} outside room");
            assert_eq!(p.z, 1.2);
            assert!(p.x >= room.min.x + 0.3 - 1e-9 && p.x <= room.max.x - 0.3 + 1e-9);
        }
    }

    #[test]
    fn single_point_grid_is_center() {
        let room = Room::new("r", Vec3::xy(0.0, 0.0), Vec3::xy(2.0, 2.0));
        let grid = room.sample_grid(1, 1, 1.0, 0.1);
        assert_eq!(grid.len(), 1);
        assert!((grid[0] - Vec3::new(1.0, 1.0, 1.0)).norm() < 1e-9);
    }

    #[test]
    fn room_corners_normalized() {
        let r = Room::new("r", Vec3::xy(3.0, 5.0), Vec3::xy(1.0, 2.0));
        assert_eq!(r.min, Vec3::xy(1.0, 2.0));
        assert_eq!(r.max, Vec3::xy(3.0, 5.0));
        assert!((r.area_m2() - 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_room_rejected() {
        let _ = Room::new("r", Vec3::xy(1.0, 1.0), Vec3::xy(1.0, 5.0));
    }

    // ── Wall-index equivalence ─────────────────────────────────────────

    use proptest::prelude::*;

    /// The backends the host can actually run, scalar reference first.
    fn runnable_backends() -> Vec<Backend> {
        let mut backends = vec![Backend::Scalar, Backend::Sse2];
        if surfos_em::simd::avx2_available() {
            backends.push(Backend::Avx2);
        }
        backends
    }

    /// Deterministic pseudo-random clutter: `n` short walls scattered over
    /// a 10×10 m area with mixed materials.
    fn cluttered(n: usize, seed: u64) -> FloorPlan {
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        let materials = [
            Material::Drywall,
            Material::Concrete,
            Material::Glass,
            Material::Wood,
        ];
        let mut plan = FloorPlan::new();
        for i in 0..n {
            let x = next() * 10.0;
            let y = next() * 10.0;
            let ang = next() * std::f64::consts::TAU;
            let len = 0.4 + next() * 2.6;
            plan.add_wall(Wall::new(
                Vec3::xy(x, y),
                Vec3::xy(x + ang.cos() * len, y + ang.sin() * len),
                1.0 + next() * 3.0,
                materials[i % materials.len()],
            ));
        }
        plan
    }

    #[test]
    fn specular_prefilter_keeps_accepted_walls_on_two_rooms() {
        let mut plan = two_rooms();
        // A second partition so there is a wall with both endpoints on the
        // same side (reflective) and one between them (rejected).
        plan.add_wall(Wall::new(
            Vec3::xy(0.0, 0.0),
            Vec3::xy(8.0, 0.0),
            3.0,
            Material::Concrete,
        ));
        let index = plan.build_wall_index();
        let src = Vec3::new(1.0, 2.0, 1.5);
        let rcv = Vec3::new(3.0, 2.0, 1.5);
        let kept = index.specular_candidates(src, rcv);
        for (i, w) in plan.walls().iter().enumerate() {
            if crate::reflect::specular_reflection(src, rcv, w).is_some() {
                assert!(kept.contains(&i), "prefilter dropped accepted wall {i}");
            }
        }
        // The long south wall bounces this same-room pair.
        assert!(kept.contains(&1));
        // Ascending order is part of the contract.
        assert!(kept.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn indexed_crossings_match_brute_on_two_rooms() {
        let plan = two_rooms();
        let index = plan.build_wall_index();
        let from = Vec3::new(1.0, 2.0, 1.5);
        let to = Vec3::new(6.0, 2.0, 1.5);
        assert_eq!(
            plan.crossings(from, to),
            plan.crossings_with(&index, from, to)
        );
        assert_eq!(plan.has_los(from, to), plan.has_los_with(&index, from, to));
    }

    #[test]
    fn empty_plan_index_answers_clear() {
        let plan = FloorPlan::new();
        let index = plan.build_wall_index();
        let band = NamedBand::WiFi5GHz.band();
        let from = Vec3::new(0.0, 0.0, 1.0);
        let to = Vec3::new(5.0, 5.0, 1.0);
        assert!(plan.crossings_with(&index, from, to).is_empty());
        assert!(plan.has_los_with(&index, from, to));
        assert_eq!(
            plan.transmission_amplitude_with(&index, from, to, &band),
            1.0
        );
    }

    proptest! {
        #[test]
        fn prop_indexed_queries_bit_identical_to_brute(
            seed in 0u64..1_000_000,
            n in 0usize..96,
            x0 in -1.0..11.0f64, y0 in -1.0..11.0f64, z0 in 0.1..4.0f64,
            x1 in -1.0..11.0f64, y1 in -1.0..11.0f64, z1 in 0.1..4.0f64,
        ) {
            let plan = cluttered(n, seed);
            let from = Vec3::new(x0, y0, z0);
            let to = Vec3::new(x1, y1, z1);
            let band = NamedBand::MmWave28GHz.band();

            // Both the SAH-packed tree and the reference median tree must
            // reproduce the brute scan bit for bit.
            for index in [plan.build_wall_index(), plan.build_wall_index_median()] {
                prop_assert_eq!(
                    plan.crossings(from, to),
                    plan.crossings_with(&index, from, to)
                );
                prop_assert_eq!(plan.has_los(from, to), plan.has_los_with(&index, from, to));
                prop_assert_eq!(
                    plan.penetration_loss_db(from, to, &band).to_bits(),
                    plan.penetration_loss_db_with(&index, from, to, &band).to_bits()
                );
                prop_assert_eq!(
                    plan.transmission_amplitude(from, to, &band).to_bits(),
                    plan.transmission_amplitude_with(&index, from, to, &band).to_bits()
                );
            }
        }

        #[test]
        fn prop_specular_prefilter_is_conservative(
            seed in 0u64..1_000_000,
            n in 0usize..96,
            x0 in -1.0..11.0f64, y0 in -1.0..11.0f64, z0 in 0.1..4.0f64,
            x1 in -1.0..11.0f64, y1 in -1.0..11.0f64, z1 in 0.1..4.0f64,
        ) {
            // The f32 prefilter must never drop a wall the exact f64
            // specular test accepts, and must report survivors in
            // ascending wall order. (It may keep extra walls — that only
            // costs an exact test, not correctness.)
            let plan = cluttered(n, seed);
            let index = plan.build_wall_index();
            let src = Vec3::new(x0, y0, z0);
            let rcv = Vec3::new(x1, y1, z1);
            for backend in runnable_backends() {
                let kept = index.specular_candidates_with(backend, src, rcv);
                prop_assert!(kept.windows(2).all(|w| w[0] < w[1]));
                let kept: std::collections::HashSet<usize> = kept.into_iter().collect();
                for (i, w) in plan.walls().iter().enumerate() {
                    if crate::reflect::specular_reflection(src, rcv, w).is_some() {
                        prop_assert!(
                            kept.contains(&i),
                            "{:?} prefilter dropped accepted wall {}", backend, i
                        );
                    }
                }
            }
        }

        #[test]
        fn prop_batch_queries_bit_identical_to_scalar(
            seed in 0u64..1_000_000,
            n in 0usize..96,
            k in 1usize..20,
        ) {
            // Packet-traced batches must reproduce the per-segment scalar
            // queries bit for bit, for every batch length — including
            // remainder packets narrower than the lane width and batches
            // spanning several packets.
            let plan = cluttered(n, seed);
            let mut state = seed ^ 0xA5A5_5A5A;
            let mut next = move || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64) / ((1u64 << 53) as f64)
            };
            let segments: Vec<(Vec3, Vec3)> = (0..k)
                .map(|i| {
                    let from = Vec3::new(next() * 12.0 - 1.0, next() * 12.0 - 1.0, 0.1 + next() * 3.9);
                    let to = match i % 3 {
                        // Axis-parallel lanes exercise the packet slab
                        // test's degenerate containment fallback.
                        0 => Vec3::new(next() * 12.0 - 1.0, from.y, from.z),
                        _ => Vec3::new(next() * 12.0 - 1.0, next() * 12.0 - 1.0, 0.1 + next() * 3.9),
                    };
                    (from, to)
                })
                .collect();

            for index in [plan.build_wall_index(), plan.build_wall_index_median()] {
                // Every runnable kernel arm — scalar reference, portable
                // pair lanes, native AVX2 — must agree bit for bit with
                // the per-segment scalar queries.
                for backend in runnable_backends() {
                    let crossings = plan.crossings_batch_with(&index, backend, &segments);
                    let los = plan.has_los_batch_with(&index, backend, &segments);
                    prop_assert_eq!(crossings.len(), k);
                    prop_assert_eq!(los.len(), k);
                    for (i, &(from, to)) in segments.iter().enumerate() {
                        prop_assert_eq!(
                            &crossings[i],
                            &plan.crossings_with(&index, from, to),
                            "{:?} crossings diverged for segment {}", backend, i
                        );
                        prop_assert_eq!(
                            los[i],
                            plan.has_los_with(&index, from, to),
                            "{:?} has_los diverged for segment {}", backend, i
                        );
                    }
                }
            }
        }
    }
}
