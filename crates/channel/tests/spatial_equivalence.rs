//! Property tests: the spatially-indexed tracing path must be
//! *bit-identical* to the brute-force scan on arbitrary cluttered scenes.
//!
//! `ChannelSim::linearize` runs through the per-epoch `SceneIndex` (wall
//! BVH, blocker/aperture boxes, cached element positions); the control
//! builds `Medium::new` — the brute reference — and traces the same link
//! directly. Any non-conservative culling, reordering or recomputed
//! intermediate shows up as a bit difference in the linearization.

use proptest::prelude::*;
use surfos_channel::dynamics::Blocker;
use surfos_channel::index::SceneIndex;
use surfos_channel::paths::{self, Medium};
use surfos_channel::{ChannelSim, Endpoint, OperationMode, SurfaceInstance};
use surfos_em::antenna::ElementPattern;
use surfos_em::array::ArrayGeometry;
use surfos_em::band::NamedBand;
use surfos_geometry::{FloorPlan, Material, Pose, Vec3, Wall};

/// Splittable LCG stream in [0, 1).
fn rng(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64) / ((1u64 << 53) as f64)
    }
}

/// A deterministic cluttered scene: `n_walls` short walls, `n_blockers`
/// people and `n_surfaces` small surfaces (alternating transparent /
/// obstructing) scattered over a 10×10 m area.
fn build_sim(seed: u64, n_walls: usize, n_blockers: usize, n_surfaces: usize) -> ChannelSim {
    let mut next = rng(seed);
    let materials = [
        Material::Drywall,
        Material::Concrete,
        Material::Glass,
        Material::Wood,
    ];
    let mut plan = FloorPlan::new();
    for i in 0..n_walls {
        let x = next() * 10.0;
        let y = next() * 10.0;
        let ang = next() * std::f64::consts::TAU;
        let len = 0.4 + next() * 2.6;
        plan.add_wall(Wall::new(
            Vec3::xy(x, y),
            Vec3::xy(x + ang.cos() * len, y + ang.sin() * len),
            1.0 + next() * 3.0,
            materials[i % materials.len()],
        ));
    }
    let band = NamedBand::MmWave28GHz.band();
    let mut sim = ChannelSim::new(plan, band);
    for _ in 0..n_blockers {
        sim.add_blocker(Blocker::person(Vec3::xy(next() * 10.0, next() * 10.0)));
    }
    let geom = ArrayGeometry::half_wavelength(4, 4, band.wavelength_m());
    for s in 0..n_surfaces {
        let pos = Vec3::new(next() * 10.0, next() * 10.0, 1.0 + next() * 1.5);
        let ang = next() * std::f64::consts::TAU;
        let pose = Pose::wall_mounted(pos, Vec3::xy(ang.cos(), ang.sin()));
        let mut surf = SurfaceInstance::new(format!("s{s}"), pose, geom, OperationMode::Reflective);
        if s % 2 == 1 {
            surf = surf.with_obstruction(0.3 + next() * 0.6);
        }
        sim.add_surface(surf);
    }
    sim
}

/// Brute-force control for `sim.linearize(tx, rx)`: same scene, no index.
fn brute_linearize(
    sim: &ChannelSim,
    tx: &Endpoint,
    rx: &Endpoint,
) -> surfos_channel::Linearization {
    let medium = Medium::new(&sim.plan, sim.blockers(), sim.surfaces(), sim.band);
    paths::trace_channel(
        &medium,
        tx,
        rx,
        sim.surfaces(),
        sim.enable_wall_reflections,
        sim.enable_cascades,
    )
    .linearize_at(&sim.band)
}

fn iso(id: &str, pos: Vec3) -> Endpoint {
    let mut e = Endpoint::client(id, pos);
    e.pattern = ElementPattern::Isotropic;
    e
}

proptest! {
    #[test]
    fn prop_indexed_linearize_bit_identical_to_brute(
        seed in 0u64..1_000_000,
        n_walls in 0usize..48,
        n_blockers in 0usize..4,
        n_surfaces in 0usize..3,
        tx_x in -1.0..11.0f64, tx_y in -1.0..11.0f64, tx_z in 0.2..3.5f64,
        rx_x in -1.0..11.0f64, rx_y in -1.0..11.0f64, rx_z in 0.2..3.5f64,
    ) {
        let sim = build_sim(seed, n_walls, n_blockers, n_surfaces);
        let tx = iso("tx", Vec3::new(tx_x, tx_y, tx_z));
        let rx = iso("rx", Vec3::new(rx_x, rx_y, rx_z));

        let indexed = sim.linearize(&tx, &rx);
        let brute = brute_linearize(&sim, &tx, &rx);

        prop_assert_eq!(
            indexed.constant.re.to_bits(), brute.constant.re.to_bits(),
            "constant.re diverged"
        );
        prop_assert_eq!(
            indexed.constant.im.to_bits(), brute.constant.im.to_bits(),
            "constant.im diverged"
        );
        prop_assert_eq!(indexed.linear.len(), brute.linear.len());
        for (a, b) in indexed.linear.iter().zip(&brute.linear) {
            prop_assert_eq!(a.surface, b.surface);
            prop_assert_eq!(a.coeffs.len(), b.coeffs.len());
            for (ca, cb) in a.coeffs.iter().zip(&b.coeffs) {
                prop_assert_eq!(ca.re.to_bits(), cb.re.to_bits());
                prop_assert_eq!(ca.im.to_bits(), cb.im.to_bits());
            }
        }
        prop_assert_eq!(indexed.bilinear.len(), brute.bilinear.len());
        for (a, b) in indexed.bilinear.iter().zip(&brute.bilinear) {
            prop_assert_eq!((a.first, a.second), (b.first, b.second));
            for (ca, cb) in a.alpha.iter().zip(&b.alpha) {
                prop_assert_eq!(ca.re.to_bits(), cb.re.to_bits());
                prop_assert_eq!(ca.im.to_bits(), cb.im.to_bits());
            }
            for (ca, cb) in a.beta.iter().zip(&b.beta) {
                prop_assert_eq!(ca.re.to_bits(), cb.re.to_bits());
                prop_assert_eq!(ca.im.to_bits(), cb.im.to_bits());
            }
        }
    }

    /// Tracing through a median-split reference tree must match the
    /// production SAH/packed path bit for bit: culling is conservative in
    /// both trees, so tree shape can never leak into channel results.
    #[test]
    fn prop_median_tree_traces_bit_identical_to_sah(
        seed in 0u64..1_000_000,
        n_walls in 0usize..48,
        n_blockers in 0usize..4,
        n_surfaces in 0usize..3,
        tx_x in -1.0..11.0f64, tx_y in -1.0..11.0f64,
        rx_x in -1.0..11.0f64, rx_y in -1.0..11.0f64,
    ) {
        let sim = build_sim(seed, n_walls, n_blockers, n_surfaces);
        let tx = iso("tx", Vec3::new(tx_x, tx_y, 1.8));
        let rx = iso("rx", Vec3::new(rx_x, rx_y, 1.2));

        let sah = sim.linearize(&tx, &rx);
        let median_index = SceneIndex::build_with_walls(
            sim.plan.build_wall_index_median(),
            sim.blockers(),
            sim.surfaces(),
        );
        let medium = Medium::with_index(
            &sim.plan,
            sim.blockers(),
            sim.surfaces(),
            sim.band,
            &median_index,
        );
        let median = paths::trace_channel(
            &medium,
            &tx,
            &rx,
            sim.surfaces(),
            sim.enable_wall_reflections,
            sim.enable_cascades,
        )
        .linearize_at(&sim.band);

        prop_assert_eq!(sah.constant.re.to_bits(), median.constant.re.to_bits());
        prop_assert_eq!(sah.constant.im.to_bits(), median.constant.im.to_bits());
        prop_assert_eq!(sah.linear.len(), median.linear.len());
        for (a, b) in sah.linear.iter().zip(&median.linear) {
            prop_assert_eq!(a.surface, b.surface);
            for (ca, cb) in a.coeffs.iter().zip(&b.coeffs) {
                prop_assert_eq!(ca.re.to_bits(), cb.re.to_bits());
                prop_assert_eq!(ca.im.to_bits(), cb.im.to_bits());
            }
        }
        prop_assert_eq!(sah.bilinear.len(), median.bilinear.len());
    }

    /// The batch API must match per-pair serial calls bit for bit (the
    /// fan-out shares one index and medium snapshot; chunk-ordered
    /// reassembly keeps ordering).
    #[test]
    fn prop_batch_matches_serial(
        seed in 0u64..1_000_000,
        n_walls in 0usize..24,
        n_pairs in 1usize..5,
    ) {
        let sim = build_sim(seed, n_walls, 1, 2);
        let mut next = rng(seed ^ 0xABCD);
        let endpoints: Vec<(Endpoint, Endpoint)> = (0..n_pairs)
            .map(|i| {
                (
                    iso(&format!("t{i}"), Vec3::new(next() * 10.0, next() * 10.0, 1.5)),
                    iso(&format!("r{i}"), Vec3::new(next() * 10.0, next() * 10.0, 1.2)),
                )
            })
            .collect();
        let pairs: Vec<(&Endpoint, &Endpoint)> =
            endpoints.iter().map(|(t, r)| (t, r)).collect();
        let batch = sim.linearize_batch(&pairs);
        prop_assert_eq!(batch.len(), pairs.len());
        for ((tx, rx), lin) in pairs.iter().zip(&batch) {
            let serial = sim.linearize(tx, rx);
            prop_assert_eq!(serial.constant.re.to_bits(), lin.constant.re.to_bits());
            prop_assert_eq!(serial.constant.im.to_bits(), lin.constant.im.to_bits());
            prop_assert_eq!(serial.linear.len(), lin.linear.len());
            prop_assert_eq!(serial.bilinear.len(), lin.bilinear.len());
        }
    }
}
