//! Property tests for the incremental dynamics engine: a blocker-only
//! step (index refit + per-link linearization refresh) must be
//! bit-identical to a cold full rebuild of the same scene, across random
//! walks, blocker counts 0–8, and every path class (LOS, wall
//! reflections, surface-aided, two-hop cascades).

use proptest::prelude::*;
use surfos_channel::dynamics::{Blocker, BlockerWalk};
use surfos_channel::surface::{OperationMode, SurfaceInstance};
use surfos_channel::{ChannelSim, Endpoint};
use surfos_em::antenna::ElementPattern;
use surfos_em::array::ArrayGeometry;
use surfos_em::band::NamedBand;
use surfos_geometry::scenario::two_room_apartment;
use surfos_geometry::{Pose, Vec3};

/// Apartment scene with two surfaces so every path class exists: direct,
/// wall bounces, surface-aided, and two-hop cascades.
fn scene() -> (ChannelSim, Endpoint, Endpoint) {
    let scen = two_room_apartment();
    let band = NamedBand::MmWave28GHz.band();
    let mut sim = ChannelSim::new(scen.plan.clone(), band);
    let geom = ArrayGeometry::half_wavelength(8, 8, band.wavelength_m());
    let pose = *scen.anchor("bedroom-north").unwrap();
    sim.add_surface(SurfaceInstance::new(
        "s0",
        pose,
        geom,
        OperationMode::Reflective,
    ));
    let pose2 = Pose::wall_mounted(Vec3::new(4.9, 3.2, 1.5), Vec3::new(-1.0, 0.2, 0.0));
    sim.add_surface(SurfaceInstance::new(
        "s1",
        pose2,
        geom,
        OperationMode::Reflective,
    ));
    let ap = Endpoint::access_point("ap0", scen.ap_pose);
    let mut rx = Endpoint::client("c", Vec3::new(6.0, 1.0, 1.2));
    rx.pattern = ElementPattern::Isotropic;
    (sim, ap, rx)
}

/// `(x, y)` pairs inside the apartment footprint → waypoints.
fn to_waypoints(xy: Vec<(f64, f64)>) -> Vec<Vec3> {
    xy.into_iter().map(|(x, y)| Vec3::xy(x, y)).collect()
}

proptest! {
    /// Stepping blockers incrementally (refit + cached refresh) matches a
    /// cold sim rebuilt from scratch at every tick, bit for bit.
    #[test]
    fn incremental_steps_match_cold_rebuild(
        xy in prop::collection::vec((0.3f64..7.7, 0.3f64..3.7), 2..5),
        count in 0usize..=8,
        speed in 0.5f64..2.5,
        spacing in 0.2f64..1.5,
        ticks in 2usize..5,
    ) {
        let walk = BlockerWalk::new(to_waypoints(xy), speed);
        let (mut sim, ap, rx) = scene();
        // Warm the incremental path with an initial population.
        sim.set_blockers(walk.crowd_at(0.0, count, spacing));
        let _ = sim.cached_linearization(&ap, &rx);
        for k in 1..=ticks {
            let t_s = k as f64 * 0.3;
            let blockers = walk.crowd_at(t_s, count, spacing);
            sim.set_blockers(blockers.clone());
            let incremental = sim.cached_linearization(&ap, &rx);
            // Cold reference: a fresh sim over the same scene — full
            // index rebuild, full trace, no cache anywhere.
            let (mut cold, _, _) = scene();
            cold.set_blockers(blockers);
            let reference = cold.linearize(&ap, &rx);
            prop_assert_eq!(&*incremental, &reference);
        }
        // The walk exercised the refresh path, never the miss path again.
        let stats = sim.cache_stats();
        prop_assert_eq!(stats.misses, 1);
    }

    /// A blocker-only step never bumps the structure epoch and never
    /// drops the wall-BVH structure `Arc` — the regression gate for the
    /// two-epoch split.
    #[test]
    fn blocker_steps_preserve_structure(
        xy in prop::collection::vec((0.3f64..7.7, 0.3f64..3.7), 0..=8),
    ) {
        let (mut sim, ap, rx) = scene();
        let _ = sim.gain(&ap, &rx);
        let base = sim.scene_index();
        let (structure_before, _) = sim.epochs();
        let builds_before = sim.index_stats().builds;
        sim.set_blockers(to_waypoints(xy).into_iter().map(Blocker::person).collect());
        let after = sim.scene_index();
        prop_assert!(std::sync::Arc::ptr_eq(base.structure(), after.structure()));
        let (structure_after, _) = sim.epochs();
        prop_assert_eq!(structure_before, structure_after);
        prop_assert_eq!(sim.index_stats().builds, builds_before);
    }
}
