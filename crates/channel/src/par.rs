//! Deterministic scoped-thread fan-out for grid-shaped workloads.
//!
//! Heatmaps, coverage objectives and random search all evaluate the same
//! pure function over many independent inputs. [`par_map`] fans those
//! evaluations out over `std::thread::scope` workers and reassembles the
//! results **in input order from contiguous chunks**, so the output is
//! bit-identical to a serial `items.iter().map(f).collect()` — each item's
//! computation is untouched, only *where* it runs changes. No determinism
//! is traded for the speedup.
//!
//! Thread count comes from `std::thread::available_parallelism`, overridable
//! with the `SURFOS_THREADS` environment variable (`SURFOS_THREADS=1` forces
//! serial execution; values are clamped to [`MAX_THREADS`], and unparsable
//! or zero values fall back to the hardware count). The shard-scaling
//! benches and the CI single-shard-equivalence arm pin `SURFOS_THREADS=1`
//! so worker counts — and therefore spawn overheads — are deterministic
//! across machines. Small inputs short-circuit to the serial path: for a
//! handful of items the spawn cost exceeds the work.

/// Minimum items per worker before fan-out is worth the spawn cost.
const MIN_ITEMS_PER_THREAD: usize = 4;

/// Upper clamp on `SURFOS_THREADS`: a stray huge override (or a unit typo
/// like `1000000`) must not translate into an unbounded spawn storm.
pub const MAX_THREADS: usize = 256;

/// The worker count for `work` items: `SURFOS_THREADS` if set (clamped to
/// `1..=`[`MAX_THREADS`]), otherwise the machine's available parallelism,
/// never more than the work supports.
pub fn thread_count(work: usize) -> usize {
    let hw = std::env::var("SURFOS_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .map(|n| n.min(MAX_THREADS))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
    hw.min(work.div_ceil(MIN_ITEMS_PER_THREAD).max(1))
}

/// The configured worker count for *coarse-grained* fan-out (one shard,
/// not one grid point, per item): `SURFOS_THREADS` if set (clamped to
/// `1..=`[`MAX_THREADS`]), otherwise the machine's available parallelism.
/// Unlike [`thread_count`] there is no per-item work floor — a handful of
/// kernel shards each worth milliseconds should still fan out.
pub fn configured_threads() -> usize {
    std::env::var("SURFOS_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .map(|n| n.min(MAX_THREADS))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Parallel map with output in input order (bit-identical to serial).
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_with(items, || (), |(), item| f(item))
}

/// [`par_map`] with per-worker scratch state: `init` runs once per worker
/// (and once total on the serial path), and each call of `f` may mutate it.
/// This is how callers hoist a per-item allocation — e.g. a cloned receiver
/// template — out of the loop without sharing it across threads.
pub fn par_map_with<T, S, U, I, F>(items: &[T], init: I, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> U + Sync,
{
    par_map_with_threads(items, thread_count(items.len()), init, f)
}

/// [`par_map_with`] at an explicit worker count; `threads <= 1` is the
/// plain serial map. Exposed so tests can pin worker counts without racing
/// on the process environment.
pub fn par_map_with_threads<T, S, U, I, F>(items: &[T], threads: usize, init: I, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> U + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        surfos_obs::observe("channel.par.threads", 1);
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }
    surfos_obs::observe("channel.par.threads", threads as u64);
    let chunk_len = items.len().div_ceil(threads);
    let init = &init;
    let f = &f;
    let mut out = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let workers: Vec<_> = items
            .chunks(chunk_len)
            .enumerate()
            .map(|(w, chunk)| {
                scope.spawn(move || {
                    let t0 = surfos_obs::enabled().then(std::time::Instant::now);
                    let mut state = init();
                    let results = chunk
                        .iter()
                        .map(|item| f(&mut state, item))
                        .collect::<Vec<U>>();
                    if let Some(t0) = t0 {
                        // Per-worker attribution: chunk index is the label,
                        // so a straggling worker shows up as a fat
                        // channel.par.chunk_ns{worker=K} tail. The scope is
                        // opened *after* the work so items recorded inside
                        // `f` keep their own labels (e.g. shard ids).
                        let _w = surfos_obs::scoped(&[("worker", w)]);
                        surfos_obs::observe("channel.par.chunk_items", chunk.len() as u64);
                        surfos_obs::observe_ns(
                            "channel.par.chunk_ns",
                            t0.elapsed().as_nanos() as u64,
                        );
                    }
                    results
                })
            })
            .collect();
        // Joining in spawn order = chunk order = input order.
        for worker in workers {
            out.extend(worker.join().expect("fan-out worker panicked"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(x: &f64) -> f64 {
        // Enough float ops that any reassociation would show up.
        (0..32).fold(*x, |acc, i| (acc * 1.000_1 + i as f64).sin())
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let items: Vec<f64> = (0..257).map(|i| i as f64 * 0.37).collect();
        let serial: Vec<f64> = items.iter().map(work).collect();
        for threads in [2, 3, 4, 7, 16] {
            let par = par_map_with_threads(&items, threads, || (), |(), x| work(x));
            assert_eq!(
                serial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                par.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<f64> = par_map(&[], work);
        assert!(empty.is_empty());
        let one = par_map_with_threads(&[2.0], 8, || (), |(), x| work(x));
        assert_eq!(one, vec![work(&2.0)]);
    }

    #[test]
    fn per_worker_state_initialised_per_chunk() {
        // Each worker's state starts fresh; the per-item result must not
        // depend on which chunk the item landed in.
        let items: Vec<usize> = (0..100).collect();
        let via_state = |threads| {
            par_map_with_threads(
                &items,
                threads,
                || Vec::<u8>::with_capacity(16),
                |scratch: &mut Vec<u8>, &i| {
                    scratch.clear();
                    scratch.extend_from_slice(&(i as u32).to_be_bytes());
                    scratch.iter().map(|&b| b as usize).sum::<usize>()
                },
            )
        };
        assert_eq!(via_state(1), via_state(6));
    }

    #[test]
    fn thread_count_respects_small_work() {
        assert_eq!(thread_count(0), 1);
        assert_eq!(thread_count(1), 1);
        assert!(thread_count(4) <= 1 + 4 / MIN_ITEMS_PER_THREAD);
        assert!(thread_count(10_000) >= 1);
    }
}
