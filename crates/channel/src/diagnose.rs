//! Link diagnosis: per-mechanism breakdown of a channel.
//!
//! The paper (§5) names network monitoring and diagnosis among the new
//! services a centralized control plane enables. The primitive they need
//! is *attribution*: how much of a link's power arrives via the direct
//! path, via each surface, via each cascade — and what the room would
//! lose if a given surface went away. The linearization already carries
//! that decomposition; this module reads it out.

use crate::endpoint::Endpoint;
use crate::sim::ChannelSim;
use surfos_em::complex::Complex;
use surfos_em::units::amplitude_to_db;

/// One mechanism's contribution to a link.
#[derive(Debug, Clone, PartialEq)]
pub struct Contribution {
    /// Which mechanism: `"direct+walls"`, `"surface:<id>"`,
    /// `"cascade:<id>→<id>"`.
    pub mechanism: String,
    /// The mechanism's complex field contribution.
    pub field: Complex,
    /// Its share of the total received power if it arrived alone, dB
    /// relative to the total (can exceed 0 dB under destructive
    /// interference with other paths).
    pub solo_rel_db: f64,
}

/// A diagnosed link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkDiagnosis {
    /// Total complex gain.
    pub total: Complex,
    /// Total gain in dB (amplitude → power convention).
    pub total_db: f64,
    /// Per-mechanism contributions, strongest first.
    pub contributions: Vec<Contribution>,
}

impl LinkDiagnosis {
    /// The dominant mechanism's name.
    pub fn dominant(&self) -> &str {
        &self.contributions[0].mechanism
    }

    /// What the link loses (dB) if `mechanism` is removed — the
    /// counterfactual a diagnosis tool reports ("surface wall0 carries
    /// 23 dB of this link").
    pub fn loss_without(&self, mechanism: &str) -> f64 {
        let without: Complex = self
            .contributions
            .iter()
            .filter(|c| c.mechanism != mechanism)
            .map(|c| c.field)
            .sum();
        amplitude_to_db(self.total.abs()) - amplitude_to_db(without.abs())
    }
}

/// Diagnoses a link under the simulator's current surface responses.
pub fn diagnose_link(sim: &ChannelSim, tx: &Endpoint, rx: &Endpoint) -> LinkDiagnosis {
    let lin = sim.linearize(tx, rx);
    let responses = sim.responses();
    let mut contributions = Vec::new();

    contributions.push(("direct+walls".to_string(), lin.constant));
    for term in &lin.linear {
        let field: Complex = term
            .coeffs
            .iter()
            .zip(responses[term.surface])
            .map(|(c, r)| *c * *r)
            .sum();
        contributions.push((
            format!("surface:{}", sim.surfaces()[term.surface].id),
            field,
        ));
    }
    for b in &lin.bilinear {
        let alpha: Complex = b
            .alpha
            .iter()
            .zip(responses[b.first])
            .map(|(c, r)| *c * *r)
            .sum();
        let beta: Complex = b
            .beta
            .iter()
            .zip(responses[b.second])
            .map(|(c, r)| *c * *r)
            .sum();
        contributions.push((
            format!(
                "cascade:{}→{}",
                sim.surfaces()[b.first].id,
                sim.surfaces()[b.second].id
            ),
            alpha * beta,
        ));
    }

    let total: Complex = contributions.iter().map(|(_, f)| *f).sum();
    let total_db = amplitude_to_db(total.abs());
    let mut contributions: Vec<Contribution> = contributions
        .into_iter()
        .map(|(mechanism, field)| Contribution {
            mechanism,
            solo_rel_db: amplitude_to_db(field.abs()) - total_db,
            field,
        })
        .collect();
    contributions.sort_by(|a, b| b.field.abs().total_cmp(&a.field.abs()));

    LinkDiagnosis {
        total,
        total_db,
        contributions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::surface::{OperationMode, SurfaceInstance};
    use surfos_em::antenna::ElementPattern;
    use surfos_em::array::ArrayGeometry;
    use surfos_em::band::NamedBand;
    use surfos_geometry::scenario::two_room_apartment;
    use surfos_geometry::{Pose, Vec3};

    fn setup() -> (ChannelSim, Endpoint, Endpoint, usize) {
        let scen = two_room_apartment();
        let band = NamedBand::MmWave28GHz.band();
        let mut sim = ChannelSim::new(scen.plan.clone(), band);
        let pose = *scen.anchor("bedroom-north").unwrap();
        let idx = sim.add_surface(SurfaceInstance::new(
            "wall0",
            pose,
            ArrayGeometry::half_wavelength(16, 16, band.wavelength_m()),
            OperationMode::Reflective,
        ));
        let ap = Endpoint::access_point(
            "ap0",
            Pose::wall_mounted(scen.ap_pose.position, pose.position - scen.ap_pose.position),
        );
        let mut rx = Endpoint::client("c", Vec3::new(6.5, 1.5, 1.2));
        rx.pattern = ElementPattern::Isotropic;
        (sim, ap, rx, idx)
    }

    #[test]
    fn decomposition_sums_to_total() {
        let (sim, ap, rx, _) = setup();
        let d = diagnose_link(&sim, &ap, &rx);
        let sum: Complex = d.contributions.iter().map(|c| c.field).sum();
        assert!((sum - d.total).abs() < 1e-15);
        assert!((sim.gain(&ap, &rx) - d.total).abs() < 1e-15);
    }

    #[test]
    fn focused_surface_becomes_dominant() {
        let (mut sim, ap, rx, idx) = setup();
        // Unfocused: the doorway leak dominates or ties.
        let before = diagnose_link(&sim, &ap, &rx);
        // Focus the surface on the receiver.
        let lin = sim.linearize(&ap, &rx);
        let term = lin.linear.iter().find(|t| t.surface == idx).unwrap();
        let phases: Vec<f64> = term.coeffs.iter().map(|c| -c.arg()).collect();
        sim.surface_mut(idx).set_phases(&phases);
        let after = diagnose_link(&sim, &ap, &rx);
        assert_eq!(after.dominant(), "surface:wall0");
        assert!(after.total.abs() > before.total.abs());
    }

    #[test]
    fn counterfactual_loss_is_large_for_the_serving_surface() {
        let (mut sim, ap, rx, idx) = setup();
        let lin = sim.linearize(&ap, &rx);
        let term = lin.linear.iter().find(|t| t.surface == idx).unwrap();
        let phases: Vec<f64> = term.coeffs.iter().map(|c| -c.arg()).collect();
        sim.surface_mut(idx).set_phases(&phases);
        let d = diagnose_link(&sim, &ap, &rx);
        let loss = d.loss_without("surface:wall0");
        assert!(
            loss > 15.0,
            "serving surface must carry the link: {loss:.1} dB"
        );
        // Removing a mechanism that doesn't exist changes nothing.
        assert!(d.loss_without("surface:ghost").abs() < 1e-9);
    }

    #[test]
    fn degraded_surface_is_pinpointed() {
        // A link served by a focused surface degrades when that surface's
        // hardware fails (efficiency → 0, e.g. a dead control board). The
        // diagnosis must attribute the collapse to that mechanism: its
        // contribution disappears, the counterfactual loss it used to
        // carry vanishes, and it is no longer dominant.
        let (mut sim, ap, rx, idx) = setup();
        let lin = sim.linearize(&ap, &rx);
        let term = lin.linear.iter().find(|t| t.surface == idx).unwrap();
        let phases: Vec<f64> = term.coeffs.iter().map(|c| -c.arg()).collect();
        sim.surface_mut(idx).set_phases(&phases);
        let healthy = diagnose_link(&sim, &ap, &rx);
        assert_eq!(healthy.dominant(), "surface:wall0");
        let carried = healthy.loss_without("surface:wall0");

        sim.surface_mut(idx).efficiency = 0.0;
        let degraded = diagnose_link(&sim, &ap, &rx);
        assert!(
            degraded.total_db < healthy.total_db - 10.0,
            "dead surface must cost the link double digits: {:.1} -> {:.1} dB",
            healthy.total_db,
            degraded.total_db
        );
        let surf = degraded
            .contributions
            .iter()
            .find(|c| c.mechanism == "surface:wall0")
            .expect("mechanism still listed");
        assert!(surf.field.abs() < 1e-12, "dead surface still radiating");
        assert!(
            degraded.loss_without("surface:wall0").abs() < 1e-9,
            "a dead mechanism carries nothing"
        );
        assert!(carried > 10.0);
        assert_ne!(degraded.dominant(), "surface:wall0");
    }

    #[test]
    fn contributions_sorted_strongest_first() {
        let (sim, ap, rx, _) = setup();
        let d = diagnose_link(&sim, &ap, &rx);
        for w in d.contributions.windows(2) {
            assert!(w[0].field.abs() >= w[1].field.abs());
        }
    }
}
