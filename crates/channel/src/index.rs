//! The scene index: every per-geometry precomputation path tracing reuses
//! across segments, links and endpoints.
//!
//! A [`SceneIndex`] bundles four things, all functions of geometry alone
//! (never of the band, endpoints or programmed responses):
//!
//! - a [`WallIndex`] (BVH) over the floor plan's walls,
//! - padded bounding boxes for the dynamic blockers,
//! - padded aperture boxes for the obstructing surfaces
//!   (`obstruction_amplitude < 1.0`), and
//! - the world positions of every surface element, so `trace_surface` /
//!   `trace_cascade` stop re-deriving thousands of pose transforms per link.
//!
//! [`ChannelSim`](crate::sim::ChannelSim) builds one per geometry epoch and
//! shares it (via `Arc`) across every trace, batch fan-out and kernel tick
//! until a wall/blocker/surface mutation invalidates it. All culling through
//! the index is conservative — candidate supersets only — so indexed results
//! are bit-identical to the brute-force scan.

use surfos_geometry::bvh::Aabb;
use surfos_geometry::plan::WallIndex;
use surfos_geometry::{FloorPlan, Pose, Vec3};

use crate::dynamics::Blocker;
use crate::surface::SurfaceInstance;

/// Conservative padding on blocker and surface-aperture boxes. The exact
/// tests accept boundary hits (closest approach exactly at a blocker's
/// radius, crossings exactly on an aperture edge); 2 mm of slack keeps every
/// acceptable hit strictly inside its box, clear of face-equality rounding.
const PRIM_AABB_PAD: f64 = 2e-3;

/// Element positions cached for one surface, with the pose and count they
/// were derived from so lookups can reject a stale or mismatched surface.
#[derive(Debug)]
struct CachedElements {
    pose: Pose,
    positions: Vec<Vec3>,
}

/// Per-geometry-epoch spatial acceleration for one scene. See the module
/// docs; build with [`SceneIndex::build`].
#[derive(Debug)]
pub struct SceneIndex {
    walls: WallIndex,
    blocker_boxes: Vec<Aabb>,
    obstructing: Vec<(usize, Aabb)>,
    elements: Vec<CachedElements>,
}

impl SceneIndex {
    /// Builds the index for a scene. Cost is `O(walls · log walls +
    /// blockers + Σ elements)` — paid once per geometry epoch, not per
    /// link.
    pub fn build(plan: &FloorPlan, blockers: &[Blocker], surfaces: &[SurfaceInstance]) -> Self {
        SceneIndex {
            walls: plan.build_wall_index(),
            blocker_boxes: blockers
                .iter()
                .map(|b| b.aabb().grown(PRIM_AABB_PAD))
                .collect(),
            obstructing: surfaces
                .iter()
                .enumerate()
                .filter(|(_, s)| s.obstruction_amplitude < 1.0)
                .map(|(i, s)| (i, s.aperture_aabb().grown(PRIM_AABB_PAD)))
                .collect(),
            elements: surfaces
                .iter()
                .map(|s| CachedElements {
                    pose: s.pose,
                    positions: (0..s.len()).map(|e| s.element_world_position(e)).collect(),
                })
                .collect(),
        }
    }

    /// The wall BVH.
    pub fn walls(&self) -> &WallIndex {
        &self.walls
    }

    /// Padded blocker boxes, in blocker order (parallel to the scene's
    /// blocker slice).
    pub(crate) fn blocker_boxes(&self) -> &[Aabb] {
        &self.blocker_boxes
    }

    /// `(surface index, padded aperture box)` for each obstructing surface,
    /// in deployment order.
    pub(crate) fn obstructing(&self) -> &[(usize, Aabb)] {
        &self.obstructing
    }

    /// The cached element world positions of surface `index`, or `None` if
    /// the index is out of range or the surface does not match the one the
    /// cache was built from (pose or element count changed) — callers then
    /// fall back to computing positions directly. The positions are exactly
    /// what [`SurfaceInstance::element_world_position`] returns, bit for
    /// bit.
    pub(crate) fn element_positions(
        &self,
        index: usize,
        surface: &SurfaceInstance,
    ) -> Option<&[Vec3]> {
        let cached = self.elements.get(index)?;
        (cached.positions.len() == surface.len() && cached.pose == surface.pose)
            .then_some(cached.positions.as_slice())
    }
}
