//! The scene index: every per-geometry precomputation path tracing reuses
//! across segments, links and endpoints.
//!
//! A [`SceneIndex`] bundles four things, all functions of geometry alone
//! (never of the band, endpoints or programmed responses):
//!
//! - a [`WallIndex`] (BVH) over the floor plan's walls,
//! - padded bounding boxes for the dynamic blockers,
//! - padded aperture boxes for the obstructing surfaces
//!   (`obstruction_amplitude < 1.0`), and
//! - the world positions of every surface element, so `trace_surface` /
//!   `trace_cascade` stop re-deriving thousands of pose transforms per link.
//!
//! The first, third and fourth are *structural*: they depend only on walls
//! and surfaces, which mutate rarely. They live behind one shared
//! [`SceneStructure`] `Arc`. The blocker boxes are the *dynamic* part —
//! people walk every tick — so a blocker-only mutation calls
//! [`SceneIndex::refit_blockers`], which recomputes just the `O(blockers)`
//! boxes and shares the structure untouched, instead of rebuilding the wall
//! BVH and re-deriving element positions.
//!
//! [`ChannelSim`](crate::sim::ChannelSim) builds one per structure epoch,
//! refits it per blocker epoch, and shares it (via `Arc`) across every
//! trace, batch fan-out and kernel tick. All culling through the index is
//! conservative — candidate supersets only — so indexed results are
//! bit-identical to the brute-force scan.

use std::sync::Arc;

use surfos_geometry::bvh::{Aabb, AabbBank};
use surfos_geometry::plan::WallIndex;
use surfos_geometry::{FloorPlan, Pose, Vec3};

use crate::dynamics::Blocker;
use crate::surface::SurfaceInstance;

/// Conservative padding on blocker and surface-aperture boxes. The exact
/// tests accept boundary hits (closest approach exactly at a blocker's
/// radius, crossings exactly on an aperture edge); 2 mm of slack keeps every
/// acceptable hit strictly inside its box, clear of face-equality rounding.
const PRIM_AABB_PAD: f64 = 2e-3;

/// Element positions cached for one surface, with the pose and count they
/// were derived from so lookups can reject a stale or mismatched surface.
#[derive(Debug)]
struct CachedElements {
    pose: Pose,
    positions: Vec<Vec3>,
}

/// The structural (walls + surfaces) slice of a [`SceneIndex`]: everything
/// that is invariant under blocker motion. Shared via `Arc` across blocker
/// refits, so a walk tick never rebuilds the wall BVH or re-derives element
/// positions.
#[derive(Debug)]
pub struct SceneStructure {
    walls: WallIndex,
    obstructing: Vec<(usize, Aabb)>,
    /// Eight-lane interval bank over the aperture boxes in `obstructing`
    /// (bank index `i` ↔ `obstructing[i]`), so per-segment aperture scans
    /// test eight boxes per vector step. Conservative: survivors re-run
    /// the exact box + aperture tests.
    aperture_bank: AabbBank,
    elements: Vec<CachedElements>,
}

/// Per-epoch spatial acceleration for one scene. See the module docs;
/// build with [`SceneIndex::build`], refit with
/// [`SceneIndex::refit_blockers`].
#[derive(Debug)]
pub struct SceneIndex {
    structure: Arc<SceneStructure>,
    blocker_boxes: Vec<Aabb>,
    /// Interval bank over `blocker_boxes` (same order); rebuilt with them
    /// on every [`SceneIndex::refit_blockers`].
    blocker_bank: AabbBank,
}

fn blocker_boxes(blockers: &[Blocker]) -> Vec<Aabb> {
    blockers
        .iter()
        .map(|b| b.aabb().grown(PRIM_AABB_PAD))
        .collect()
}

impl SceneIndex {
    /// Builds the index for a scene. Cost is `O(walls · log walls +
    /// blockers + Σ elements)` — paid once per structure epoch, not per
    /// link.
    pub fn build(plan: &FloorPlan, blockers: &[Blocker], surfaces: &[SurfaceInstance]) -> Self {
        Self::build_with_walls(plan.build_wall_index(), blockers, surfaces)
    }

    /// Like [`SceneIndex::build`] but reusing a prebuilt [`WallIndex`] over
    /// the same plan's walls — e.g. the median reference tree from
    /// [`FloorPlan::build_wall_index_median`], which the equivalence tests
    /// trace through to pin SAH/median/brute bit-identity at the channel
    /// level.
    pub fn build_with_walls(
        walls: WallIndex,
        blockers: &[Blocker],
        surfaces: &[SurfaceInstance],
    ) -> Self {
        // Size of the packed tree this index will traverse — building-scale
        // plans make this worth watching next to `nodes_visited`.
        surfos_obs::gauge("channel.index.bvh_nodes", walls.bvh().node_count() as f64);
        let obstructing: Vec<(usize, Aabb)> = surfaces
            .iter()
            .enumerate()
            .filter(|(_, s)| s.obstruction_amplitude < 1.0)
            .map(|(i, s)| (i, s.aperture_aabb().grown(PRIM_AABB_PAD)))
            .collect();
        let aperture_bank = AabbBank::new(&obstructing.iter().map(|&(_, b)| b).collect::<Vec<_>>());
        let boxes = blocker_boxes(blockers);
        let blocker_bank = AabbBank::new(&boxes);
        SceneIndex {
            structure: Arc::new(SceneStructure {
                walls,
                obstructing,
                aperture_bank,
                elements: surfaces
                    .iter()
                    .map(|s| CachedElements {
                        pose: s.pose,
                        positions: (0..s.len()).map(|e| s.element_world_position(e)).collect(),
                    })
                    .collect(),
            }),
            blocker_boxes: boxes,
            blocker_bank,
        }
    }

    /// A new index for the same walls and surfaces but a moved/changed
    /// blocker set: the structure `Arc` is shared untouched and only the
    /// `O(blockers)` padded boxes are recomputed. Bit-identical to a full
    /// [`SceneIndex::build`] for the same scene — the boxes come from the
    /// same expression — at a fraction of the cost.
    pub fn refit_blockers(&self, blockers: &[Blocker]) -> SceneIndex {
        let boxes = blocker_boxes(blockers);
        let blocker_bank = AabbBank::new(&boxes);
        SceneIndex {
            structure: Arc::clone(&self.structure),
            blocker_boxes: boxes,
            blocker_bank,
        }
    }

    /// The shared structural slice. Exposed so callers can assert (via
    /// `Arc::ptr_eq`) that blocker-only mutations never rebuild it.
    pub fn structure(&self) -> &Arc<SceneStructure> {
        &self.structure
    }

    /// The wall BVH.
    pub fn walls(&self) -> &WallIndex {
        &self.structure.walls
    }

    /// Padded blocker boxes, in blocker order (parallel to the scene's
    /// blocker slice).
    pub(crate) fn blocker_boxes(&self) -> &[Aabb] {
        &self.blocker_boxes
    }

    /// The 8-lane interval bank over [`Self::blocker_boxes`] (same order).
    /// Candidates are a conservative superset of the boxes the exact
    /// segment test accepts; callers re-run the exact test per survivor.
    pub(crate) fn blocker_bank(&self) -> &AabbBank {
        &self.blocker_bank
    }

    /// `(surface index, padded aperture box)` for each obstructing surface,
    /// in deployment order.
    pub(crate) fn obstructing(&self) -> &[(usize, Aabb)] {
        &self.structure.obstructing
    }

    /// The 8-lane interval bank over [`Self::obstructing`]'s aperture
    /// boxes (bank index `i` ↔ `obstructing()[i]`). Conservative, like
    /// [`Self::blocker_bank`].
    pub(crate) fn aperture_bank(&self) -> &AabbBank {
        &self.structure.aperture_bank
    }

    /// The cached element world positions of surface `index`, or `None` if
    /// the index is out of range or the surface does not match the one the
    /// cache was built from (pose or element count changed) — callers then
    /// fall back to computing positions directly. The positions are exactly
    /// what [`SurfaceInstance::element_world_position`] returns, bit for
    /// bit.
    pub(crate) fn element_positions(
        &self,
        index: usize,
        surface: &SurfaceInstance,
    ) -> Option<&[Vec3]> {
        let cached = self.structure.elements.get(index)?;
        (cached.positions.len() == surface.len() && cached.pose == surface.pose)
            .then_some(cached.positions.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use surfos_geometry::scenario::two_room_apartment;

    #[test]
    fn refit_shares_structure_and_matches_full_build() {
        let scen = two_room_apartment();
        let blockers = [Blocker::person(Vec3::xy(2.0, 2.0))];
        let index = SceneIndex::build(&scen.plan, &blockers, &[]);
        let moved = [Blocker::person(Vec3::xy(3.5, 1.0))];
        let refitted = index.refit_blockers(&moved);
        assert!(
            Arc::ptr_eq(index.structure(), refitted.structure()),
            "refit must share the structure Arc"
        );
        let rebuilt = SceneIndex::build(&scen.plan, &moved, &[]);
        assert_eq!(refitted.blocker_boxes(), rebuilt.blocker_boxes());
    }

    #[test]
    fn refit_handles_count_changes() {
        let scen = two_room_apartment();
        let index = SceneIndex::build(&scen.plan, &[], &[]);
        let crowd = [
            Blocker::person(Vec3::xy(1.0, 1.0)),
            Blocker::person(Vec3::xy(2.0, 2.0)),
        ];
        let refitted = index.refit_blockers(&crowd);
        assert_eq!(refitted.blocker_boxes().len(), 2);
        assert!(Arc::ptr_eq(index.structure(), refitted.structure()));
        assert!(refitted.refit_blockers(&[]).blocker_boxes().is_empty());
    }
}
