//! Spatial metric maps and their statistics.
//!
//! The paper's evaluation reports heatmaps (Figure 2), medians over a room
//! (Figure 4) and CDFs across locations (Figure 5). [`Heatmap`] is that
//! artefact: values sampled over points, with the order statistics the
//! experiment harness prints.

use serde::{Deserialize, Serialize};
use surfos_geometry::Vec3;

/// A scalar field sampled over points (RSS, SNR, localization error, …).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Heatmap {
    /// Sample locations.
    pub points: Vec<Vec3>,
    /// Sampled values, parallel to `points`.
    pub values: Vec<f64>,
}

impl Heatmap {
    /// Creates a heatmap.
    ///
    /// # Panics
    /// Panics if lengths differ or the map is empty.
    pub fn new(points: Vec<Vec3>, values: Vec<f64>) -> Self {
        assert_eq!(points.len(), values.len(), "points/values length mismatch");
        assert!(!points.is_empty(), "heatmap must be non-empty");
        Heatmap { points, values }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when empty (cannot happen via [`new`](Self::new)).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    fn sorted(&self) -> Vec<f64> {
        let mut v = self.values.clone();
        v.sort_by(f64::total_cmp);
        v
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`) by linear interpolation.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let s = self.sorted();
        if s.len() == 1 {
            return s[0];
        }
        let pos = q * (s.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        s[lo] + (s[hi] - s[lo]) * frac
    }

    /// Median value.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Minimum value.
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum value.
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// The empirical CDF as `(value, fraction ≤ value)` points, one per
    /// sample — exactly the series the paper's Figure 5 plots.
    pub fn cdf(&self) -> Vec<(f64, f64)> {
        let s = self.sorted();
        let n = s.len() as f64;
        s.into_iter()
            .enumerate()
            .map(|(i, v)| (v, (i + 1) as f64 / n))
            .collect()
    }

    /// Fraction of samples with value ≥ `threshold` (coverage fraction).
    pub fn fraction_at_least(&self, threshold: f64) -> f64 {
        self.values.iter().filter(|v| **v >= threshold).count() as f64 / self.values.len() as f64
    }

    /// Renders an ASCII heatmap for terminal inspection (rows = y buckets,
    /// cols = x buckets), darkest = lowest. Intended for the experiment
    /// binaries' output; not a stable format.
    pub fn ascii(&self, cols: usize, rows: usize) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let (lo, hi) = (self.min(), self.max());
        let span = (hi - lo).max(1e-12);
        let min_x = self
            .points
            .iter()
            .map(|p| p.x)
            .fold(f64::INFINITY, f64::min);
        let max_x = self
            .points
            .iter()
            .map(|p| p.x)
            .fold(f64::NEG_INFINITY, f64::max);
        let min_y = self
            .points
            .iter()
            .map(|p| p.y)
            .fold(f64::INFINITY, f64::min);
        let max_y = self
            .points
            .iter()
            .map(|p| p.y)
            .fold(f64::NEG_INFINITY, f64::max);
        let mut sums = vec![0.0f64; cols * rows];
        let mut counts = vec![0usize; cols * rows];
        for (p, v) in self.points.iter().zip(&self.values) {
            let cx =
                (((p.x - min_x) / (max_x - min_x).max(1e-12)) * (cols - 1) as f64).round() as usize;
            let cy =
                (((p.y - min_y) / (max_y - min_y).max(1e-12)) * (rows - 1) as f64).round() as usize;
            sums[cy * cols + cx] += v;
            counts[cy * cols + cx] += 1;
        }
        let mut out = String::new();
        for r in (0..rows).rev() {
            for c in 0..cols {
                let i = r * cols + c;
                let ch = if counts[i] == 0 {
                    b' '
                } else {
                    let v = sums[i] / counts[i] as f64;
                    let t = ((v - lo) / span * (RAMP.len() - 1) as f64).round() as usize;
                    RAMP[t.min(RAMP.len() - 1)]
                };
                out.push(ch as char);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn map(values: Vec<f64>) -> Heatmap {
        let points = (0..values.len()).map(|i| Vec3::xy(i as f64, 0.0)).collect();
        Heatmap::new(points, values)
    }

    #[test]
    fn order_statistics() {
        let m = map(vec![5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(m.median(), 3.0);
        assert_eq!(m.min(), 1.0);
        assert_eq!(m.max(), 5.0);
        assert_eq!(m.mean(), 3.0);
        assert_eq!(m.quantile(0.0), 1.0);
        assert_eq!(m.quantile(1.0), 5.0);
    }

    #[test]
    fn quantile_interpolates() {
        let m = map(vec![0.0, 10.0]);
        assert_eq!(m.quantile(0.25), 2.5);
        assert_eq!(m.quantile(0.5), 5.0);
    }

    #[test]
    fn cdf_monotone_and_complete() {
        let m = map(vec![3.0, 1.0, 2.0, 2.0]);
        let cdf = m.cdf();
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf.last().unwrap().1, 1.0);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn fraction_at_least() {
        let m = map(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.fraction_at_least(3.0), 0.5);
        assert_eq!(m.fraction_at_least(0.0), 1.0);
        assert_eq!(m.fraction_at_least(5.0), 0.0);
    }

    #[test]
    fn ascii_shape() {
        let m = map(vec![1.0, 2.0, 3.0, 4.0]);
        let art = m.ascii(4, 2);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines.iter().all(|l| l.len() == 4));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_rejected() {
        let _ = Heatmap::new(vec![Vec3::ZERO], vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_rejected() {
        let _ = Heatmap::new(vec![], vec![]);
    }

    proptest! {
        #[test]
        fn prop_median_between_min_max(values in prop::collection::vec(-100.0..100.0f64, 1..50)) {
            let m = map(values);
            prop_assert!(m.median() >= m.min() - 1e-12);
            prop_assert!(m.median() <= m.max() + 1e-12);
        }

        #[test]
        fn prop_quantile_monotone(
            values in prop::collection::vec(-100.0..100.0f64, 2..50),
            q1 in 0.0..1.0f64, q2 in 0.0..1.0f64,
        ) {
            let m = map(values);
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            prop_assert!(m.quantile(lo) <= m.quantile(hi) + 1e-12);
        }
    }
}
