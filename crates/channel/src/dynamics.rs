//! Environment dynamics: the uncontrollable events surfaces must adapt to.
//!
//! The paper's core argument for an OS-like *runtime* (Section 5) is that
//! the radio environment changes underneath the surfaces — people walk,
//! furniture moves — and a compile-time library cannot react. This module
//! models those events: cylindrical [`Blocker`]s (人 ≈ a lossy cylinder)
//! and scripted [`BlockerWalk`] trajectories the kernel replays in
//! discrete time.

use serde::{Deserialize, Serialize};
use surfos_em::band::Band;
use surfos_geometry::bvh::Aabb;
use surfos_geometry::{Material, Vec3};

/// A dynamic obstruction, modelled as a vertical lossy cylinder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Blocker {
    /// Centre of the cylinder footprint.
    pub position: Vec3,
    /// Footprint radius in metres.
    pub radius: f64,
    /// Height in metres.
    pub height: f64,
    /// What the blocker is made of (humans by default).
    pub material: Material,
}

impl Blocker {
    /// A standing adult: 0.25 m radius, 1.8 m tall, human-body losses.
    pub fn person(position: Vec3) -> Self {
        Blocker {
            position: position.flat(),
            radius: 0.25,
            height: 1.8,
            material: Material::HumanBody,
        }
    }

    /// Does the segment pass through the cylinder?
    ///
    /// Checked in plan view (distance from the 2-D segment to the centre
    /// below the radius) with a height test at the closest approach.
    pub fn intersects(&self, from: Vec3, to: Vec3) -> bool {
        let p = self.position.flat();
        let a = from.flat();
        let b = to.flat();
        let ab = b - a;
        let len_sq = ab.norm_sqr();
        let t = if len_sq < 1e-12 {
            0.0
        } else {
            ((p - a).dot(ab) / len_sq).clamp(0.0, 1.0)
        };
        let closest = a.lerp(b, t);
        if closest.distance(p) > self.radius {
            return false;
        }
        // Height of the 3-D ray at that parameter.
        let z = from.z + (to.z - from.z) * t;
        (0.0..=self.height).contains(&z)
    }

    /// The cylinder's bounding box (footprint square × `[0, height]`).
    /// Callers pad it before conservative culling; [`Blocker::intersects`]
    /// accepts closest approaches exactly at `radius`, which lies on the
    /// unpadded box faces.
    pub fn aabb(&self) -> Aabb {
        let r = Vec3::new(self.radius, self.radius, 0.0);
        Aabb::new(
            self.position.flat() - r,
            self.position.flat() + r + Vec3::new(0.0, 0.0, self.height),
        )
    }

    /// Amplitude transmission factor for a segment: 1 when missed, the
    /// material's penetration factor when crossed.
    pub fn transmission_amplitude(&self, from: Vec3, to: Vec3, band: &Band) -> f64 {
        if self.intersects(from, to) {
            self.material.transmission_amplitude(band)
        } else {
            1.0
        }
    }
}

/// A scripted walking trajectory: piecewise-linear waypoints at a constant
/// speed, looping. Deterministic so experiments replay identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockerWalk {
    /// Waypoints of the walk (plan view).
    pub waypoints: Vec<Vec3>,
    /// Walking speed in metres/second.
    pub speed_mps: f64,
}

impl BlockerWalk {
    /// Creates a looping walk.
    ///
    /// # Panics
    /// Panics with fewer than 2 waypoints or non-positive speed.
    pub fn new(waypoints: Vec<Vec3>, speed_mps: f64) -> Self {
        assert!(waypoints.len() >= 2, "a walk needs at least two waypoints");
        assert!(speed_mps > 0.0, "walking speed must be positive");
        BlockerWalk {
            waypoints: waypoints.into_iter().map(|w| w.flat()).collect(),
            speed_mps,
        }
    }

    /// Total loop length in metres (closing the polygon).
    pub fn loop_length(&self) -> f64 {
        let n = self.waypoints.len();
        (0..n)
            .map(|i| self.waypoints[i].distance(self.waypoints[(i + 1) % n]))
            .sum()
    }

    /// Position at time `t_s` seconds into the walk.
    pub fn position_at(&self, t_s: f64) -> Vec3 {
        let total = self.loop_length();
        let mut dist = (t_s.max(0.0) * self.speed_mps) % total;
        let n = self.waypoints.len();
        for i in 0..n {
            let a = self.waypoints[i];
            let b = self.waypoints[(i + 1) % n];
            let seg = a.distance(b);
            if dist <= seg {
                return a.lerp(b, if seg < 1e-12 { 0.0 } else { dist / seg });
            }
            dist -= seg;
        }
        self.waypoints[0]
    }

    /// The blocker (a person) at time `t_s`.
    pub fn blocker_at(&self, t_s: f64) -> Blocker {
        Blocker::person(self.position_at(t_s))
    }

    /// A single-file crowd on the walk: `count` people, each trailing the
    /// previous by `spacing_s` seconds along the same loop. The standard
    /// multi-blocker load for the walk-replay benchmarks.
    pub fn crowd_at(&self, t_s: f64, count: usize, spacing_s: f64) -> Vec<Blocker> {
        (0..count)
            .map(|i| self.blocker_at(t_s + i as f64 * spacing_s))
            .collect()
    }
}

/// An environment event the kernel's runtime loop reacts to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EnvironmentEvent {
    /// A blocker appeared or moved.
    BlockerMoved {
        /// Which blocker (index into the simulator's blocker list).
        index: usize,
        /// New position.
        position: Vec3,
    },
    /// A blocker left the environment.
    BlockerRemoved {
        /// Which blocker.
        index: usize,
    },
    /// An endpoint moved (user mobility).
    EndpointMoved {
        /// Endpoint id.
        id: String,
        /// New position.
        position: Vec3,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use surfos_em::band::NamedBand;

    #[test]
    fn person_blocks_crossing_ray() {
        let b = Blocker::person(Vec3::xy(2.0, 0.0));
        assert!(b.intersects(Vec3::new(0.0, 0.0, 1.2), Vec3::new(4.0, 0.0, 1.2)));
        assert!(!b.intersects(Vec3::new(0.0, 1.0, 1.2), Vec3::new(4.0, 1.0, 1.2)));
    }

    #[test]
    fn ray_over_head_misses() {
        let b = Blocker::person(Vec3::xy(2.0, 0.0)); // 1.8 m tall
        assert!(!b.intersects(Vec3::new(0.0, 0.0, 2.5), Vec3::new(4.0, 0.0, 2.5)));
    }

    #[test]
    fn grazing_within_radius_blocks() {
        let b = Blocker::person(Vec3::xy(2.0, 0.2)); // radius 0.25
        assert!(b.intersects(Vec3::new(0.0, 0.0, 1.0), Vec3::new(4.0, 0.0, 1.0)));
    }

    #[test]
    fn transmission_factor_mmwave_severe() {
        let b = Blocker::person(Vec3::xy(2.0, 0.0));
        let band = NamedBand::MmWave60GHz.band();
        let t = b.transmission_amplitude(Vec3::new(0.0, 0.0, 1.0), Vec3::new(4.0, 0.0, 1.0), &band);
        assert!(t < 0.1); // 25 dB power => ~0.056 amplitude
        let miss =
            b.transmission_amplitude(Vec3::new(0.0, 2.0, 1.0), Vec3::new(4.0, 2.0, 1.0), &band);
        assert_eq!(miss, 1.0);
    }

    #[test]
    fn walk_visits_waypoints_in_order() {
        let walk = BlockerWalk::new(vec![Vec3::xy(0.0, 0.0), Vec3::xy(4.0, 0.0)], 1.0);
        // Loop: 0,0 -> 4,0 -> back. Loop length 8.
        assert!((walk.loop_length() - 8.0).abs() < 1e-12);
        assert!((walk.position_at(0.0) - Vec3::xy(0.0, 0.0)).norm() < 1e-9);
        assert!((walk.position_at(2.0) - Vec3::xy(2.0, 0.0)).norm() < 1e-9);
        assert!((walk.position_at(4.0) - Vec3::xy(4.0, 0.0)).norm() < 1e-9);
        // Past the far end it walks back.
        assert!((walk.position_at(6.0) - Vec3::xy(2.0, 0.0)).norm() < 1e-9);
        // Loops.
        assert!((walk.position_at(8.0) - Vec3::xy(0.0, 0.0)).norm() < 1e-9);
        assert!((walk.position_at(10.0) - walk.position_at(2.0)).norm() < 1e-9);
    }

    #[test]
    fn walk_is_deterministic() {
        let w1 = BlockerWalk::new(vec![Vec3::xy(0.0, 0.0), Vec3::xy(1.0, 3.0)], 0.7);
        let w2 = w1.clone();
        for k in 0..20 {
            let t = k as f64 * 0.37;
            assert_eq!(w1.position_at(t), w2.position_at(t));
        }
    }

    #[test]
    #[should_panic(expected = "at least two waypoints")]
    fn single_waypoint_rejected() {
        let _ = BlockerWalk::new(vec![Vec3::ZERO], 1.0);
    }

    #[test]
    fn crowd_trails_the_lead_walker() {
        let walk = BlockerWalk::new(vec![Vec3::xy(0.0, 0.0), Vec3::xy(4.0, 0.0)], 1.0);
        let crowd = walk.crowd_at(3.0, 3, 0.5);
        assert_eq!(crowd.len(), 3);
        for (i, b) in crowd.iter().enumerate() {
            assert_eq!(b.position, walk.position_at(3.0 + i as f64 * 0.5));
        }
    }
}
