//! # surfos-channel
//!
//! A deterministic ray-tracing wireless channel simulator — SurfOS's
//! substitute for the AutoMS simulator the paper builds on.
//!
//! The simulator models narrowband complex channel gains between endpoints
//! in a [`surfos_geometry::FloorPlan`], through four path families:
//!
//! 1. the **direct** path (with wall penetration losses),
//! 2. first-order **specular wall reflections** (image method),
//! 3. **surface-aided** paths: transmitter → each metasurface element →
//!    receiver, weighted by the element's programmed complex response,
//! 4. **two-hop surface cascades** (surface A relays to surface B), under a
//!    far-field factorization so cost stays `O(N_A + N_B)` per link.
//!
//! ## Linearity — the property everything above this crate exploits
//!
//! For fixed geometry the total channel gain is *affine in each surface's
//! element response vector* (and bilinear across cascade pairs). The
//! simulator therefore exposes a [`linear::Linearization`] per
//! (transmitter, receiver) pair: a constant term plus per-surface
//! coefficient vectors. The orchestrator's optimizer evaluates channels and
//! *analytic gradients* from the linearization without re-tracing rays —
//! this is what makes joint multi-surface, multi-task configuration search
//! tractable, and is the computational heart of the reproduction.
//!
//! ## Modelling notes (documented approximations)
//!
//! - 2.5-D environments: vertical walls, exact 3-D distances.
//! - First-order wall bounces only; higher orders are below the noise floor
//!   at the mmWave bands the experiments use.
//! - Wall penetration for surface legs is evaluated against the surface
//!   *centre* (elements are within centimetres of it).
//! - Surface cascades use the standard far-field factorization: per-element
//!   phases are exact on the outer legs, and the inter-surface hop is taken
//!   centre-to-centre.

#![warn(missing_docs)]

pub mod diagnose;
pub mod dynamics;
pub mod endpoint;
pub mod feedback;
pub mod heatmap;
pub mod incremental;
pub mod index;
pub mod linear;
pub mod par;
pub mod paths;
pub mod sim;
pub mod surface;
pub mod trace;

pub use diagnose::{diagnose_link, LinkDiagnosis};
pub use endpoint::{Endpoint, EndpointKind};
pub use heatmap::Heatmap;
pub use index::{SceneIndex, SceneStructure};
pub use linear::Linearization;
pub use sim::{CacheStats, ChannelSim, IndexStats, LinkBudget};
pub use surface::{OperationMode, SurfaceInstance};
