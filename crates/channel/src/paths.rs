//! Path tracing: the complex gain of each propagation mechanism.
//!
//! Every function here returns *amplitude* (field) gains including antenna
//! pattern factors, so `|h|²` is the power ratio between conducted transmit
//! power and received power.

use crate::dynamics::Blocker;
use crate::endpoint::Endpoint;
use crate::linear::{BilinearTerm, LinearTerm};
use crate::surface::SurfaceInstance;
use surfos_em::band::Band;
use surfos_em::complex::Complex;
use surfos_em::propagation::friis_amplitude;
use surfos_geometry::reflect::specular_reflection;
use surfos_geometry::{FloorPlan, Vec3};

/// The propagation medium: static walls plus dynamic blockers, at one band.
///
/// Bundles everything path tracing needs to attenuate a ray segment.
#[derive(Debug, Clone)]
pub struct Medium<'a> {
    /// The static environment.
    pub plan: &'a FloorPlan,
    /// Dynamic obstructions (people, moved furniture).
    pub blockers: &'a [Blocker],
    /// Deployed surfaces, whose apertures may obstruct *other* signals
    /// crossing them (off-band interaction, §2.1). A surface never blocks
    /// its own scatter legs: those terminate on its plane.
    pub obstructions: &'a [SurfaceInstance],
    /// The carrier band.
    pub band: Band,
}

impl<'a> Medium<'a> {
    /// Amplitude transmission factor along a segment:
    /// walls × blockers × crossing surfaces.
    pub fn transmission(&self, from: Vec3, to: Vec3) -> f64 {
        let walls = self.plan.transmission_amplitude(from, to, &self.band);
        let blockers: f64 = self
            .blockers
            .iter()
            .map(|b| b.transmission_amplitude(from, to, &self.band))
            .product();
        let surfaces: f64 = self
            .obstructions
            .iter()
            .filter(|s| s.obstruction_amplitude < 1.0 && s.intersects_segment(from, to))
            .map(|s| s.obstruction_amplitude)
            .product();
        walls * blockers * surfaces
    }

    /// Carrier wavelength shorthand.
    #[inline]
    pub fn lambda(&self) -> f64 {
        self.band.wavelength_m()
    }
}

/// Gain of the direct (possibly wall-penetrating) path.
pub fn direct_gain(medium: &Medium, tx: &Endpoint, rx: &Endpoint) -> Complex {
    let d = tx.position().distance(rx.position());
    if d < 1e-6 {
        // Co-located endpoints: treat as a dead link rather than a
        // singularity; the caller decides what zero distance means.
        return Complex::ZERO;
    }
    let g = friis_amplitude(d, medium.lambda());
    let pat = tx.amplitude_gain_towards(rx.position()) * rx.amplitude_gain_towards(tx.position());
    let pol = (tx.polarization_rad - rx.polarization_rad).cos();
    let trans = medium.transmission(tx.position(), rx.position());
    g * (pat * pol * trans)
}

/// Summed gain of all first-order specular wall reflections.
///
/// Uses the image method: the reflected amplitude decays over the unfolded
/// path length `d1 + d2`, scaled by the wall material's reflection
/// coefficient. Each leg is additionally attenuated by any *other* walls it
/// crosses.
pub fn wall_bounce_gain(medium: &Medium, tx: &Endpoint, rx: &Endpoint) -> Complex {
    let mut total = Complex::ZERO;
    for wall in medium.plan.walls() {
        let Some(refl) = specular_reflection(tx.position(), rx.position(), wall) else {
            continue;
        };
        let g = friis_amplitude(refl.total_length(), medium.lambda());
        let rho = wall.material.reflection_amplitude(&medium.band);
        let pat =
            tx.amplitude_gain_towards(refl.point) * rx.amplitude_gain_towards(refl.point);
        // Leg attenuation; the bounce wall itself is excluded because the
        // specular point lies on it (segment-endpoint margin).
        let trans = medium.transmission(tx.position(), refl.point)
            * medium.transmission(refl.point, rx.position());
        let pol = (tx.polarization_rad - rx.polarization_rad).cos();
        total += g * (rho * pat * pol * trans);
    }
    total
}

/// Whether a surface can couple `tx` to `rx` given its operation mode and
/// which sides of its plane the endpoints sit on.
pub fn surface_serves(surface: &SurfaceInstance, tx: Vec3, rx: Vec3) -> bool {
    surface
        .mode
        .serves(surface.is_in_front(tx), surface.is_in_front(rx))
}

/// Per-element coefficients of a single-bounce surface path, or `None` when
/// the surface cannot serve this link.
///
/// The channel contribution of the surface is `Σ_e coeffs[e] · r[e]` where
/// `r` is the programmed element response. Per-element distances and
/// incidence/departure angles are exact; wall attenuation is evaluated once
/// against the surface centre.
pub fn surface_coeffs(
    medium: &Medium,
    tx: &Endpoint,
    rx: &Endpoint,
    surface: &SurfaceInstance,
) -> Option<LinearTerm> {
    if !surface_serves(surface, tx.position(), rx.position()) {
        return None;
    }
    let center = surface.pose.position;
    let trans = medium.transmission(tx.position(), center)
        * medium.transmission(center, rx.position());
    if trans < 1e-9 {
        return None; // buried behind walls; contribution negligible
    }
    let ep_gain = tx.amplitude_gain_towards(center) * rx.amplitude_gain_towards(center);
    // Resonance detuning (frequency control) and polarization rotation
    // (polarization control) scale every element of this surface alike.
    let resonance = surface.resonance_factor(medium.band.center_hz);
    if resonance < 1e-6 {
        return None; // far out of resonance: the surface is inert here
    }
    let pol = (tx.polarization_rad + surface.polarization_rot - rx.polarization_rad).cos();
    let ep_gain = ep_gain * resonance * pol;
    let area = surface.element_area_m2();
    let lambda = medium.lambda();
    use surfos_em::antenna::Pattern;

    let coeffs = (0..surface.len())
        .map(|e| {
            let p = surface.element_world_position(e);
            let d1 = tx.position().distance(p);
            let d2 = p.distance(rx.position());
            let th_in = surface.pose.off_boresight_angle(tx.position());
            let th_out = surface.pose.off_boresight_angle(rx.position());
            let elem_pat =
                surface.pattern.amplitude_gain(th_in) * surface.pattern.amplitude_gain(th_out);
            let scatter = surfos_em::propagation::element_scatter_amplitude(
                d1,
                d2,
                lambda,
                area,
                surface.efficiency,
            );
            scatter * (elem_pat * ep_gain * trans)
        })
        .collect();
    Some(LinearTerm {
        surface: usize::MAX, // caller fills in the surface index
        coeffs,
    })
}

/// Coefficients of a two-hop cascade `tx → first → second → rx`, or `None`
/// when either hop is gated off.
///
/// Far-field factorization: the inter-surface hop is taken centre-to-centre
/// (distance `D`), while the outer legs keep exact per-element distances.
/// The cascade contribution is `(α·r_first)(β·r_second)` with the shared
/// `1/(4π·λ·D)` amplitude and `e^{-jkD}` hop phase folded into `α`.
pub fn cascade_coeffs(
    medium: &Medium,
    tx: &Endpoint,
    rx: &Endpoint,
    first: &SurfaceInstance,
    second: &SurfaceInstance,
) -> Option<(Vec<Complex>, Vec<Complex>)> {
    let c1 = first.pose.position;
    let c2 = second.pose.position;
    // Hop gating: first must couple tx → second's side, second must couple
    // first's side → rx.
    if !surface_serves(first, tx.position(), c2) {
        return None;
    }
    if !surface_serves(second, c1, rx.position()) {
        return None;
    }
    let d_hop = c1.distance(c2);
    if d_hop < 1e-3 {
        return None; // overlapping surfaces: not a physical cascade
    }
    let trans = medium.transmission(tx.position(), c1)
        * medium.transmission(c1, c2)
        * medium.transmission(c2, rx.position());
    if trans < 1e-9 {
        return None;
    }
    let lambda = medium.lambda();
    let k = medium.band.wavenumber();
    use surfos_em::antenna::Pattern;

    // α side: tx → element a → (towards second's centre).
    let th_in1 = first.pose.off_boresight_angle(tx.position());
    let th_out1 = first.pose.off_boresight_angle(c2);
    let pat1 = first.pattern.amplitude_gain(th_in1)
        * first.pattern.amplitude_gain(th_out1)
        * first.resonance_factor(medium.band.center_hz);
    let area1 = first.element_area_m2();
    let g_tx = tx.amplitude_gain_towards(c1);
    // Shared factors folded into α: transmission, 1/(4π d1_a D) amplitude
    // with phase e^{-jk(d_tx,a + d_a,c2 - D)} and the hop phase e^{-jkD}.
    let alpha: Vec<Complex> = (0..first.len())
        .map(|a| {
            let p = first.element_world_position(a);
            let d1 = tx.position().distance(p);
            let d_to_c2 = p.distance(c2);
            let mag = area1 * first.efficiency
                / (4.0 * std::f64::consts::PI * d1 * d_hop);
            let phase = -k * (d1 + d_to_c2 - d_hop) - k * d_hop;
            Complex::from_polar(mag, phase) * (pat1 * g_tx * trans)
        })
        .collect();

    // β side: (from first's centre) → element b → rx. The incident field is
    // already amplitude; the element operator is A·eff/(λ·d2_b).
    let th_in2 = second.pose.off_boresight_angle(c1);
    let th_out2 = second.pose.off_boresight_angle(rx.position());
    let pat2 = second.pattern.amplitude_gain(th_in2)
        * second.pattern.amplitude_gain(th_out2)
        * second.resonance_factor(medium.band.center_hz)
        * (tx.polarization_rad + first.polarization_rot + second.polarization_rot
            - rx.polarization_rad)
            .cos();
    let area2 = second.element_area_m2();
    let g_rx = rx.amplitude_gain_towards(c2);
    let beta: Vec<Complex> = (0..second.len())
        .map(|b| {
            let p = second.element_world_position(b);
            let d_from_c1 = c1.distance(p);
            let d2 = p.distance(rx.position());
            let mag = area2 * second.efficiency / (lambda * d2);
            let phase = -k * (d_from_c1 - d_hop + d2);
            Complex::from_polar(mag, phase) * (pat2 * g_rx)
        })
        .collect();

    if alpha.iter().all(|c| c.abs() < 1e-15) || beta.iter().all(|c| c.abs() < 1e-15) {
        return None; // pattern-gated to nothing (e.g. endpoint behind)
    }
    Some((alpha, beta))
}

/// Builds the bilinear term for an ordered surface pair, with indices.
pub fn cascade_term(
    medium: &Medium,
    tx: &Endpoint,
    rx: &Endpoint,
    surfaces: &[SurfaceInstance],
    first_idx: usize,
    second_idx: usize,
) -> Option<BilinearTerm> {
    let (alpha, beta) =
        cascade_coeffs(medium, tx, rx, &surfaces[first_idx], &surfaces[second_idx])?;
    Some(BilinearTerm {
        first: first_idx,
        alpha,
        second: second_idx,
        beta,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::surface::OperationMode;
    use surfos_em::array::ArrayGeometry;
    use surfos_em::band::NamedBand;
    use surfos_geometry::{Material, Pose, Wall};

    fn medium_free(plan: &FloorPlan) -> Medium<'_> {
        Medium {
            plan,
            blockers: &[],
            obstructions: &[],
            band: NamedBand::MmWave28GHz.band(),
        }
    }

    fn iso_endpoint(id: &str, pos: Vec3) -> Endpoint {
        let mut e = Endpoint::client(id, pos);
        e.pattern = surfos_em::antenna::ElementPattern::Isotropic;
        e
    }

    #[test]
    fn direct_gain_is_friis_in_free_space() {
        let plan = FloorPlan::new();
        let m = medium_free(&plan);
        let tx = iso_endpoint("tx", Vec3::new(0.0, 0.0, 1.0));
        let rx = iso_endpoint("rx", Vec3::new(5.0, 0.0, 1.0));
        let g = direct_gain(&m, &tx, &rx);
        let want = friis_amplitude(5.0, m.lambda());
        assert!((g - want).abs() < 1e-15);
    }

    #[test]
    fn direct_gain_attenuated_by_wall() {
        let mut plan = FloorPlan::new();
        plan.add_wall(Wall::new(
            Vec3::xy(2.5, -1.0),
            Vec3::xy(2.5, 1.0),
            3.0,
            Material::Concrete,
        ));
        let m = medium_free(&plan);
        let tx = iso_endpoint("tx", Vec3::new(0.0, 0.0, 1.0));
        let rx = iso_endpoint("rx", Vec3::new(5.0, 0.0, 1.0));
        let g = direct_gain(&m, &tx, &rx).abs();
        let clear = friis_amplitude(5.0, m.lambda()).abs();
        let expect = clear
            * Material::Concrete.transmission_amplitude(&m.band);
        assert!((g - expect).abs() < 1e-15);
        assert!(g < clear / 100.0);
    }

    #[test]
    fn colocated_endpoints_dead() {
        let plan = FloorPlan::new();
        let m = medium_free(&plan);
        let tx = iso_endpoint("tx", Vec3::new(1.0, 1.0, 1.0));
        let rx = iso_endpoint("rx", Vec3::new(1.0, 1.0, 1.0));
        assert_eq!(direct_gain(&m, &tx, &rx), Complex::ZERO);
    }

    #[test]
    fn wall_bounce_exists_and_weaker_than_direct() {
        let mut plan = FloorPlan::new();
        plan.add_wall(Wall::new(
            Vec3::xy(0.0, 3.0),
            Vec3::xy(10.0, 3.0),
            3.0,
            Material::Concrete,
        ));
        let m = medium_free(&plan);
        let tx = iso_endpoint("tx", Vec3::new(2.0, 0.0, 1.0));
        let rx = iso_endpoint("rx", Vec3::new(8.0, 0.0, 1.0));
        let bounce = wall_bounce_gain(&m, &tx, &rx).abs();
        let direct = direct_gain(&m, &tx, &rx).abs();
        assert!(bounce > 0.0);
        assert!(bounce < direct);
    }

    #[test]
    fn no_walls_no_bounce() {
        let plan = FloorPlan::new();
        let m = medium_free(&plan);
        let tx = iso_endpoint("tx", Vec3::new(2.0, 0.0, 1.0));
        let rx = iso_endpoint("rx", Vec3::new(8.0, 0.0, 1.0));
        assert_eq!(wall_bounce_gain(&m, &tx, &rx), Complex::ZERO);
    }

    fn test_surface(pos: Vec3, facing: Vec3, n: usize, mode: OperationMode) -> SurfaceInstance {
        let band = NamedBand::MmWave28GHz.band();
        let geom = ArrayGeometry::half_wavelength(n, n, band.wavelength_m());
        SurfaceInstance::new("s", Pose::wall_mounted(pos, facing), geom, mode)
    }

    #[test]
    fn reflective_surface_gates_sides() {
        let plan = FloorPlan::new();
        let m = medium_free(&plan);
        let s = test_surface(Vec3::new(0.0, 0.0, 1.5), Vec3::X, 8, OperationMode::Reflective);
        let front_a = iso_endpoint("a", Vec3::new(3.0, 1.0, 1.5));
        let front_b = iso_endpoint("b", Vec3::new(3.0, -1.0, 1.5));
        let behind = iso_endpoint("c", Vec3::new(-3.0, 0.0, 1.5));
        assert!(surface_coeffs(&m, &front_a, &front_b, &s).is_some());
        assert!(surface_coeffs(&m, &front_a, &behind, &s).is_none());
    }

    #[test]
    fn transmissive_surface_gates_sides() {
        let plan = FloorPlan::new();
        let m = medium_free(&plan);
        let s = test_surface(
            Vec3::new(0.0, 0.0, 1.5),
            Vec3::X,
            8,
            OperationMode::Transmissive,
        );
        let front = iso_endpoint("a", Vec3::new(3.0, 1.0, 1.5));
        let back = iso_endpoint("c", Vec3::new(-3.0, 0.0, 1.5));
        assert!(surface_coeffs(&m, &front, &back, &s).is_some());
        let front_b = iso_endpoint("b", Vec3::new(3.0, -1.0, 1.5));
        assert!(surface_coeffs(&m, &front, &front_b, &s).is_none());
    }

    #[test]
    fn focused_surface_beats_unfocused() {
        // Program conjugate phases and check coherent combining.
        let plan = FloorPlan::new();
        let m = medium_free(&plan);
        let mut s = test_surface(Vec3::new(0.0, 0.0, 1.5), Vec3::X, 16, OperationMode::Reflective);
        // Receiver far from the specular direction of the transmitter in
        // both aperture axes (different bearing *and* height), so the
        // identity (mirror) response cannot combine coherently.
        let tx = iso_endpoint("tx", Vec3::new(1.0, 2.5, 1.5));
        let rx = iso_endpoint("rx", Vec3::new(2.0, -0.5, 0.5));
        let term = surface_coeffs(&m, &tx, &rx, &s).expect("serves");

        // Unfocused: identity response.
        let ident: Complex = term.coeffs.iter().copied().sum();

        // Focused: cancel each coefficient's phase.
        let focused: f64 = term.coeffs.iter().map(|c| c.abs()).sum();
        s.set_phases(
            &term
                .coeffs
                .iter()
                .map(|c| -c.arg())
                .collect::<Vec<_>>(),
        );
        let check: Complex = term
            .coeffs
            .iter()
            .zip(s.response())
            .map(|(c, r)| *c * *r)
            .sum();
        assert!((check.abs() - focused).abs() < 1e-12);
        assert!(focused > ident.abs());
        // With 256 elements the coherent gain must clearly beat the
        // incoherent identity sum.
        assert!(
            focused > 5.0 * ident.abs() || ident.abs() < 1e-12,
            "focused={focused:.3e} ident={:.3e}",
            ident.abs()
        );
    }

    #[test]
    fn surface_behind_thick_wall_pruned() {
        let mut plan = FloorPlan::new();
        // Two concrete walls between tx and the surface: ~160 dB, pruned.
        for x in [1.0, 1.5] {
            plan.add_wall(Wall::new(
                Vec3::xy(x, -5.0),
                Vec3::xy(x, 5.0),
                3.0,
                Material::Metal,
            ));
        }
        let m = medium_free(&plan);
        let s = test_surface(Vec3::new(3.0, 0.0, 1.5), -Vec3::X, 8, OperationMode::Reflective);
        let tx = iso_endpoint("tx", Vec3::new(0.0, 1.0, 1.5));
        let rx = iso_endpoint("rx", Vec3::new(0.0, -1.0, 1.5));
        assert!(surface_coeffs(&m, &tx, &rx, &s).is_none());
    }

    #[test]
    fn polarization_mismatch_kills_direct_link() {
        let plan = FloorPlan::new();
        let m = medium_free(&plan);
        let tx = iso_endpoint("tx", Vec3::new(0.0, 0.0, 1.0));
        let mut rx = iso_endpoint("rx", Vec3::new(5.0, 0.0, 1.0));
        let matched = direct_gain(&m, &tx, &rx).abs();
        rx.polarization_rad = std::f64::consts::FRAC_PI_2; // cross-pol
        let crossed = direct_gain(&m, &tx, &rx).abs();
        assert!(crossed < 1e-12 * (1.0 + matched), "cross-pol must null");
        rx.polarization_rad = std::f64::consts::FRAC_PI_4;
        let diag = direct_gain(&m, &tx, &rx).abs();
        assert!((diag / matched - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-9);
    }

    #[test]
    fn polarization_rotating_surface_revives_crossed_link() {
        // The LLAMA use case: a cross-polarized link is dead directly, but
        // a surface that rotates polarization by 90° restores coupling.
        let plan = FloorPlan::new();
        let m = medium_free(&plan);
        let mut s = test_surface(Vec3::new(0.0, 0.0, 1.5), Vec3::X, 8, OperationMode::Reflective);
        let tx = iso_endpoint("tx", Vec3::new(3.0, 2.0, 1.5));
        let mut rx = iso_endpoint("rx", Vec3::new(3.0, -2.0, 1.5));
        rx.polarization_rad = std::f64::consts::FRAC_PI_2;

        // Without rotation, the surface path is cross-polarized too.
        let dead = surface_coeffs(&m, &tx, &rx, &s)
            .map(|t| t.coeffs.iter().map(|c| c.abs()).sum::<f64>())
            .unwrap_or(0.0);
        assert!(dead < 1e-12, "unrotated surface can't couple: {dead}");

        s.polarization_rot = std::f64::consts::FRAC_PI_2;
        let revived = surface_coeffs(&m, &tx, &rx, &s)
            .map(|t| t.coeffs.iter().map(|c| c.abs()).sum::<f64>())
            .unwrap_or(0.0);
        assert!(revived > 1e-9, "rotating surface must couple: {revived}");
    }

    #[test]
    fn resonance_detuning_weakens_surface() {
        // A Scrolls-style resonant surface: strong at its centre, weak
        // detuned, and re-tunable.
        let plan = FloorPlan::new();
        let m = medium_free(&plan); // 28 GHz
        let s_resonant = test_surface(Vec3::new(0.0, 0.0, 1.5), Vec3::X, 8, OperationMode::Reflective)
            .with_resonance(28.0e9, 0.1);
        let s_detuned = test_surface(Vec3::new(0.0, 0.0, 1.5), Vec3::X, 8, OperationMode::Reflective)
            .with_resonance(5.25e9, 0.1);
        let tx = iso_endpoint("tx", Vec3::new(3.0, 2.0, 1.5));
        let rx = iso_endpoint("rx", Vec3::new(3.0, -2.0, 1.5));
        let strong: f64 = surface_coeffs(&m, &tx, &rx, &s_resonant)
            .unwrap()
            .coeffs
            .iter()
            .map(|c| c.abs())
            .sum();
        // Far off resonance the surface is pruned entirely or negligible.
        let weak: f64 = surface_coeffs(&m, &tx, &rx, &s_detuned)
            .map(|t| t.coeffs.iter().map(|c| c.abs()).sum())
            .unwrap_or(0.0);
        assert!(weak < strong / 100.0, "strong={strong:.3e} weak={weak:.3e}");
    }

    #[test]
    fn cascade_exists_for_relay_geometry() {
        let plan = FloorPlan::new();
        let m = medium_free(&plan);
        // tx — s1 bounces to s2 — rx, all in front of the right faces.
        let s1 = test_surface(Vec3::new(0.0, 0.0, 1.5), Vec3::X, 8, OperationMode::Reflective);
        let s2 = test_surface(Vec3::new(6.0, 0.0, 1.5), -Vec3::X, 8, OperationMode::Reflective);
        let tx = iso_endpoint("tx", Vec3::new(2.0, 2.0, 1.5));
        let rx = iso_endpoint("rx", Vec3::new(4.0, -2.0, 1.5));
        let (alpha, beta) = cascade_coeffs(&m, &tx, &rx, &s1, &s2).expect("cascade");
        assert_eq!(alpha.len(), 64);
        assert_eq!(beta.len(), 64);
        assert!(alpha.iter().any(|c| c.abs() > 0.0));
    }

    #[test]
    fn cascade_gated_when_second_cannot_reach_rx() {
        let plan = FloorPlan::new();
        let m = medium_free(&plan);
        let s1 = test_surface(Vec3::new(0.0, 0.0, 1.5), Vec3::X, 4, OperationMode::Reflective);
        let s2 = test_surface(Vec3::new(6.0, 0.0, 1.5), -Vec3::X, 4, OperationMode::Reflective);
        let tx = iso_endpoint("tx", Vec3::new(2.0, 2.0, 1.5));
        let rx_behind_s2 = iso_endpoint("rx", Vec3::new(9.0, 0.0, 1.5));
        assert!(cascade_coeffs(&m, &tx, &rx_behind_s2, &s1, &s2).is_none());
    }

    #[test]
    fn cascade_weaker_than_single_bounce() {
        // Physical sanity: a two-hop path through two small surfaces is far
        // weaker (per unit response) than one bounce off the first.
        let plan = FloorPlan::new();
        let m = medium_free(&plan);
        let s1 = test_surface(Vec3::new(0.0, 0.0, 1.5), Vec3::X, 8, OperationMode::Reflective);
        let s2 = test_surface(Vec3::new(6.0, 0.0, 1.5), -Vec3::X, 8, OperationMode::Reflective);
        let tx = iso_endpoint("tx", Vec3::new(2.0, 2.0, 1.5));
        let rx = iso_endpoint("rx", Vec3::new(4.0, -2.0, 1.5));
        let single = surface_coeffs(&m, &tx, &rx, &s1).unwrap();
        let best_single: f64 = single.coeffs.iter().map(|c| c.abs()).sum();
        let (alpha, beta) = cascade_coeffs(&m, &tx, &rx, &s1, &s2).unwrap();
        let best_cascade: f64 =
            alpha.iter().map(|c| c.abs()).sum::<f64>() * beta.iter().map(|c| c.abs()).sum::<f64>();
        assert!(best_cascade < best_single);
    }
}
