//! Path tracing: enumerating propagation mechanisms into band-independent
//! geometric records, plus the reference per-band gain functions.
//!
//! Enumeration (`trace_*`) walks the environment once and captures each
//! path's geometry as a [`trace`](crate::trace) record; evaluation re-phases
//! those records at any band. The classic gain functions (`direct_gain`,
//! `wall_bounce_gain`, …) are thin wrappers — trace then evaluate at the
//! medium's own band — so there is exactly one implementation of the path
//! math.
//!
//! Every gain is an *amplitude* (field) gain including antenna pattern
//! factors, so `|h|²` is the power ratio between conducted transmit power
//! and received power.

use crate::dynamics::Blocker;
use crate::endpoint::Endpoint;
use crate::index::SceneIndex;
use crate::linear::{BilinearTerm, LinearTerm};
use crate::surface::SurfaceInstance;
use crate::trace::{
    BounceTrace, CascadeTrace, ChannelTrace, DirectTrace, ElementLeg, SegmentTrace, SurfaceTrace,
};
use surfos_em::band::Band;
use surfos_em::complex::Complex;
use surfos_geometry::bvh::Aabb;
use surfos_geometry::reflect::specular_reflection;
use surfos_geometry::{FloorPlan, Vec3};

/// Padding for the aperture boxes [`Medium::new`] computes itself (the
/// indexed constructor reuses the scene index's, padded identically).
const APERTURE_AABB_PAD: f64 = 2e-3;

/// The propagation medium: static walls plus dynamic blockers, at one band.
///
/// Bundles everything path tracing needs to attenuate a ray segment. Build
/// it with [`Medium::new`] (brute scans — the reference the property tests
/// compare against) or [`Medium::with_index`] (conservative BVH/AABB culling
/// through a [`SceneIndex`]; bit-identical results). Both constructors
/// pre-filter the deployed surfaces down to the (usually empty) obstructing
/// subset and attach a padded aperture box to each, so per-segment scans
/// touch neither transparent surfaces nor far-away opaque ones.
#[derive(Debug, Clone)]
pub struct Medium<'a> {
    /// The static environment.
    pub plan: &'a FloorPlan,
    /// Dynamic obstructions (people, moved furniture).
    pub blockers: &'a [Blocker],
    /// The carrier band.
    pub band: Band,
    /// Deployed surfaces with `obstruction_amplitude < 1.0`, whose apertures
    /// attenuate *other* signals crossing them (off-band interaction, §2.1),
    /// each with a padded world box for a cheap conservative miss test. A
    /// surface never blocks its own scatter legs: those terminate on its
    /// plane. Kept in deployment order.
    obstructing: Vec<(&'a SurfaceInstance, Aabb)>,
    /// The scene's spatial index, when tracing through one.
    index: Option<&'a SceneIndex>,
}

impl<'a> Medium<'a> {
    /// Creates a medium, pre-filtering `surfaces` to the obstructing subset
    /// (each with a precomputed aperture box). All wall and blocker queries
    /// scan every primitive — this is the brute-force reference.
    pub fn new(
        plan: &'a FloorPlan,
        blockers: &'a [Blocker],
        surfaces: &'a [SurfaceInstance],
        band: Band,
    ) -> Self {
        Medium {
            plan,
            blockers,
            band,
            obstructing: surfaces
                .iter()
                .filter(|s| s.obstruction_amplitude < 1.0)
                .map(|s| (s, s.aperture_aabb().grown(APERTURE_AABB_PAD)))
                .collect(),
            index: None,
        }
    }

    /// Creates a medium that answers wall/blocker/surface queries through a
    /// [`SceneIndex`] built for exactly this `(plan, blockers, surfaces)`
    /// triple. Culling is conservative, so every answer is bit-identical to
    /// [`Medium::new`]'s.
    pub fn with_index(
        plan: &'a FloorPlan,
        blockers: &'a [Blocker],
        surfaces: &'a [SurfaceInstance],
        band: Band,
        index: &'a SceneIndex,
    ) -> Self {
        Medium {
            plan,
            blockers,
            band,
            obstructing: index
                .obstructing()
                .iter()
                .map(|&(i, aabb)| (&surfaces[i], aabb))
                .collect(),
            index: Some(index),
        }
    }

    /// Amplitude transmission factor along a segment:
    /// walls × blockers × crossing surfaces.
    pub fn transmission(&self, from: Vec3, to: Vec3) -> f64 {
        let walls = match self.index {
            Some(ix) => self
                .plan
                .transmission_amplitude_with(ix.walls(), from, to, &self.band),
            None => self.plan.transmission_amplitude(from, to, &self.band),
        };
        // The interval bank narrows the scan to a conservative candidate
        // superset; each survivor re-runs the exact box test, and skipping
        // an AABB-missed blocker drops an exact ×1.0 factor — so the
        // product is unchanged bit for bit (candidates arrive in blocker
        // order, preserving multiplication order too).
        let blockers: f64 = match self.index {
            Some(ix) => {
                let mut product = 1.0;
                ix.blocker_bank().for_each_candidate(from, to, |i| {
                    if ix.blocker_boxes()[i].intersects_segment(from, to) {
                        product *= self.blockers[i].transmission_amplitude(from, to, &self.band);
                    }
                });
                product
            }
            None => self
                .blockers
                .iter()
                .map(|b| b.transmission_amplitude(from, to, &self.band))
                .product(),
        };
        let surfaces = self.surface_obstruction(from, to);
        walls * blockers * surfaces
    }

    /// Amplitude factor of the obstructing apertures crossing the segment.
    /// With an index, the scan runs through the aperture interval bank
    /// (conservative candidates, exact survivor tests, deployment order) —
    /// bit-identical to the brute filter.
    fn surface_obstruction(&self, from: Vec3, to: Vec3) -> f64 {
        match self.index {
            Some(ix) => {
                let mut product = 1.0;
                ix.aperture_bank().for_each_candidate(from, to, |i| {
                    let (s, aabb) = &self.obstructing[i];
                    if aabb.intersects_segment(from, to) && s.intersects_segment(from, to) {
                        product *= s.obstruction_amplitude;
                    }
                });
                product
            }
            None => self
                .obstructing
                .iter()
                .filter(|(s, aabb)| {
                    aabb.intersects_segment(from, to) && s.intersects_segment(from, to)
                })
                .map(|(s, _)| s.obstruction_amplitude)
                .product(),
        }
    }

    /// The blocker materials crossing the segment, in blocker order. With
    /// an index, candidates come from the blocker interval bank; exact box
    /// and cylinder tests gate each survivor, so the collected list is
    /// bit-identical to the brute filter.
    fn blocker_crossings(&self, from: Vec3, to: Vec3) -> Vec<surfos_geometry::Material> {
        match self.index {
            Some(ix) => {
                let mut out = Vec::new();
                ix.blocker_bank().for_each_candidate(from, to, |i| {
                    let b = &self.blockers[i];
                    if ix.blocker_boxes()[i].intersects_segment(from, to) && b.intersects(from, to)
                    {
                        out.push(b.material);
                    }
                });
                out
            }
            None => self
                .blockers
                .iter()
                .filter(|b| b.intersects(from, to))
                .map(|b| b.material)
                .collect(),
        }
    }

    /// Enumerates a segment's obstructions into a band-independent record;
    /// [`SegmentTrace::transmission`] reproduces [`Self::transmission`] at
    /// any band.
    pub fn trace_segment(&self, from: Vec3, to: Vec3) -> SegmentTrace {
        let wall_materials = match self.index {
            Some(ix) => self.plan.crossings_with(ix.walls(), from, to),
            None => self.plan.crossings(from, to),
        }
        .into_iter()
        .map(|(_, m)| m)
        .collect();
        let blocker_materials = self.blocker_crossings(from, to);
        let surface_obstruction = self.surface_obstruction(from, to);
        SegmentTrace::new(
            from,
            to,
            wall_materials,
            blocker_materials,
            surface_obstruction,
        )
    }

    /// Batched [`Self::trace_segment`]: traces many segments in one call so
    /// the wall query runs through the BVH in SIMD packets
    /// ([`FloorPlan::crossings_batch`]) instead of one traversal per
    /// segment. Results are bit-identical to calling
    /// [`Self::trace_segment`] on each segment in order — the packet slab
    /// test is conservative and every candidate still goes through the
    /// exact scalar wall intersection.
    ///
    /// Without an index this degrades to the per-segment brute scan, which
    /// doubles as the reference arm the equivalence tests compare against.
    pub fn trace_segments(&self, segments: &[(Vec3, Vec3)]) -> Vec<SegmentTrace> {
        let Some(ix) = self.index else {
            return segments
                .iter()
                .map(|&(from, to)| self.trace_segment(from, to))
                .collect();
        };
        let wall_crossings = self.plan.crossings_batch(ix.walls(), segments);
        segments
            .iter()
            .zip(wall_crossings)
            .map(|(&(from, to), crossings)| {
                let wall_materials = crossings.into_iter().map(|(_, m)| m).collect();
                let blocker_materials = self.blocker_crossings(from, to);
                let surface_obstruction = self.surface_obstruction(from, to);
                SegmentTrace::new(
                    from,
                    to,
                    wall_materials,
                    blocker_materials,
                    surface_obstruction,
                )
            })
            .collect()
    }

    /// The cached world positions of surface `index`'s elements, when
    /// tracing through a scene index that still matches the surface.
    fn cached_elements(&self, index: usize, surface: &SurfaceInstance) -> Option<&'a [Vec3]> {
        self.index?.element_positions(index, surface)
    }

    /// Carrier wavelength shorthand.
    #[inline]
    pub fn lambda(&self) -> f64 {
        self.band.wavelength_m()
    }
}

/// Enumerates the direct path, or `None` for co-located endpoints (a dead
/// link rather than a singularity).
pub fn trace_direct(medium: &Medium, tx: &Endpoint, rx: &Endpoint) -> Option<DirectTrace> {
    let d = tx.position().distance(rx.position());
    if d < 1e-6 {
        return None;
    }
    let pat = tx.amplitude_gain_towards(rx.position()) * rx.amplitude_gain_towards(tx.position());
    let pol = (tx.polarization_rad - rx.polarization_rad).cos();
    Some(DirectTrace {
        d,
        pat_pol: pat * pol,
        segment: medium.trace_segment(tx.position(), rx.position()),
    })
}

/// Gain of the direct (possibly wall-penetrating) path.
pub fn direct_gain(medium: &Medium, tx: &Endpoint, rx: &Endpoint) -> Complex {
    match trace_direct(medium, tx, rx) {
        Some(t) => t.gain_at(&medium.band),
        None => Complex::ZERO,
    }
}

/// Enumerates all first-order specular wall reflections (image method),
/// in wall order.
pub fn trace_wall_bounces(medium: &Medium, tx: &Endpoint, rx: &Endpoint) -> Vec<BounceTrace> {
    // Pass 1: pure geometry — collect accepted specular reflections in
    // wall order.
    // With a scene index, a conservative SIMD prefilter
    // ([`WallIndex::specular_candidates`]) narrows the scan to walls whose
    // f32 uncertainty interval touches the acceptance window; survivors
    // run the exact test in ascending wall order, so the accepted list is
    // identical to the brute scan's. Without an index, scan every wall.
    let walls = medium.plan.walls();
    let accepted: Vec<_> = match medium.index {
        Some(ix) => ix
            .walls()
            .specular_candidates(tx.position(), rx.position())
            .into_iter()
            .filter_map(|i| {
                let wall = &walls[i];
                specular_reflection(tx.position(), rx.position(), wall).map(|refl| (wall, refl))
            })
            .collect(),
        None => walls
            .iter()
            .filter_map(|wall| {
                specular_reflection(tx.position(), rx.position(), wall).map(|refl| (wall, refl))
            })
            .collect(),
    };
    // Pass 2: leg attenuation, batched as two coherent fans (tx → every
    // specular point, then every specular point → rx) so packet traversal
    // shares BVH nodes across lanes. The bounce wall itself is excluded
    // because the specular point lies on it (segment-endpoint margin).
    let mut segments = Vec::with_capacity(accepted.len() * 2);
    segments.extend(accepted.iter().map(|(_, refl)| (tx.position(), refl.point)));
    segments.extend(accepted.iter().map(|(_, refl)| (refl.point, rx.position())));
    let mut seg_in = medium.trace_segments(&segments);
    let seg_out = seg_in.split_off(accepted.len());
    let pol = (tx.polarization_rad - rx.polarization_rad).cos();
    accepted
        .into_iter()
        .zip(seg_in)
        .zip(seg_out)
        .map(|(((wall, refl), seg_in), seg_out)| BounceTrace {
            total_length: refl.total_length(),
            material: wall.material,
            pat: tx.amplitude_gain_towards(refl.point) * rx.amplitude_gain_towards(refl.point),
            pol,
            seg_in,
            seg_out,
        })
        .collect()
}

/// Summed gain of all first-order specular wall reflections.
///
/// The reflected amplitude decays over the unfolded path length `d1 + d2`,
/// scaled by the wall material's reflection coefficient. Each leg is
/// additionally attenuated by any *other* walls it crosses.
pub fn wall_bounce_gain(medium: &Medium, tx: &Endpoint, rx: &Endpoint) -> Complex {
    let mut total = Complex::ZERO;
    for bounce in trace_wall_bounces(medium, tx, rx) {
        total += bounce.gain_at(&medium.band);
    }
    total
}

/// Whether a surface can couple `tx` to `rx` given its operation mode and
/// which sides of its plane the endpoints sit on.
pub fn surface_serves(surface: &SurfaceInstance, tx: Vec3, rx: Vec3) -> bool {
    surface
        .mode
        .serves(surface.is_in_front(tx), surface.is_in_front(rx))
}

/// Enumerates a single-bounce surface path, or `None` when the surface
/// cannot serve this link geometrically. Band-dependent pruning (wall
/// burial, resonance detuning) happens at evaluation, not here — a path
/// negligible at one band may matter at another.
///
/// Per-element distances are exact; incidence/departure angles and wall
/// attenuation are evaluated once against the surface centre.
pub fn trace_surface(
    medium: &Medium,
    tx: &Endpoint,
    rx: &Endpoint,
    surface: &SurfaceInstance,
    index: usize,
) -> Option<SurfaceTrace> {
    if !surface_serves(surface, tx.position(), rx.position()) {
        return None;
    }
    let center = surface.pose.position;
    let ep_gain = tx.amplitude_gain_towards(center) * rx.amplitude_gain_towards(center);
    let pol = (tx.polarization_rad + surface.polarization_rot - rx.polarization_rad).cos();
    use surfos_em::antenna::Pattern;
    let th_in = surface.pose.off_boresight_angle(tx.position());
    let th_out = surface.pose.off_boresight_angle(rx.position());
    let elem_pat = surface.pattern.amplitude_gain(th_in) * surface.pattern.amplitude_gain(th_out);
    let leg = |p: Vec3| ElementLeg {
        d1: tx.position().distance(p),
        d2: p.distance(rx.position()),
    };
    let legs = match medium.cached_elements(index, surface) {
        Some(ps) => ps.iter().map(|&p| leg(p)).collect(),
        None => (0..surface.len())
            .map(|e| leg(surface.element_world_position(e)))
            .collect(),
    };
    // Both legs share one packet traversal; bit-identical to two scalar
    // traces.
    let mut legs2 = medium.trace_segments(&[(tx.position(), center), (center, rx.position())]);
    let seg_out = legs2.pop().expect("two segments traced");
    let seg_in = legs2.pop().expect("two segments traced");
    Some(SurfaceTrace {
        surface: index,
        seg_in,
        seg_out,
        ep_gain,
        pol,
        resonance: surface.resonance,
        area: surface.element_area_m2(),
        efficiency: surface.efficiency,
        elem_pat,
        legs,
    })
}

/// Per-element coefficients of a single-bounce surface path, or `None` when
/// the surface cannot serve this link (geometrically or at this band).
///
/// The channel contribution of the surface is `Σ_e coeffs[e] · r[e]` where
/// `r` is the programmed element response.
pub fn surface_coeffs(
    medium: &Medium,
    tx: &Endpoint,
    rx: &Endpoint,
    surface: &SurfaceInstance,
) -> Option<LinearTerm> {
    // usize::MAX marks "caller fills in the surface index".
    trace_surface(medium, tx, rx, surface, usize::MAX)?.linear_term_at(&medium.band)
}

/// Enumerates a two-hop cascade `tx → first → second → rx`, or `None` when
/// a geometric gate (serving sides, overlapping surfaces) fails.
///
/// Far-field factorization: the inter-surface hop is taken centre-to-centre
/// (distance `D`), while the outer legs keep exact per-element distances.
/// The cascade contribution is `(α·r_first)(β·r_second)` with the shared
/// `1/(4π·λ·D)` amplitude and `e^{-jkD}` hop phase folded into `α`.
pub fn trace_cascade(
    medium: &Medium,
    tx: &Endpoint,
    rx: &Endpoint,
    first: &SurfaceInstance,
    second: &SurfaceInstance,
    first_idx: usize,
    second_idx: usize,
) -> Option<CascadeTrace> {
    let c1 = first.pose.position;
    let c2 = second.pose.position;
    // Hop gating: first must couple tx → second's side, second must couple
    // first's side → rx.
    if !surface_serves(first, tx.position(), c2) {
        return None;
    }
    if !surface_serves(second, c1, rx.position()) {
        return None;
    }
    let d_hop = c1.distance(c2);
    if d_hop < 1e-3 {
        return None; // overlapping surfaces: not a physical cascade
    }
    use surfos_em::antenna::Pattern;

    // α side: tx → element a → (towards second's centre).
    let th_in1 = first.pose.off_boresight_angle(tx.position());
    let th_out1 = first.pose.off_boresight_angle(c2);
    let pat1 = first.pattern.amplitude_gain(th_in1) * first.pattern.amplitude_gain(th_out1);
    let alpha_leg = |p: Vec3| ElementLeg {
        d1: tx.position().distance(p),
        d2: p.distance(c2),
    };
    let alpha_legs = match medium.cached_elements(first_idx, first) {
        Some(ps) => ps.iter().map(|&p| alpha_leg(p)).collect(),
        None => (0..first.len())
            .map(|a| alpha_leg(first.element_world_position(a)))
            .collect(),
    };

    // β side: (from first's centre) → element b → rx.
    let th_in2 = second.pose.off_boresight_angle(c1);
    let th_out2 = second.pose.off_boresight_angle(rx.position());
    let pat2 = second.pattern.amplitude_gain(th_in2) * second.pattern.amplitude_gain(th_out2);
    let pol = (tx.polarization_rad + first.polarization_rot + second.polarization_rot
        - rx.polarization_rad)
        .cos();
    let beta_leg = |p: Vec3| ElementLeg {
        d1: c1.distance(p),
        d2: p.distance(rx.position()),
    };
    let beta_legs = match medium.cached_elements(second_idx, second) {
        Some(ps) => ps.iter().map(|&p| beta_leg(p)).collect(),
        None => (0..second.len())
            .map(|b| beta_leg(second.element_world_position(b)))
            .collect(),
    };

    // All three legs share one packet traversal; bit-identical to three
    // scalar traces.
    let mut legs3 = medium.trace_segments(&[(tx.position(), c1), (c1, c2), (c2, rx.position())]);
    let seg_out = legs3.pop().expect("three segments traced");
    let seg_hop = legs3.pop().expect("three segments traced");
    let seg_in = legs3.pop().expect("three segments traced");
    Some(CascadeTrace {
        first: first_idx,
        second: second_idx,
        seg_in,
        seg_hop,
        seg_out,
        d_hop,
        pat1,
        res1: first.resonance,
        area_eff1: first.element_area_m2() * first.efficiency,
        g_tx: tx.amplitude_gain_towards(c1),
        alpha_legs,
        pat2,
        res2: second.resonance,
        pol,
        area_eff2: second.element_area_m2() * second.efficiency,
        g_rx: rx.amplitude_gain_towards(c2),
        beta_legs,
    })
}

/// Coefficients of a two-hop cascade `tx → first → second → rx`, or `None`
/// when either hop is gated off.
pub fn cascade_coeffs(
    medium: &Medium,
    tx: &Endpoint,
    rx: &Endpoint,
    first: &SurfaceInstance,
    second: &SurfaceInstance,
) -> Option<(Vec<Complex>, Vec<Complex>)> {
    trace_cascade(medium, tx, rx, first, second, usize::MAX, usize::MAX)?.coeffs_at(&medium.band)
}

/// Builds the bilinear term for an ordered surface pair, with indices.
pub fn cascade_term(
    medium: &Medium,
    tx: &Endpoint,
    rx: &Endpoint,
    surfaces: &[SurfaceInstance],
    first_idx: usize,
    second_idx: usize,
) -> Option<BilinearTerm> {
    trace_cascade(
        medium,
        tx,
        rx,
        &surfaces[first_idx],
        &surfaces[second_idx],
        first_idx,
        second_idx,
    )?
    .term_at(&medium.band)
}

/// Enumerates every path of a link into one band-independent record.
/// `wall_reflections` / `cascades` mirror the simulator's enable flags.
pub fn trace_channel(
    medium: &Medium,
    tx: &Endpoint,
    rx: &Endpoint,
    surfaces: &[SurfaceInstance],
    wall_reflections: bool,
    cascades: bool,
) -> ChannelTrace {
    let direct = trace_direct(medium, tx, rx);
    let bounces = wall_reflections.then(|| trace_wall_bounces(medium, tx, rx));
    let surface_traces = surfaces
        .iter()
        .enumerate()
        .filter_map(|(i, s)| trace_surface(medium, tx, rx, s, i))
        .collect();
    let cascade_traces = cascades.then(|| {
        let mut out = Vec::new();
        for i in 0..surfaces.len() {
            for j in 0..surfaces.len() {
                if i == j {
                    continue;
                }
                if let Some(t) = trace_cascade(medium, tx, rx, &surfaces[i], &surfaces[j], i, j) {
                    out.push(t);
                }
            }
        }
        out
    });
    ChannelTrace {
        direct,
        bounces,
        surfaces: surface_traces,
        cascades: cascade_traces,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::surface::OperationMode;
    use surfos_em::array::ArrayGeometry;
    use surfos_em::band::NamedBand;
    use surfos_em::propagation::friis_amplitude;
    use surfos_geometry::{Material, Pose, Wall};

    fn medium_free(plan: &FloorPlan) -> Medium<'_> {
        Medium::new(plan, &[], &[], NamedBand::MmWave28GHz.band())
    }

    fn iso_endpoint(id: &str, pos: Vec3) -> Endpoint {
        let mut e = Endpoint::client(id, pos);
        e.pattern = surfos_em::antenna::ElementPattern::Isotropic;
        e
    }

    #[test]
    fn direct_gain_is_friis_in_free_space() {
        let plan = FloorPlan::new();
        let m = medium_free(&plan);
        let tx = iso_endpoint("tx", Vec3::new(0.0, 0.0, 1.0));
        let rx = iso_endpoint("rx", Vec3::new(5.0, 0.0, 1.0));
        let g = direct_gain(&m, &tx, &rx);
        let want = friis_amplitude(5.0, m.lambda());
        assert!((g - want).abs() < 1e-15);
    }

    #[test]
    fn direct_gain_attenuated_by_wall() {
        let mut plan = FloorPlan::new();
        plan.add_wall(Wall::new(
            Vec3::xy(2.5, -1.0),
            Vec3::xy(2.5, 1.0),
            3.0,
            Material::Concrete,
        ));
        let m = medium_free(&plan);
        let tx = iso_endpoint("tx", Vec3::new(0.0, 0.0, 1.0));
        let rx = iso_endpoint("rx", Vec3::new(5.0, 0.0, 1.0));
        let g = direct_gain(&m, &tx, &rx).abs();
        let clear = friis_amplitude(5.0, m.lambda()).abs();
        let expect = clear * Material::Concrete.transmission_amplitude(&m.band);
        assert!((g - expect).abs() < 1e-15);
        assert!(g < clear / 100.0);
    }

    #[test]
    fn colocated_endpoints_dead() {
        let plan = FloorPlan::new();
        let m = medium_free(&plan);
        let tx = iso_endpoint("tx", Vec3::new(1.0, 1.0, 1.0));
        let rx = iso_endpoint("rx", Vec3::new(1.0, 1.0, 1.0));
        assert_eq!(direct_gain(&m, &tx, &rx), Complex::ZERO);
        assert!(trace_direct(&m, &tx, &rx).is_none());
    }

    #[test]
    fn wall_bounce_exists_and_weaker_than_direct() {
        let mut plan = FloorPlan::new();
        plan.add_wall(Wall::new(
            Vec3::xy(0.0, 3.0),
            Vec3::xy(10.0, 3.0),
            3.0,
            Material::Concrete,
        ));
        let m = medium_free(&plan);
        let tx = iso_endpoint("tx", Vec3::new(2.0, 0.0, 1.0));
        let rx = iso_endpoint("rx", Vec3::new(8.0, 0.0, 1.0));
        let bounce = wall_bounce_gain(&m, &tx, &rx).abs();
        let direct = direct_gain(&m, &tx, &rx).abs();
        assert!(bounce > 0.0);
        assert!(bounce < direct);
    }

    #[test]
    fn no_walls_no_bounce() {
        let plan = FloorPlan::new();
        let m = medium_free(&plan);
        let tx = iso_endpoint("tx", Vec3::new(2.0, 0.0, 1.0));
        let rx = iso_endpoint("rx", Vec3::new(8.0, 0.0, 1.0));
        assert_eq!(wall_bounce_gain(&m, &tx, &rx), Complex::ZERO);
        assert!(trace_wall_bounces(&m, &tx, &rx).is_empty());
    }

    fn test_surface(pos: Vec3, facing: Vec3, n: usize, mode: OperationMode) -> SurfaceInstance {
        let band = NamedBand::MmWave28GHz.band();
        let geom = ArrayGeometry::half_wavelength(n, n, band.wavelength_m());
        SurfaceInstance::new("s", Pose::wall_mounted(pos, facing), geom, mode)
    }

    #[test]
    fn reflective_surface_gates_sides() {
        let plan = FloorPlan::new();
        let m = medium_free(&plan);
        let s = test_surface(
            Vec3::new(0.0, 0.0, 1.5),
            Vec3::X,
            8,
            OperationMode::Reflective,
        );
        let front_a = iso_endpoint("a", Vec3::new(3.0, 1.0, 1.5));
        let front_b = iso_endpoint("b", Vec3::new(3.0, -1.0, 1.5));
        let behind = iso_endpoint("c", Vec3::new(-3.0, 0.0, 1.5));
        assert!(surface_coeffs(&m, &front_a, &front_b, &s).is_some());
        assert!(surface_coeffs(&m, &front_a, &behind, &s).is_none());
    }

    #[test]
    fn transmissive_surface_gates_sides() {
        let plan = FloorPlan::new();
        let m = medium_free(&plan);
        let s = test_surface(
            Vec3::new(0.0, 0.0, 1.5),
            Vec3::X,
            8,
            OperationMode::Transmissive,
        );
        let front = iso_endpoint("a", Vec3::new(3.0, 1.0, 1.5));
        let back = iso_endpoint("c", Vec3::new(-3.0, 0.0, 1.5));
        assert!(surface_coeffs(&m, &front, &back, &s).is_some());
        let front_b = iso_endpoint("b", Vec3::new(3.0, -1.0, 1.5));
        assert!(surface_coeffs(&m, &front, &front_b, &s).is_none());
    }

    #[test]
    fn focused_surface_beats_unfocused() {
        // Program conjugate phases and check coherent combining.
        let plan = FloorPlan::new();
        let m = medium_free(&plan);
        let mut s = test_surface(
            Vec3::new(0.0, 0.0, 1.5),
            Vec3::X,
            16,
            OperationMode::Reflective,
        );
        // Receiver far from the specular direction of the transmitter in
        // both aperture axes (different bearing *and* height), so the
        // identity (mirror) response cannot combine coherently.
        let tx = iso_endpoint("tx", Vec3::new(1.0, 2.5, 1.5));
        let rx = iso_endpoint("rx", Vec3::new(2.0, -0.5, 0.5));
        let term = surface_coeffs(&m, &tx, &rx, &s).expect("serves");

        // Unfocused: identity response.
        let ident: Complex = term.coeffs.iter().copied().sum();

        // Focused: cancel each coefficient's phase.
        let focused: f64 = term.coeffs.iter().map(|c| c.abs()).sum();
        s.set_phases(&term.coeffs.iter().map(|c| -c.arg()).collect::<Vec<_>>());
        let check: Complex = term
            .coeffs
            .iter()
            .zip(s.response())
            .map(|(c, r)| *c * *r)
            .sum();
        assert!((check.abs() - focused).abs() < 1e-12);
        assert!(focused > ident.abs());
        // With 256 elements the coherent gain must clearly beat the
        // incoherent identity sum.
        assert!(
            focused > 5.0 * ident.abs() || ident.abs() < 1e-12,
            "focused={focused:.3e} ident={:.3e}",
            ident.abs()
        );
    }

    #[test]
    fn surface_behind_thick_wall_pruned() {
        let mut plan = FloorPlan::new();
        // Two concrete walls between tx and the surface: ~160 dB, pruned.
        for x in [1.0, 1.5] {
            plan.add_wall(Wall::new(
                Vec3::xy(x, -5.0),
                Vec3::xy(x, 5.0),
                3.0,
                Material::Metal,
            ));
        }
        let m = medium_free(&plan);
        let s = test_surface(
            Vec3::new(3.0, 0.0, 1.5),
            -Vec3::X,
            8,
            OperationMode::Reflective,
        );
        let tx = iso_endpoint("tx", Vec3::new(0.0, 1.0, 1.5));
        let rx = iso_endpoint("rx", Vec3::new(0.0, -1.0, 1.5));
        assert!(surface_coeffs(&m, &tx, &rx, &s).is_none());
        // The wall-burial gate is band-dependent: the geometric trace still
        // exists, it just evaluates to nothing at this band.
        assert!(trace_surface(&m, &tx, &rx, &s, 0).is_some());
    }

    #[test]
    fn polarization_mismatch_kills_direct_link() {
        let plan = FloorPlan::new();
        let m = medium_free(&plan);
        let tx = iso_endpoint("tx", Vec3::new(0.0, 0.0, 1.0));
        let mut rx = iso_endpoint("rx", Vec3::new(5.0, 0.0, 1.0));
        let matched = direct_gain(&m, &tx, &rx).abs();
        rx.polarization_rad = std::f64::consts::FRAC_PI_2; // cross-pol
        let crossed = direct_gain(&m, &tx, &rx).abs();
        assert!(crossed < 1e-12 * (1.0 + matched), "cross-pol must null");
        rx.polarization_rad = std::f64::consts::FRAC_PI_4;
        let diag = direct_gain(&m, &tx, &rx).abs();
        assert!((diag / matched - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-9);
    }

    #[test]
    fn polarization_rotating_surface_revives_crossed_link() {
        // The LLAMA use case: a cross-polarized link is dead directly, but
        // a surface that rotates polarization by 90° restores coupling.
        let plan = FloorPlan::new();
        let m = medium_free(&plan);
        let mut s = test_surface(
            Vec3::new(0.0, 0.0, 1.5),
            Vec3::X,
            8,
            OperationMode::Reflective,
        );
        let tx = iso_endpoint("tx", Vec3::new(3.0, 2.0, 1.5));
        let mut rx = iso_endpoint("rx", Vec3::new(3.0, -2.0, 1.5));
        rx.polarization_rad = std::f64::consts::FRAC_PI_2;

        // Without rotation, the surface path is cross-polarized too.
        let dead = surface_coeffs(&m, &tx, &rx, &s)
            .map(|t| t.coeffs.iter().map(|c| c.abs()).sum::<f64>())
            .unwrap_or(0.0);
        assert!(dead < 1e-12, "unrotated surface can't couple: {dead}");

        s.polarization_rot = std::f64::consts::FRAC_PI_2;
        let revived = surface_coeffs(&m, &tx, &rx, &s)
            .map(|t| t.coeffs.iter().map(|c| c.abs()).sum::<f64>())
            .unwrap_or(0.0);
        assert!(revived > 1e-9, "rotating surface must couple: {revived}");
    }

    #[test]
    fn resonance_detuning_weakens_surface() {
        // A Scrolls-style resonant surface: strong at its centre, weak
        // detuned, and re-tunable.
        let plan = FloorPlan::new();
        let m = medium_free(&plan); // 28 GHz
        let s_resonant = test_surface(
            Vec3::new(0.0, 0.0, 1.5),
            Vec3::X,
            8,
            OperationMode::Reflective,
        )
        .with_resonance(28.0e9, 0.1);
        let s_detuned = test_surface(
            Vec3::new(0.0, 0.0, 1.5),
            Vec3::X,
            8,
            OperationMode::Reflective,
        )
        .with_resonance(5.25e9, 0.1);
        let tx = iso_endpoint("tx", Vec3::new(3.0, 2.0, 1.5));
        let rx = iso_endpoint("rx", Vec3::new(3.0, -2.0, 1.5));
        let strong: f64 = surface_coeffs(&m, &tx, &rx, &s_resonant)
            .unwrap()
            .coeffs
            .iter()
            .map(|c| c.abs())
            .sum();
        // Far off resonance the surface is pruned entirely or negligible.
        let weak: f64 = surface_coeffs(&m, &tx, &rx, &s_detuned)
            .map(|t| t.coeffs.iter().map(|c| c.abs()).sum())
            .unwrap_or(0.0);
        assert!(weak < strong / 100.0, "strong={strong:.3e} weak={weak:.3e}");
    }

    #[test]
    fn cascade_exists_for_relay_geometry() {
        let plan = FloorPlan::new();
        let m = medium_free(&plan);
        // tx — s1 bounces to s2 — rx, all in front of the right faces.
        let s1 = test_surface(
            Vec3::new(0.0, 0.0, 1.5),
            Vec3::X,
            8,
            OperationMode::Reflective,
        );
        let s2 = test_surface(
            Vec3::new(6.0, 0.0, 1.5),
            -Vec3::X,
            8,
            OperationMode::Reflective,
        );
        let tx = iso_endpoint("tx", Vec3::new(2.0, 2.0, 1.5));
        let rx = iso_endpoint("rx", Vec3::new(4.0, -2.0, 1.5));
        let (alpha, beta) = cascade_coeffs(&m, &tx, &rx, &s1, &s2).expect("cascade");
        assert_eq!(alpha.len(), 64);
        assert_eq!(beta.len(), 64);
        assert!(alpha.iter().any(|c| c.abs() > 0.0));
    }

    #[test]
    fn cascade_gated_when_second_cannot_reach_rx() {
        let plan = FloorPlan::new();
        let m = medium_free(&plan);
        let s1 = test_surface(
            Vec3::new(0.0, 0.0, 1.5),
            Vec3::X,
            4,
            OperationMode::Reflective,
        );
        let s2 = test_surface(
            Vec3::new(6.0, 0.0, 1.5),
            -Vec3::X,
            4,
            OperationMode::Reflective,
        );
        let tx = iso_endpoint("tx", Vec3::new(2.0, 2.0, 1.5));
        let rx_behind_s2 = iso_endpoint("rx", Vec3::new(9.0, 0.0, 1.5));
        assert!(cascade_coeffs(&m, &tx, &rx_behind_s2, &s1, &s2).is_none());
    }

    #[test]
    fn cascade_weaker_than_single_bounce() {
        // Physical sanity: a two-hop path through two small surfaces is far
        // weaker (per unit response) than one bounce off the first.
        let plan = FloorPlan::new();
        let m = medium_free(&plan);
        let s1 = test_surface(
            Vec3::new(0.0, 0.0, 1.5),
            Vec3::X,
            8,
            OperationMode::Reflective,
        );
        let s2 = test_surface(
            Vec3::new(6.0, 0.0, 1.5),
            -Vec3::X,
            8,
            OperationMode::Reflective,
        );
        let tx = iso_endpoint("tx", Vec3::new(2.0, 2.0, 1.5));
        let rx = iso_endpoint("rx", Vec3::new(4.0, -2.0, 1.5));
        let single = surface_coeffs(&m, &tx, &rx, &s1).unwrap();
        let best_single: f64 = single.coeffs.iter().map(|c| c.abs()).sum();
        let (alpha, beta) = cascade_coeffs(&m, &tx, &rx, &s1, &s2).unwrap();
        let best_cascade: f64 =
            alpha.iter().map(|c| c.abs()).sum::<f64>() * beta.iter().map(|c| c.abs()).sum::<f64>();
        assert!(best_cascade < best_single);
    }

    #[test]
    fn medium_prefilters_transparent_surfaces() {
        let plan = FloorPlan::new();
        let band = NamedBand::MmWave28GHz.band();
        let transparent = test_surface(
            Vec3::new(3.0, 0.0, 1.5),
            Vec3::X,
            4,
            OperationMode::Reflective,
        );
        let opaque = test_surface(
            Vec3::new(4.0, 0.0, 1.5),
            Vec3::X,
            4,
            OperationMode::Reflective,
        )
        .with_obstruction(0.5);
        let surfaces = [transparent, opaque];
        let m = Medium::new(&plan, &[], &surfaces, band);
        assert_eq!(m.obstructing.len(), 1);
        assert_eq!(m.obstructing[0].0.obstruction_amplitude, 0.5);
        // And the obstruction still bites on a crossing segment (the
        // transparent surface is crossed too, but contributes nothing).
        let t = m.transmission(Vec3::new(0.0, 0.0, 1.5), Vec3::new(8.0, 0.0, 1.5));
        assert!(
            (t - 0.5).abs() < 1e-12,
            "one opaque crossing expected, t={t}"
        );
    }

    #[test]
    fn segment_trace_reproduces_transmission_across_bands() {
        let mut plan = FloorPlan::new();
        plan.add_wall(Wall::new(
            Vec3::xy(2.0, -2.0),
            Vec3::xy(2.0, 2.0),
            3.0,
            Material::Drywall,
        ));
        let blockers = [Blocker::person(Vec3::xy(3.0, 0.0))];
        let from = Vec3::new(0.0, 0.0, 1.2);
        let to = Vec3::new(6.0, 0.0, 1.2);
        for named in [
            NamedBand::Ism2_4GHz,
            NamedBand::WiFi5GHz,
            NamedBand::MmWave60GHz,
        ] {
            let band = named.band();
            let m = Medium::new(&plan, &blockers, &[], band);
            let trace = m.trace_segment(from, to);
            assert_eq!(trace.transmission(&band), m.transmission(from, to));
        }
    }
}
