//! Endpoint feedback: the data plane's report channel.
//!
//! The paper decouples surface *management* (slow, central) from real-time
//! *actuation* (local): surfaces store several configurations and pick the
//! best one from endpoint feedback, the way 802.11ad APs sweep beam
//! codebooks. This module carries those reports.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One measurement report from an endpoint while a given local
/// configuration slot was active.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeedbackReport {
    /// Reporting endpoint id.
    pub endpoint_id: String,
    /// Surface id the report is about.
    pub surface_id: String,
    /// Which locally-stored configuration slot was active.
    pub config_slot: usize,
    /// Measured RSS in dBm.
    pub rss_dbm: f64,
    /// Simulation timestamp in milliseconds.
    pub timestamp_ms: u64,
}

/// A bounded FIFO of feedback reports with per-slot aggregation.
///
/// Bounded so a chatty endpoint cannot grow kernel memory without limit;
/// when full, the oldest report is dropped (the newest data is what
/// configuration selection wants anyway).
#[derive(Debug, Clone)]
pub struct FeedbackBus {
    capacity: usize,
    reports: VecDeque<FeedbackReport>,
}

impl FeedbackBus {
    /// Creates a bus holding at most `capacity` reports.
    ///
    /// # Panics
    /// Panics if capacity is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "feedback bus capacity must be positive");
        FeedbackBus {
            capacity,
            reports: VecDeque::new(),
        }
    }

    /// Publishes a report, evicting the oldest when full.
    pub fn publish(&mut self, report: FeedbackReport) {
        if self.reports.len() == self.capacity {
            self.reports.pop_front();
        }
        self.reports.push_back(report);
    }

    /// Number of buffered reports.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// True if no reports are buffered.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// Iterates over buffered reports, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &FeedbackReport> {
        self.reports.iter()
    }

    /// Drains all buffered reports, oldest first.
    pub fn drain(&mut self) -> Vec<FeedbackReport> {
        self.reports.drain(..).collect()
    }

    /// The best configuration slot for `surface_id` according to mean RSS
    /// over buffered reports, or `None` when no reports mention it.
    /// This is the endpoint-feedback selection rule of NR-Surface/mmWall
    /// the paper cites.
    pub fn best_slot(&self, surface_id: &str) -> Option<usize> {
        use std::collections::HashMap;
        let mut sums: HashMap<usize, (f64, usize)> = HashMap::new();
        for r in &self.reports {
            if r.surface_id == surface_id {
                let e = sums.entry(r.config_slot).or_insert((0.0, 0));
                e.0 += r.rss_dbm;
                e.1 += 1;
            }
        }
        sums.into_iter()
            .map(|(slot, (sum, n))| (slot, sum / n as f64))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(slot, _)| slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(slot: usize, rss: f64, t: u64) -> FeedbackReport {
        FeedbackReport {
            endpoint_id: "c0".into(),
            surface_id: "s0".into(),
            config_slot: slot,
            rss_dbm: rss,
            timestamp_ms: t,
        }
    }

    #[test]
    fn best_slot_by_mean_rss() {
        let mut bus = FeedbackBus::new(16);
        bus.publish(report(0, -70.0, 1));
        bus.publish(report(0, -72.0, 2));
        bus.publish(report(1, -55.0, 3));
        bus.publish(report(1, -60.0, 4));
        bus.publish(report(2, -80.0, 5));
        assert_eq!(bus.best_slot("s0"), Some(1));
    }

    #[test]
    fn unknown_surface_none() {
        let mut bus = FeedbackBus::new(4);
        bus.publish(report(0, -70.0, 1));
        assert_eq!(bus.best_slot("other"), None);
    }

    #[test]
    fn bounded_eviction_oldest_first() {
        let mut bus = FeedbackBus::new(2);
        bus.publish(report(0, -50.0, 1));
        bus.publish(report(1, -60.0, 2));
        bus.publish(report(2, -70.0, 3));
        assert_eq!(bus.len(), 2);
        let drained = bus.drain();
        assert_eq!(drained[0].config_slot, 1);
        assert_eq!(drained[1].config_slot, 2);
        assert!(bus.is_empty());
    }

    #[test]
    fn eviction_changes_best_slot() {
        let mut bus = FeedbackBus::new(1);
        bus.publish(report(0, -50.0, 1)); // best... until evicted
        bus.publish(report(1, -90.0, 2));
        assert_eq!(bus.best_slot("s0"), Some(1));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = FeedbackBus::new(0);
    }
}
