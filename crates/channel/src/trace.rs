//! Trace/evaluate split: band-independent path records.
//!
//! Ray tracing a link does two separable jobs: *geometry* (which paths
//! exist, their segment lengths, which walls/blockers they cross, pattern
//! and polarization factors) and *electromagnetics* (Friis amplitudes,
//! material losses, resonance detuning and `e^{-jkd}` phases — everything
//! that depends on the carrier). The types here capture the first job as a
//! [`ChannelTrace`]; [`ChannelTrace::linearize_at`] then replays the second
//! job at any [`Band`] in `O(total elements)` without touching the
//! environment again.
//!
//! This is what makes a wideband frequency sweep one trace + N cheap
//! re-phasings instead of N full re-traces, and it is the payload the
//! simulator's linearization cache stores.
//!
//! Bit-exactness contract: for the band the trace was taken at,
//! `linearize_at` reproduces the reference path math in `paths` (which is
//! implemented on top of these records) operation-for-operation, so cached
//! and freshly-traced linearizations are interchangeable. Band-dependent
//! *gates* (wall-burial and resonance pruning) are re-applied per band:
//! a path negligible at 28 GHz may matter at 5 GHz and vice versa.

use crate::dynamics::Blocker;
use crate::linear::{BilinearTerm, LinearTerm, Linearization};
use surfos_em::band::Band;
use surfos_em::complex::Complex;
use surfos_em::propagation::{element_scatter_amplitude, friis_amplitude};
use surfos_em::simd::phasor;
use surfos_em::units::db_to_amplitude;
use surfos_geometry::bvh::{Aabb, AabbBank};
use surfos_geometry::{Material, Vec3};

/// Structure-of-arrays bank of rotating phasors: per element, a current
/// value and a fixed per-step rotation, stored as parallel `f64` slices so
/// the sweep's sum + advance runs through `surfos_em::simd::phasor`'s
/// vectorizable kernels. Each element's *rotation* is bit-identical to the
/// scalar `Complex` multiply; only the *sum* across elements is
/// reassociated (see the kernel docs for the bound).
#[derive(Debug, Default)]
struct PhasorBank {
    re: Vec<f64>,
    im: Vec<f64>,
    dre: Vec<f64>,
    dim: Vec<f64>,
}

impl PhasorBank {
    fn with_capacity(n: usize) -> Self {
        PhasorBank {
            re: Vec::with_capacity(n),
            im: Vec::with_capacity(n),
            dre: Vec::with_capacity(n),
            dim: Vec::with_capacity(n),
        }
    }

    /// Appends a phasor with initial `value` and per-step rotation angle
    /// `dphase` (radians).
    fn push(&mut self, value: Complex, dphase: f64) {
        let d = Complex::from_polar(1.0, dphase);
        self.re.push(value.re);
        self.im.push(value.im);
        self.dre.push(d.re);
        self.dim.push(d.im);
    }

    /// Sum of the current values, then advance every phasor one step.
    fn sum_and_advance(&mut self) -> Complex {
        let (re, im) = phasor::sum_and_advance(&mut self.re, &mut self.im, &self.dre, &self.dim);
        Complex::new(re, im)
    }

    /// Sum of the current values weighted by the real scales `w`, then
    /// advance every phasor one step.
    fn weighted_sum_and_advance(&mut self, w: &[f64]) -> Complex {
        let (re, im) =
            phasor::weighted_sum_and_advance(&mut self.re, &mut self.im, &self.dre, &self.dim, w);
        Complex::new(re, im)
    }

    fn len(&self) -> usize {
        self.re.len()
    }
}

/// Amplitude floor below which a path's accumulated transmission product
/// is treated as exactly zero (shared with the reference implementation
/// in `paths`). This uniform gate is what makes metal-shelled zones
/// *bit-exactly* independent — the contract the sharded kernel builds on.
pub const TRANSMISSION_FLOOR: f64 = 1e-9;
/// Thresholds shared with the reference implementation in `paths`.
pub(crate) const RESONANCE_FLOOR: f64 = 1e-6;
pub(crate) const COEFF_FLOOR: f64 = 1e-15;

/// Band-independent obstruction record of one ray segment: which wall
/// materials it crosses (in crossing order), which blockers (in list
/// order), and the off-band surface obstruction product. The segment's
/// world endpoints are retained so a blocker-only mutation can re-derive
/// just the blocker crossings (`SegmentTrace::refresh_blockers`) without
/// re-tracing walls or surfaces.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentTrace {
    /// Segment start, in world coordinates.
    from: Vec3,
    /// Segment end, in world coordinates.
    to: Vec3,
    /// Materials of crossed walls, sorted by crossing parameter.
    wall_materials: Vec<Material>,
    /// Materials of crossed blockers, in blocker-list order.
    blocker_materials: Vec<Material>,
    /// Product of crossing surfaces' obstruction amplitudes (band-free).
    surface_obstruction: f64,
}

impl SegmentTrace {
    pub(crate) fn new(
        from: Vec3,
        to: Vec3,
        wall_materials: Vec<Material>,
        blocker_materials: Vec<Material>,
        surface_obstruction: f64,
    ) -> Self {
        SegmentTrace {
            from,
            to,
            wall_materials,
            blocker_materials,
            surface_obstruction,
        }
    }

    /// Re-derives the blocker-crossing set against a new blocker
    /// configuration (with its padded boxes from the refitted scene
    /// index), returning whether it changed. Walls and surface
    /// obstructions are untouched — blockers are the only moving
    /// primitives — so an unchanged crossing set leaves the segment's
    /// [`SegmentTrace::transmission`] bit-identical at every band.
    ///
    /// The crossing test and collection order reproduce the indexed
    /// `Medium::trace_segment` exactly: interval-bank prefilter, exact
    /// conservative box cull, exact cylinder test, blocker-list order.
    pub(crate) fn refresh_blockers(
        &mut self,
        blockers: &[Blocker],
        boxes: &[Aabb],
        bank: &AabbBank,
    ) -> bool {
        let mut crossed: Vec<Material> = Vec::new();
        bank.for_each_candidate(self.from, self.to, |i| {
            let b = &blockers[i];
            if boxes[i].intersects_segment(self.from, self.to) && b.intersects(self.from, self.to) {
                crossed.push(b.material);
            }
        });
        if crossed == self.blocker_materials {
            false
        } else {
            self.blocker_materials = crossed;
            true
        }
    }

    /// Amplitude transmission factor of the segment at `band`.
    ///
    /// Skipped non-crossing factors are exactly `1.0` in the reference
    /// product, so omitting them is IEEE-identical.
    pub fn transmission(&self, band: &Band) -> f64 {
        let walls = db_to_amplitude(
            -self
                .wall_materials
                .iter()
                .map(|m| m.penetration_loss_db(band))
                .sum::<f64>(),
        );
        let blockers: f64 = self
            .blocker_materials
            .iter()
            .map(|m| m.transmission_amplitude(band))
            .product();
        walls * blockers * self.surface_obstruction
    }

    /// [`Self::transmission`] driven by per-probe material tables and a
    /// per-segment `db_to_amplitude` memo — the sweep hot path's variant.
    ///
    /// `pen_db[m.index()]` / `blocker_amp[m.index()]` must hold exactly
    /// `m.penetration_loss_db(band)` / `m.transmission_amplitude(band)`
    /// for the probe being evaluated (pure memoization, like the sweep's
    /// per-probe reflection table). The dB sum and blocker product run in
    /// the same order over the same values as [`Self::transmission`], and
    /// the `10^(-db/20)` is recomputed only when the summed dB differs
    /// from `memo.0` (same input bits → same output bits), so the result
    /// is **bit-identical** to `transmission(band)` at every probe. Seed
    /// `memo` with `(f64::NAN, 0.0)` (NaN compares unequal to everything,
    /// forcing the first computation). The material loss tables are step
    /// functions of frequency, so across a subcarrier sweep the memo
    /// turns one powf per probe into one powf per band-class.
    pub(crate) fn transmission_memo(
        &self,
        pen_db: &[f64; Material::ALL.len()],
        blocker_amp: &[f64; Material::ALL.len()],
        memo: &mut (f64, f64),
    ) -> f64 {
        let db: f64 = self.wall_materials.iter().map(|m| pen_db[m.index()]).sum();
        if db != memo.0 {
            *memo = (db, db_to_amplitude(-db));
        }
        let blockers: f64 = self
            .blocker_materials
            .iter()
            .map(|m| blocker_amp[m.index()])
            .product();
        memo.1 * blockers * self.surface_obstruction
    }
}

/// Seed value for [`SegmentTrace::transmission_memo`] memos: `NaN`
/// compares unequal to every dB sum, so the first probe always computes.
const FRESH_MEMO: (f64, f64) = (f64::NAN, 0.0);

/// Sweep-local surface state: the trace, its element phasor bank, and the
/// `[seg_in, seg_out]` transmission memos.
type SurfaceSweep<'a> = (&'a SurfaceTrace, PhasorBank, [(f64, f64); 2]);

/// Lorentzian resonance efficiency, mirroring
/// `SurfaceInstance::resonance_factor`.
fn resonance_factor(resonance: Option<(f64, f64)>, freq_hz: f64) -> f64 {
    match resonance {
        None => 1.0,
        Some((center, width)) => {
            let x = (freq_hz - center) / (width * center);
            1.0 / (1.0 + x * x)
        }
    }
}

/// Geometry of the direct path.
#[derive(Debug, Clone, PartialEq)]
pub struct DirectTrace {
    /// Tx–rx distance in metres.
    pub d: f64,
    /// Pattern × polarization amplitude factor (band-free).
    pub pat_pol: f64,
    /// Obstructions along the path.
    pub segment: SegmentTrace,
}

impl DirectTrace {
    /// Complex gain at `band`.
    pub fn gain_at(&self, band: &Band) -> Complex {
        let g = friis_amplitude(self.d, band.wavelength_m());
        g * (self.pat_pol * self.segment.transmission(band))
    }
}

/// Geometry of one first-order specular wall reflection.
#[derive(Debug, Clone, PartialEq)]
pub struct BounceTrace {
    /// Unfolded path length tx → specular point → rx.
    pub total_length: f64,
    /// The bounce wall's material (reflection loss is band-dependent).
    pub material: Material,
    /// Pattern gain product towards the specular point (band-free).
    pub pat: f64,
    /// Polarization factor (band-free).
    pub pol: f64,
    /// Obstructions on the tx → specular-point leg.
    pub seg_in: SegmentTrace,
    /// Obstructions on the specular-point → rx leg.
    pub seg_out: SegmentTrace,
}

impl BounceTrace {
    /// Complex gain at `band`, or exactly [`Complex::ZERO`] when the legs'
    /// combined obstruction puts the bounce below [`TRANSMISSION_FLOOR`] —
    /// the same sub-noise floor that already gates surface and cascade
    /// terms. Applying it uniformly across all path families makes heavily
    /// shielded regions (e.g. a metal-shelled building) *exactly* RF-dark
    /// to each other: a scene partitioned along such shells evaluates
    /// bit-identically to the flat whole, which is what the sharded
    /// kernel's zone decomposition relies on.
    pub fn gain_at(&self, band: &Band) -> Complex {
        let trans = self.seg_in.transmission(band) * self.seg_out.transmission(band);
        if trans < TRANSMISSION_FLOOR {
            return Complex::ZERO;
        }
        let g = friis_amplitude(self.total_length, band.wavelength_m());
        let rho = self.material.reflection_amplitude(band);
        g * (rho * self.pat * self.pol * trans)
    }
}

/// Per-element leg lengths of a single-bounce surface path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElementLeg {
    /// Tx → element distance.
    pub d1: f64,
    /// Element → rx distance.
    pub d2: f64,
}

/// Geometry of a single-bounce programmable-surface path. Survived the
/// band-independent gates (mode/side serving); the band-dependent gates
/// (wall burial, resonance) are re-applied by [`Self::linear_term_at`].
#[derive(Debug, Clone, PartialEq)]
pub struct SurfaceTrace {
    /// Index of the surface in the simulator's surface list.
    pub surface: usize,
    /// Obstructions tx → surface centre.
    pub seg_in: SegmentTrace,
    /// Obstructions surface centre → rx.
    pub seg_out: SegmentTrace,
    /// Endpoint pattern gain product towards the centre (band-free).
    pub ep_gain: f64,
    /// Polarization factor including the surface's rotation (band-free).
    pub pol: f64,
    /// The surface's resonance `(centre_hz, fractional_width)`, if any.
    pub resonance: Option<(f64, f64)>,
    /// Element area in m².
    pub area: f64,
    /// Element amplitude efficiency.
    pub efficiency: f64,
    /// Element pattern gain product (centre-based angles; band-free).
    pub elem_pat: f64,
    /// Per-element leg lengths.
    pub legs: Vec<ElementLeg>,
}

impl SurfaceTrace {
    /// The per-element coefficients at `band`, or `None` when the surface
    /// is gated off (buried or detuned) at this band.
    pub fn linear_term_at(&self, band: &Band) -> Option<LinearTerm> {
        let trans = self.seg_in.transmission(band) * self.seg_out.transmission(band);
        if trans < TRANSMISSION_FLOOR {
            return None;
        }
        let resonance = resonance_factor(self.resonance, band.center_hz);
        if resonance < RESONANCE_FLOOR {
            return None;
        }
        let ep_gain = self.ep_gain * resonance * self.pol;
        let lambda = band.wavelength_m();
        let coeffs = self
            .legs
            .iter()
            .map(|leg| {
                let scatter =
                    element_scatter_amplitude(leg.d1, leg.d2, lambda, self.area, self.efficiency);
                scatter * (self.elem_pat * ep_gain * trans)
            })
            .collect();
        Some(LinearTerm {
            surface: self.surface,
            coeffs,
        })
    }
}

/// Geometry of a two-hop cascade `tx → first → second → rx`.
#[derive(Debug, Clone, PartialEq)]
pub struct CascadeTrace {
    /// Index of the first-hop surface.
    pub first: usize,
    /// Index of the second-hop surface.
    pub second: usize,
    /// Obstructions tx → first centre.
    pub seg_in: SegmentTrace,
    /// Obstructions first centre → second centre.
    pub seg_hop: SegmentTrace,
    /// Obstructions second centre → rx.
    pub seg_out: SegmentTrace,
    /// Centre-to-centre hop distance.
    pub d_hop: f64,
    /// First surface: element pattern product towards tx and the second
    /// centre (band-free; resonance re-applied per band).
    pub pat1: f64,
    /// First surface's resonance.
    pub res1: Option<(f64, f64)>,
    /// `element_area × efficiency` of the first surface.
    pub area_eff1: f64,
    /// Tx pattern gain towards the first centre.
    pub g_tx: f64,
    /// First surface per-element legs: `d1` = tx → element,
    /// `d2` = element → second centre.
    pub alpha_legs: Vec<ElementLeg>,
    /// Second surface: element pattern product (band-free).
    pub pat2: f64,
    /// Second surface's resonance.
    pub res2: Option<(f64, f64)>,
    /// End-to-end polarization factor through both rotations (band-free).
    pub pol: f64,
    /// `element_area × efficiency` of the second surface.
    pub area_eff2: f64,
    /// Rx pattern gain towards the second centre.
    pub g_rx: f64,
    /// Second surface per-element legs: `d1` = first centre → element,
    /// `d2` = element → rx.
    pub beta_legs: Vec<ElementLeg>,
}

impl CascadeTrace {
    /// The `(α, β)` coefficient vectors at `band`, or `None` when gated.
    pub fn coeffs_at(&self, band: &Band) -> Option<(Vec<Complex>, Vec<Complex>)> {
        let trans = self.seg_in.transmission(band)
            * self.seg_hop.transmission(band)
            * self.seg_out.transmission(band);
        if trans < TRANSMISSION_FLOOR {
            return None;
        }
        let lambda = band.wavelength_m();
        let k = band.wavenumber();
        let pat1 = self.pat1 * resonance_factor(self.res1, band.center_hz);
        let alpha: Vec<Complex> = self
            .alpha_legs
            .iter()
            .map(|leg| {
                let mag = self.area_eff1 / (4.0 * std::f64::consts::PI * leg.d1 * self.d_hop);
                let phase = -k * (leg.d1 + leg.d2 - self.d_hop) - k * self.d_hop;
                Complex::from_polar(mag, phase) * (pat1 * self.g_tx * trans)
            })
            .collect();
        let pat2 = self.pat2 * resonance_factor(self.res2, band.center_hz) * self.pol;
        let beta: Vec<Complex> = self
            .beta_legs
            .iter()
            .map(|leg| {
                let mag = self.area_eff2 / (lambda * leg.d2);
                let phase = -k * (leg.d1 - self.d_hop + leg.d2);
                Complex::from_polar(mag, phase) * (pat2 * self.g_rx)
            })
            .collect();
        if alpha.iter().all(|c| c.abs() < COEFF_FLOOR) || beta.iter().all(|c| c.abs() < COEFF_FLOOR)
        {
            return None;
        }
        Some((alpha, beta))
    }

    /// The bilinear term at `band`, or `None` when gated.
    pub fn term_at(&self, band: &Band) -> Option<BilinearTerm> {
        let (alpha, beta) = self.coeffs_at(band)?;
        Some(BilinearTerm {
            first: self.first,
            alpha,
            second: self.second,
            beta,
        })
    }
}

/// Everything path enumeration found for one (tx, rx) pair: the complete
/// band-independent geometry of the link. Re-phase it at any carrier with
/// [`Self::linearize_at`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelTrace {
    /// Direct path (`None` when the endpoints are co-located).
    pub direct: Option<DirectTrace>,
    /// Wall reflections (`None` when tracing had them disabled).
    pub bounces: Option<Vec<BounceTrace>>,
    /// Single-bounce surface paths that pass the geometric gates.
    pub surfaces: Vec<SurfaceTrace>,
    /// Two-hop cascades (`None` when tracing had them disabled).
    pub cascades: Option<Vec<CascadeTrace>>,
}

impl ChannelTrace {
    /// Evaluates the trace into a [`Linearization`] at `band`. Cheap:
    /// `O(total elements)`, no environment access.
    pub fn linearize_at(&self, band: &Band) -> Linearization {
        surfos_obs::add("channel.rephasings", 1);
        // Same per-band material tables as `sweep_evaluate`: pure
        // memoization of the `Material` loss models, so the direct and
        // bounce terms below stay bit-identical to `gain_at` while paying
        // one `powf` per distinct loss value instead of one per path.
        let mut pen_db = [0.0f64; Material::ALL.len()];
        let mut blocker_amp = [0.0f64; Material::ALL.len()];
        let mut rho = [0.0f64; Material::ALL.len()];
        for m in Material::ALL {
            pen_db[m.index()] = m.penetration_loss_db(band);
            blocker_amp[m.index()] = m.transmission_amplitude(band);
            rho[m.index()] = m.reflection_amplitude(band);
        }
        let lambda = band.wavelength_m();
        let mut memo = [FRESH_MEMO; 2];
        let mut constant = match &self.direct {
            Some(d) => {
                let g = friis_amplitude(d.d, lambda);
                g * (d.pat_pol
                    * d.segment
                        .transmission_memo(&pen_db, &blocker_amp, &mut memo[0]))
            }
            None => Complex::ZERO,
        };
        if let Some(bounces) = &self.bounces {
            let mut total = Complex::ZERO;
            for b in bounces {
                // Table-driven `BounceTrace::gain_at`, operation for
                // operation.
                let trans = b
                    .seg_in
                    .transmission_memo(&pen_db, &blocker_amp, &mut memo[0])
                    * b.seg_out
                        .transmission_memo(&pen_db, &blocker_amp, &mut memo[1]);
                if trans < TRANSMISSION_FLOOR {
                    continue;
                }
                let g = friis_amplitude(b.total_length, lambda);
                total += g * (rho[b.material.index()] * b.pat * b.pol * trans);
            }
            constant += total;
        }
        let linear = self
            .surfaces
            .iter()
            .filter_map(|s| s.linear_term_at(band))
            .collect();
        let bilinear = match &self.cascades {
            Some(cascades) => cascades.iter().filter_map(|c| c.term_at(band)).collect(),
            None => Vec::new(),
        };
        Linearization {
            constant,
            linear,
            bilinear,
        }
    }

    /// Evaluates the trace against `responses` at a *uniformly spaced*
    /// sequence of narrowband probes in one pass.
    ///
    /// Functionally this is `linearize_at(b).evaluate(responses)` per
    /// band, but per-element phases are linear in the wavenumber, so on a
    /// uniform grid each element's phasor advances by a fixed per-step
    /// rotation — one complex multiply instead of a fresh `sin`/`cos`.
    /// Band-dependent scalars (Friis magnitudes, material losses,
    /// resonance) and the pruning gates are still recomputed exactly per
    /// probe. The rotation is exact for a mathematically affine grid; the
    /// FP rounding of the caller's actual grid points bounds the
    /// deviation from point-wise evaluation at ~1e-11 relative.
    ///
    /// The phasors live in structure-of-arrays `PhasorBank`s driven by
    /// `surfos_em::simd::phasor`, so each probe's sum + advance is a
    /// vectorizable streaming pass instead of a pointer-chasing `Complex`
    /// loop. **Equivalence policy** versus the scalar reference arm
    /// ([`Self::sweep_evaluate_scalar`]): every per-path value — phasor
    /// rotations, Friis magnitudes, material losses, gates — is computed
    /// by the same operations in the same order and is bit-identical; only
    /// the *sums across paths/elements* are reassociated into the kernels'
    /// partial-sum lanes, bounding the deviation per probe at
    /// `O(n·ε·Σ|termᵢ|)` absolute (n = paths or elements per sum). The
    /// per-probe material reflection table is pure memoization of
    /// [`Material::reflection_amplitude`] and changes nothing.
    pub fn sweep_evaluate(&self, bands: &[Band], responses: &[&[Complex]]) -> Vec<Complex> {
        if bands.len() < 2 {
            // `linearize_at` does the re-phasing accounting on this path.
            return bands
                .iter()
                .map(|b| self.linearize_at(b).evaluate(responses))
                .collect();
        }
        surfos_obs::add("channel.rephasings", bands.len() as u64);
        let tau = 2.0 * std::f64::consts::PI;
        let four_pi = 4.0 * std::f64::consts::PI;
        let lambda0 = bands[0].wavelength_m();
        let k0 = bands[0].wavenumber();
        let dk = bands[1].wavenumber() - k0;

        let mut direct = self.direct.as_ref().map(|d| {
            (
                d,
                Complex::from_polar(1.0, -tau * d.d / lambda0),
                Complex::from_polar(1.0, -dk * d.d),
            )
        });
        let mut direct_memo = FRESH_MEMO;
        let bounce_list: Option<&[BounceTrace]> = self.bounces.as_deref();
        let mut bounce_bank = PhasorBank::with_capacity(bounce_list.map_or(0, <[_]>::len));
        if let Some(bs) = bounce_list {
            for b in bs {
                bounce_bank.push(
                    Complex::from_polar(1.0, -tau * b.total_length / lambda0),
                    -dk * b.total_length,
                );
            }
        }
        let mut bounce_w = vec![0.0f64; bounce_bank.len()];
        // Per-segment powf memos, [seg_in, seg_out] per bounce.
        let mut bounce_memo = vec![[FRESH_MEMO; 2]; bounce_bank.len()];
        let mut surfaces: Vec<SurfaceSweep> = self
            .surfaces
            .iter()
            .map(|s| {
                let area_eff = s.area * s.efficiency;
                let mut bank = PhasorBank::with_capacity(s.legs.len());
                for (leg, r) in s.legs.iter().zip(responses[s.surface]) {
                    let mag = area_eff / (four_pi * leg.d1 * leg.d2);
                    let phase = -tau * (leg.d1 + leg.d2) / lambda0;
                    bank.push(
                        Complex::from_polar(mag, phase) * *r,
                        -dk * (leg.d1 + leg.d2),
                    );
                }
                (s, bank, [FRESH_MEMO; 2])
            })
            .collect();
        // Cascade α/β magnitudes are gated against `COEFF_FLOOR` without
        // the responses folded in, so track the largest static magnitude
        // per side alongside the response-weighted phasor banks.
        struct CascadeSoa<'a> {
            c: &'a CascadeTrace,
            alpha: PhasorBank,
            alpha_max_mag: f64,
            beta: PhasorBank,
            beta_max_mag: f64,
            memo: [(f64, f64); 3],
        }
        let mut cascades: Vec<CascadeSoa<'_>> = self
            .cascades
            .iter()
            .flatten()
            .map(|c| {
                let mut alpha_max_mag: f64 = 0.0;
                let mut alpha = PhasorBank::with_capacity(c.alpha_legs.len());
                for (leg, r) in c.alpha_legs.iter().zip(responses[c.first]) {
                    let mag = c.area_eff1 / (four_pi * leg.d1 * c.d_hop);
                    alpha_max_mag = alpha_max_mag.max(mag);
                    let phase = -k0 * (leg.d1 + leg.d2 - c.d_hop) - k0 * c.d_hop;
                    alpha.push(
                        Complex::from_polar(mag, phase) * *r,
                        -dk * (leg.d1 + leg.d2),
                    );
                }
                // β magnitude carries a 1/λ that moves with the band; keep
                // the static part here and scale per probe.
                let mut beta_max_mag: f64 = 0.0;
                let mut beta = PhasorBank::with_capacity(c.beta_legs.len());
                for (leg, r) in c.beta_legs.iter().zip(responses[c.second]) {
                    let mag = c.area_eff2 / leg.d2;
                    beta_max_mag = beta_max_mag.max(mag);
                    let phase = -k0 * (leg.d1 - c.d_hop + leg.d2);
                    beta.push(
                        Complex::from_polar(mag, phase) * *r,
                        -dk * (leg.d1 - c.d_hop + leg.d2),
                    );
                }
                CascadeSoa {
                    c,
                    alpha,
                    alpha_max_mag,
                    beta,
                    beta_max_mag,
                    memo: [FRESH_MEMO; 3],
                }
            })
            .collect();

        bands
            .iter()
            .map(|band| {
                let lambda = band.wavelength_m();
                // Per-probe material tables: penetration loss in dB and
                // blocker transmission amplitude, tabulated once instead
                // of one `match` per crossed wall per segment — pure
                // memoization feeding `transmission_memo`, which stays
                // bit-identical to `transmission`.
                let mut pen_db = [0.0f64; Material::ALL.len()];
                let mut blocker_amp = [0.0f64; Material::ALL.len()];
                for m in Material::ALL {
                    pen_db[m.index()] = m.penetration_loss_db(band);
                    blocker_amp[m.index()] = m.transmission_amplitude(band);
                }
                let mut h = Complex::ZERO;
                if let Some((d, val, delta)) = direct.as_mut() {
                    let mag = lambda / (four_pi * d.d);
                    let trans =
                        d.segment
                            .transmission_memo(&pen_db, &blocker_amp, &mut direct_memo);
                    h += *val * (mag * d.pat_pol * trans);
                    *val *= *delta;
                }
                if let Some(bs) = bounce_list {
                    // Per-probe reflection amplitudes, tabulated once per
                    // material instead of one `db_to_amplitude` per bounce.
                    let mut rho = [0.0f64; Material::ALL.len()];
                    for m in Material::ALL {
                        rho[m.index()] = m.reflection_amplitude(band);
                    }
                    for ((w, b), memo) in bounce_w.iter_mut().zip(bs).zip(bounce_memo.iter_mut()) {
                        let trans = b
                            .seg_in
                            .transmission_memo(&pen_db, &blocker_amp, &mut memo[0])
                            * b.seg_out
                                .transmission_memo(&pen_db, &blocker_amp, &mut memo[1]);
                        // Sub-noise bounces weight to 0 (mirrors the
                        // `gain_at` floor; a 0-weighted phasor adds an
                        // exact ±0, leaving the sum bit-unchanged).
                        if trans < TRANSMISSION_FLOOR {
                            *w = 0.0;
                            continue;
                        }
                        let mag = lambda / (four_pi * b.total_length);
                        *w = mag * rho[b.material.index()] * b.pat * b.pol * trans;
                    }
                    h += bounce_bank.weighted_sum_and_advance(&bounce_w);
                }
                for (s, bank, memo) in surfaces.iter_mut() {
                    // Phasors must advance every step, gated or not, so
                    // accumulate unconditionally and gate the scale.
                    let acc = bank.sum_and_advance();
                    let trans = s
                        .seg_in
                        .transmission_memo(&pen_db, &blocker_amp, &mut memo[0])
                        * s.seg_out
                            .transmission_memo(&pen_db, &blocker_amp, &mut memo[1]);
                    if trans < TRANSMISSION_FLOOR {
                        continue;
                    }
                    let resonance = resonance_factor(s.resonance, band.center_hz);
                    if resonance < RESONANCE_FLOOR {
                        continue;
                    }
                    h += acc * (s.elem_pat * (s.ep_gain * resonance * s.pol) * trans);
                }
                for cs in cascades.iter_mut() {
                    let acc_a = cs.alpha.sum_and_advance();
                    let acc_b = cs.beta.sum_and_advance();
                    let c = cs.c;
                    let memo = &mut cs.memo;
                    let trans = c
                        .seg_in
                        .transmission_memo(&pen_db, &blocker_amp, &mut memo[0])
                        * c.seg_hop
                            .transmission_memo(&pen_db, &blocker_amp, &mut memo[1])
                        * c.seg_out
                            .transmission_memo(&pen_db, &blocker_amp, &mut memo[2]);
                    if trans < TRANSMISSION_FLOOR {
                        continue;
                    }
                    let a_scale =
                        c.pat1 * resonance_factor(c.res1, band.center_hz) * c.g_tx * trans;
                    let b_scale =
                        c.pat2 * resonance_factor(c.res2, band.center_hz) * c.pol * c.g_rx / lambda;
                    if cs.alpha_max_mag * a_scale.abs() < COEFF_FLOOR
                        || cs.beta_max_mag * b_scale.abs() < COEFF_FLOOR
                    {
                        continue;
                    }
                    h += (acc_a * a_scale) * (acc_b * b_scale);
                }
                h
            })
            .collect()
    }

    /// Scalar reference arm of [`Self::sweep_evaluate`]: one rotating
    /// `Complex` per path element, strict left-to-right accumulation.
    /// Kept (and exercised by the equivalence tests) to pin the SoA arm's
    /// reassociation bound; production callers should use
    /// [`Self::sweep_evaluate`].
    pub fn sweep_evaluate_scalar(&self, bands: &[Band], responses: &[&[Complex]]) -> Vec<Complex> {
        if bands.len() < 2 {
            // `linearize_at` does the re-phasing accounting on this path.
            return bands
                .iter()
                .map(|b| self.linearize_at(b).evaluate(responses))
                .collect();
        }
        surfos_obs::add("channel.rephasings", bands.len() as u64);
        let tau = 2.0 * std::f64::consts::PI;
        let four_pi = 4.0 * std::f64::consts::PI;
        let lambda0 = bands[0].wavelength_m();
        let k0 = bands[0].wavenumber();
        let dk = bands[1].wavenumber() - k0;

        // Phasor + its per-step rotation. `value` may carry the
        // band-independent magnitude and the element's response folded in.
        struct Rot {
            value: Complex,
            delta: Complex,
        }
        impl Rot {
            fn new(value: Complex, dphase: f64) -> Self {
                Rot {
                    value,
                    delta: Complex::from_polar(1.0, dphase),
                }
            }
            /// Returns the current value, then advances one grid step.
            fn take(&mut self) -> Complex {
                let v = self.value;
                self.value = v * self.delta;
                v
            }
        }

        let mut direct = self.direct.as_ref().map(|d| {
            (
                d,
                Rot::new(Complex::from_polar(1.0, -tau * d.d / lambda0), -dk * d.d),
            )
        });
        let mut bounces: Option<Vec<(&BounceTrace, Rot)>> = self.bounces.as_ref().map(|bs| {
            bs.iter()
                .map(|b| {
                    (
                        b,
                        Rot::new(
                            Complex::from_polar(1.0, -tau * b.total_length / lambda0),
                            -dk * b.total_length,
                        ),
                    )
                })
                .collect()
        });
        let mut surfaces: Vec<(&SurfaceTrace, Vec<Rot>)> = self
            .surfaces
            .iter()
            .map(|s| {
                let area_eff = s.area * s.efficiency;
                let elems = s
                    .legs
                    .iter()
                    .zip(responses[s.surface])
                    .map(|(leg, r)| {
                        let mag = area_eff / (four_pi * leg.d1 * leg.d2);
                        let phase = -tau * (leg.d1 + leg.d2) / lambda0;
                        Rot::new(
                            Complex::from_polar(mag, phase) * *r,
                            -dk * (leg.d1 + leg.d2),
                        )
                    })
                    .collect();
                (s, elems)
            })
            .collect();
        // Cascade α/β magnitudes are gated against `COEFF_FLOOR` without
        // the responses folded in, so track the largest static magnitude
        // per side alongside the response-weighted phasors.
        struct CascadeSweep<'a> {
            c: &'a CascadeTrace,
            alpha: Vec<Rot>,
            alpha_max_mag: f64,
            beta: Vec<Rot>,
            beta_max_mag: f64,
        }
        let mut cascades: Option<Vec<CascadeSweep<'_>>> = self.cascades.as_ref().map(|cs| {
            cs.iter()
                .map(|c| {
                    let mut alpha_max_mag: f64 = 0.0;
                    let alpha = c
                        .alpha_legs
                        .iter()
                        .zip(responses[c.first])
                        .map(|(leg, r)| {
                            let mag = c.area_eff1 / (four_pi * leg.d1 * c.d_hop);
                            alpha_max_mag = alpha_max_mag.max(mag);
                            let phase = -k0 * (leg.d1 + leg.d2 - c.d_hop) - k0 * c.d_hop;
                            Rot::new(
                                Complex::from_polar(mag, phase) * *r,
                                -dk * (leg.d1 + leg.d2),
                            )
                        })
                        .collect();
                    // β magnitude carries a 1/λ that moves with the band;
                    // keep the static part here and scale per probe.
                    let mut beta_max_mag: f64 = 0.0;
                    let beta = c
                        .beta_legs
                        .iter()
                        .zip(responses[c.second])
                        .map(|(leg, r)| {
                            let mag = c.area_eff2 / leg.d2;
                            beta_max_mag = beta_max_mag.max(mag);
                            let phase = -k0 * (leg.d1 - c.d_hop + leg.d2);
                            Rot::new(
                                Complex::from_polar(mag, phase) * *r,
                                -dk * (leg.d1 - c.d_hop + leg.d2),
                            )
                        })
                        .collect();
                    CascadeSweep {
                        c,
                        alpha,
                        alpha_max_mag,
                        beta,
                        beta_max_mag,
                    }
                })
                .collect()
        });

        bands
            .iter()
            .map(|band| {
                let lambda = band.wavelength_m();
                let mut h = Complex::ZERO;
                if let Some((d, rot)) = direct.as_mut() {
                    let mag = lambda / (four_pi * d.d);
                    h += rot.take() * (mag * d.pat_pol * d.segment.transmission(band));
                }
                if let Some(bounces) = bounces.as_mut() {
                    let mut total = Complex::ZERO;
                    for (b, rot) in bounces.iter_mut() {
                        // Phasors advance every step, gated or not.
                        let v = rot.take();
                        let trans = b.seg_in.transmission(band) * b.seg_out.transmission(band);
                        if trans < TRANSMISSION_FLOOR {
                            continue;
                        }
                        let mag = lambda / (four_pi * b.total_length);
                        let rho = b.material.reflection_amplitude(band);
                        total += v * (mag * rho * b.pat * b.pol * trans);
                    }
                    h += total;
                }
                for (s, elems) in surfaces.iter_mut() {
                    // Phasors must advance every step, gated or not, so
                    // accumulate unconditionally and gate the scale.
                    let mut acc = Complex::ZERO;
                    for rot in elems.iter_mut() {
                        acc += rot.take();
                    }
                    let trans = s.seg_in.transmission(band) * s.seg_out.transmission(band);
                    if trans < TRANSMISSION_FLOOR {
                        continue;
                    }
                    let resonance = resonance_factor(s.resonance, band.center_hz);
                    if resonance < RESONANCE_FLOOR {
                        continue;
                    }
                    h += acc * (s.elem_pat * (s.ep_gain * resonance * s.pol) * trans);
                }
                if let Some(cascades) = cascades.as_mut() {
                    for cs in cascades.iter_mut() {
                        let mut acc_a = Complex::ZERO;
                        for rot in cs.alpha.iter_mut() {
                            acc_a += rot.take();
                        }
                        let mut acc_b = Complex::ZERO;
                        for rot in cs.beta.iter_mut() {
                            acc_b += rot.take();
                        }
                        let c = cs.c;
                        let trans = c.seg_in.transmission(band)
                            * c.seg_hop.transmission(band)
                            * c.seg_out.transmission(band);
                        if trans < TRANSMISSION_FLOOR {
                            continue;
                        }
                        let a_scale =
                            c.pat1 * resonance_factor(c.res1, band.center_hz) * c.g_tx * trans;
                        let b_scale =
                            c.pat2 * resonance_factor(c.res2, band.center_hz) * c.pol * c.g_rx
                                / lambda;
                        if cs.alpha_max_mag * a_scale.abs() < COEFF_FLOOR
                            || cs.beta_max_mag * b_scale.abs() < COEFF_FLOOR
                        {
                            continue;
                        }
                        h += (acc_a * a_scale) * (acc_b * b_scale);
                    }
                }
                h
            })
            .collect()
    }

    /// Total number of stored per-element legs (memory diagnostic).
    pub fn leg_count(&self) -> usize {
        self.surfaces.iter().map(|s| s.legs.len()).sum::<usize>()
            + self
                .cascades
                .iter()
                .flatten()
                .map(|c| c.alpha_legs.len() + c.beta_legs.len())
                .sum::<usize>()
    }
}
