//! Incremental re-linearization for blocker-only mutations.
//!
//! A walk tick moves blockers and nothing else. Blockers enter the path
//! math through exactly one door: each segment's blocker-crossing material
//! list. Every other ingredient of a [`ChannelTrace`] — path existence,
//! distances, pattern/polarization factors, wall crossings, surface
//! obstructions — is blocker-independent. So instead of re-tracing a link
//! when blockers move, a [`LinkState`] keeps the link's trace *and* the
//! per-path evaluated values (direct gain, bounce gains, surface and
//! cascade terms), diffs each path's crossing set against the new blocker
//! configuration, and re-evaluates only the paths whose crossings changed.
//! Unchanged paths are patched through verbatim.
//!
//! Bit-exactness contract: [`LinkState::assemble`] reproduces
//! [`ChannelTrace::linearize_at`] operation for operation (same
//! accumulation order and grouping, same gating), and every stored value
//! was produced by the very functions `linearize_at` calls — so the
//! incrementally refreshed linearization is bit-identical to a cold
//! full-rebuild trace of the same scene. The property tests in
//! `tests/incremental_dynamics.rs` hold this across random walks.

use crate::dynamics::Blocker;
use crate::index::SceneIndex;
use crate::linear::{BilinearTerm, LinearTerm, Linearization};
use crate::trace::ChannelTrace;
use surfos_em::band::Band;
use surfos_em::complex::Complex;

/// What one [`LinkState::refresh`] did: per-path patch/retrace counts and
/// whether anything changed (if not, the previously assembled
/// linearization is still exact and callers keep sharing it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefreshOutcome {
    /// At least one path's crossing set changed.
    pub changed: bool,
    /// Paths whose crossings were unchanged: prior values patched through.
    pub patched: u64,
    /// Paths re-evaluated because a blocker entered or left them.
    pub retraced: u64,
}

/// A link's trace plus its per-path evaluated values at one band — the
/// unit the linearization cache stores so blocker steps refresh instead
/// of re-trace.
#[derive(Debug, Clone)]
pub struct LinkState {
    trace: ChannelTrace,
    direct_gain: Complex,
    bounce_gains: Vec<Complex>,
    /// Parallel to `trace.surfaces`; `None` where the band-dependent gates
    /// (wall burial, resonance) pruned the term.
    linear_terms: Vec<Option<LinearTerm>>,
    /// Parallel to `trace.cascades`; `None` where gated.
    bilinear_terms: Vec<Option<BilinearTerm>>,
}

impl LinkState {
    /// Evaluates every path of `trace` at `band` and stores the results.
    pub fn new(trace: ChannelTrace, band: &Band) -> Self {
        let direct_gain = trace
            .direct
            .as_ref()
            .map_or(Complex::ZERO, |d| d.gain_at(band));
        let bounce_gains = trace
            .bounces
            .as_ref()
            .map_or_else(Vec::new, |bs| bs.iter().map(|b| b.gain_at(band)).collect());
        let linear_terms = trace
            .surfaces
            .iter()
            .map(|s| s.linear_term_at(band))
            .collect();
        let bilinear_terms = trace
            .cascades
            .as_ref()
            .map_or_else(Vec::new, |cs| cs.iter().map(|c| c.term_at(band)).collect());
        LinkState {
            trace,
            direct_gain,
            bounce_gains,
            linear_terms,
            bilinear_terms,
        }
    }

    /// Assembles the stored per-path values into a [`Linearization`],
    /// replicating [`ChannelTrace::linearize_at`]'s accumulation order and
    /// grouping exactly (direct gain first, bounce total accumulated
    /// separately then added, gated terms filtered in path order).
    pub fn assemble(&self) -> Linearization {
        let mut constant = match &self.trace.direct {
            Some(_) => self.direct_gain,
            None => Complex::ZERO,
        };
        if self.trace.bounces.is_some() {
            let mut total = Complex::ZERO;
            for g in &self.bounce_gains {
                total += *g;
            }
            constant += total;
        }
        let linear = self.linear_terms.iter().filter_map(Clone::clone).collect();
        let bilinear = self
            .bilinear_terms
            .iter()
            .filter_map(Clone::clone)
            .collect();
        Linearization {
            constant,
            linear,
            bilinear,
        }
    }

    /// Diffs every path's blocker-crossing set against `blockers` (with
    /// `index` the refitted scene index carrying the matching padded boxes
    /// and their interval bank) and re-evaluates only the paths whose
    /// crossings changed. Cost is `O(paths · blockers / 8)` bank sweeps
    /// plus exact tests on survivors plus re-evaluation of the (typically
    /// few) affected paths.
    pub fn refresh(
        &mut self,
        blockers: &[Blocker],
        index: &SceneIndex,
        band: &Band,
    ) -> RefreshOutcome {
        let boxes = index.blocker_boxes();
        let bank = index.blocker_bank();
        let mut out = RefreshOutcome::default();
        let mut tally = |changed: bool| {
            if changed {
                out.retraced += 1;
                out.changed = true;
            } else {
                out.patched += 1;
            }
            changed
        };
        if let Some(d) = self.trace.direct.as_mut() {
            if tally(d.segment.refresh_blockers(blockers, boxes, bank)) {
                self.direct_gain = d.gain_at(band);
            }
        }
        if let Some(bs) = self.trace.bounces.as_mut() {
            for (b, g) in bs.iter_mut().zip(self.bounce_gains.iter_mut()) {
                // Both legs must refresh even when the first already
                // changed, so no `||` short-circuit.
                let c_in = b.seg_in.refresh_blockers(blockers, boxes, bank);
                let c_out = b.seg_out.refresh_blockers(blockers, boxes, bank);
                if tally(c_in | c_out) {
                    *g = b.gain_at(band);
                }
            }
        }
        for (s, t) in self
            .trace
            .surfaces
            .iter_mut()
            .zip(self.linear_terms.iter_mut())
        {
            let c_in = s.seg_in.refresh_blockers(blockers, boxes, bank);
            let c_out = s.seg_out.refresh_blockers(blockers, boxes, bank);
            if tally(c_in | c_out) {
                *t = s.linear_term_at(band);
            }
        }
        if let Some(cs) = self.trace.cascades.as_mut() {
            for (c, t) in cs.iter_mut().zip(self.bilinear_terms.iter_mut()) {
                let c_in = c.seg_in.refresh_blockers(blockers, boxes, bank);
                let c_hop = c.seg_hop.refresh_blockers(blockers, boxes, bank);
                let c_out = c.seg_out.refresh_blockers(blockers, boxes, bank);
                if tally(c_in | c_hop | c_out) {
                    *t = c.term_at(band);
                }
            }
        }
        out
    }
}
