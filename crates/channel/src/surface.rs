//! The simulator's physical model of a deployed metasurface.
//!
//! `surfos-hw` owns specs, drivers and wire formats; this type owns the
//! *physics*: where the surface is, its element lattice, and the complex
//! per-element response currently programmed into it. The hardware manager
//! maps driver configurations onto [`SurfaceInstance::set_response`].

use serde::{Deserialize, Serialize};
use surfos_em::antenna::{ElementPattern, Pattern};
use surfos_em::array::ArrayGeometry;
use surfos_em::complex::Complex;
use surfos_geometry::bvh::Aabb;
use surfos_geometry::{Pose, Vec3};

/// Whether a surface acts on signals by reflection, transmission, or both
/// (transflective, like mmWall).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OperationMode {
    /// Signals bounce off the front face (ScatterMIMO, MilliMirror, AutoMS…).
    Reflective,
    /// Signals pass through, front ↔ back (LAIA, RFlens, PMSat…).
    Transmissive,
    /// Both directions supported (RFocus, LLAMA, mmWall).
    Transflective,
}

impl OperationMode {
    /// Can this surface serve a transmitter on side `tx_front` and a
    /// receiver on side `rx_front` (booleans: in front of the plane)?
    pub fn serves(self, tx_front: bool, rx_front: bool) -> bool {
        match self {
            OperationMode::Reflective => tx_front && rx_front,
            OperationMode::Transmissive => tx_front != rx_front,
            OperationMode::Transflective => true,
        }
    }
}

/// A metasurface deployed in the environment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurfaceInstance {
    /// Unique name, e.g. `"passive0"`.
    pub id: String,
    /// Mounting pose. Local +z is the front face.
    pub pose: Pose,
    /// Element lattice.
    pub geometry: ArrayGeometry,
    /// Per-element radiation pattern (relative to the surface normal).
    pub pattern: ElementPattern,
    /// Element amplitude efficiency in `[0, 1]` (losses in the element).
    pub efficiency: f64,
    /// Reflective / transmissive / transflective.
    pub mode: OperationMode,
    /// Amplitude factor applied to *other* signals whose rays cross this
    /// surface's aperture — the §2.1 off-band interaction ("surfaces
    /// designed for 2.4 GHz may block 3 GHz cellular and 5 GHz Wi-Fi").
    /// `1.0` (default) = transparent; the kernel sets it from the design's
    /// wideband frequency response when simulating other bands.
    pub obstruction_amplitude: f64,
    /// Polarization rotation applied to scattered signals, radians
    /// (LLAMA-style control). Zero = polarization preserved.
    pub polarization_rot: f64,
    /// The surface's resonance: `(centre_hz, fractional_width)`. Elements
    /// only interact strongly near resonance; the scattering efficiency
    /// scales by a Lorentzian in the detuning (Scrolls-style frequency
    /// control re-tunes the centre). `None` = always resonant.
    pub resonance: Option<(f64, f64)>,
    /// The programmed complex response of each element (row-major).
    /// Unit magnitude for pure phase control; see `surfos-hw` for how
    /// driver configurations map here.
    response: Vec<Complex>,
}

impl SurfaceInstance {
    /// Creates a surface with all elements at the identity response
    /// (`1 + 0j`, i.e. specular behaviour).
    ///
    /// # Panics
    /// Panics if `efficiency` is outside `[0, 1]`.
    pub fn new(
        id: impl Into<String>,
        pose: Pose,
        geometry: ArrayGeometry,
        mode: OperationMode,
    ) -> Self {
        SurfaceInstance {
            id: id.into(),
            pose,
            geometry,
            pattern: ElementPattern::LAMBERTIAN,
            efficiency: 0.8,
            mode,
            obstruction_amplitude: 1.0,
            polarization_rot: 0.0,
            resonance: None,
            response: vec![Complex::ONE; geometry.len()],
        }
    }

    /// Sets the resonance `(centre_hz, fractional_width)`.
    ///
    /// # Panics
    /// Panics on non-positive centre or width.
    pub fn with_resonance(mut self, center_hz: f64, fractional_width: f64) -> Self {
        assert!(center_hz > 0.0, "resonance centre must be positive");
        assert!(fractional_width > 0.0, "resonance width must be positive");
        self.resonance = Some((center_hz, fractional_width));
        self
    }

    /// The resonance efficiency factor at an operating frequency:
    /// Lorentzian `1/(1+x²)` with `x = detuning / (width·centre)`.
    pub fn resonance_factor(&self, freq_hz: f64) -> f64 {
        match self.resonance {
            None => 1.0,
            Some((center, width)) => {
                let x = (freq_hz - center) / (width * center);
                1.0 / (1.0 + x * x)
            }
        }
    }

    /// Sets the off-band obstruction amplitude (see field docs).
    ///
    /// # Panics
    /// Panics if outside `[0, 1]`.
    pub fn with_obstruction(mut self, amplitude: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&amplitude),
            "obstruction amplitude must be within [0, 1]"
        );
        self.obstruction_amplitude = amplitude;
        self
    }

    /// Does the open segment `from → to` pass through this surface's
    /// aperture rectangle? Endpoints on the plane (within 1 mm) do not
    /// count, so a surface never obstructs its own scatter legs.
    pub fn intersects_segment(&self, from: Vec3, to: Vec3) -> bool {
        let a = self.pose.world_to_local(from);
        let b = self.pose.world_to_local(to);
        // Must cross the local z = 0 plane strictly between the endpoints.
        if a.z.abs() < 1e-3 || b.z.abs() < 1e-3 || a.z.signum() == b.z.signum() {
            return false;
        }
        let t = a.z / (a.z - b.z);
        let x = a.x + (b.x - a.x) * t;
        let y = a.y + (b.y - a.y) * t;
        let half_w = self.geometry.cols as f64 * self.geometry.dx / 2.0;
        let half_h = self.geometry.rows as f64 * self.geometry.dy / 2.0;
        x.abs() <= half_w && y.abs() <= half_h
    }

    /// The world-space bounding box of the aperture rectangle: the box
    /// around its four corners. Every crossing [`Self::intersects_segment`]
    /// accepts lies in the aperture plane inside this box, so a padded copy
    /// is a conservative prefilter for obstruction tests.
    pub fn aperture_aabb(&self) -> Aabb {
        let half_w = self.geometry.cols as f64 * self.geometry.dx / 2.0;
        let half_h = self.geometry.rows as f64 * self.geometry.dy / 2.0;
        Aabb::from_points(
            [
                Vec3::new(-half_w, -half_h, 0.0),
                Vec3::new(half_w, -half_h, 0.0),
                Vec3::new(-half_w, half_h, 0.0),
                Vec3::new(half_w, half_h, 0.0),
            ]
            .into_iter()
            .map(|c| self.pose.local_to_world(c)),
        )
    }

    /// Sets the element amplitude efficiency.
    ///
    /// # Panics
    /// Panics if outside `[0, 1]`.
    pub fn with_efficiency(mut self, efficiency: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&efficiency),
            "efficiency must be within [0, 1]"
        );
        self.efficiency = efficiency;
        self
    }

    /// Sets the per-element pattern.
    pub fn with_pattern(mut self, pattern: ElementPattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.geometry.len()
    }

    /// True if the surface has no elements (impossible by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.geometry.is_empty()
    }

    /// The current per-element response.
    #[inline]
    pub fn response(&self) -> &[Complex] {
        &self.response
    }

    /// Programs the per-element complex response.
    ///
    /// # Panics
    /// Panics if the length does not match the element count, or any value
    /// is non-finite or has magnitude above 1 + 1e-9 (passive surfaces
    /// cannot amplify).
    pub fn set_response(&mut self, response: Vec<Complex>) {
        assert_eq!(
            response.len(),
            self.geometry.len(),
            "response length must match element count"
        );
        for (i, r) in response.iter().enumerate() {
            assert!(!r.is_invalid(), "non-finite response at element {i}");
            assert!(
                r.abs() <= 1.0 + 1e-9,
                "element {i} response magnitude {} exceeds 1 (passive surface cannot amplify)",
                r.abs()
            );
        }
        self.response = response;
    }

    /// Convenience: program pure phase shifts (unit magnitude).
    pub fn set_phases(&mut self, phases: &[f64]) {
        assert_eq!(
            phases.len(),
            self.geometry.len(),
            "phase count must match element count"
        );
        self.response = phases.iter().map(|&p| Complex::cis(p)).collect();
    }

    /// World position of element `index`.
    pub fn element_world_position(&self, index: usize) -> Vec3 {
        let (r, c) = self.geometry.row_col(index);
        let p = self.geometry.element_position(r, c);
        self.pose.local_to_world(Vec3::new(p[0], p[1], p[2]))
    }

    /// Amplitude pattern gain of an element towards a world point
    /// (angle measured from the surface normal).
    pub fn element_gain_towards(&self, p: Vec3) -> f64 {
        let theta = self.pose.off_boresight_angle(p);
        self.pattern.amplitude_gain(theta)
    }

    /// True if the point is on the front side of the surface plane.
    pub fn is_in_front(&self, p: Vec3) -> bool {
        self.pose.is_in_front(p)
    }

    /// Physical aperture area in m².
    pub fn area_m2(&self) -> f64 {
        self.geometry.area_m2()
    }

    /// Area of one element in m².
    pub fn element_area_m2(&self) -> f64 {
        self.geometry.dx * self.geometry.dy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn surface() -> SurfaceInstance {
        let pose = Pose::wall_mounted(Vec3::new(0.0, 0.0, 1.5), Vec3::X);
        SurfaceInstance::new(
            "s0",
            pose,
            ArrayGeometry::new(4, 4, 0.005, 0.005),
            OperationMode::Reflective,
        )
    }

    #[test]
    fn identity_response_by_default() {
        let s = surface();
        assert_eq!(s.len(), 16);
        assert!(s
            .response()
            .iter()
            .all(|r| (*r - Complex::ONE).abs() < 1e-12));
    }

    #[test]
    fn set_phases_unit_magnitude() {
        let mut s = surface();
        let phases: Vec<f64> = (0..16).map(|k| k as f64 * 0.3).collect();
        s.set_phases(&phases);
        for (r, &p) in s.response().iter().zip(&phases) {
            assert!((r.abs() - 1.0).abs() < 1e-12);
            assert!((r.arg() - surfos_em::phase::wrap_phase_signed(p)).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "response length must match")]
    fn wrong_length_rejected() {
        surface().set_response(vec![Complex::ONE; 3]);
    }

    #[test]
    #[should_panic(expected = "cannot amplify")]
    fn amplifying_response_rejected() {
        surface().set_response(vec![Complex::new(2.0, 0.0); 16]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_response_rejected() {
        surface().set_response(vec![Complex::new(f64::NAN, 0.0); 16]);
    }

    #[test]
    fn element_positions_span_aperture() {
        let s = surface();
        let p0 = s.element_world_position(0);
        let p15 = s.element_world_position(15);
        // 4×4 at 5 mm pitch: diagonal span = 3·5mm in both local axes.
        let want = ((0.015f64).powi(2) * 2.0).sqrt();
        assert!((p0.distance(p15) - want).abs() < 1e-9);
        // All on the plane x = 0 (surface faces +x).
        for i in 0..16 {
            assert!(s.element_world_position(i).x.abs() < 1e-9);
        }
    }

    #[test]
    fn mode_gating() {
        assert!(OperationMode::Reflective.serves(true, true));
        assert!(!OperationMode::Reflective.serves(true, false));
        assert!(OperationMode::Transmissive.serves(true, false));
        assert!(!OperationMode::Transmissive.serves(true, true));
        assert!(OperationMode::Transflective.serves(true, true));
        assert!(OperationMode::Transflective.serves(false, true));
    }

    #[test]
    fn front_side_detection() {
        let s = surface();
        assert!(s.is_in_front(Vec3::new(1.0, 0.0, 1.5)));
        assert!(!s.is_in_front(Vec3::new(-1.0, 0.0, 1.5)));
    }

    #[test]
    fn areas() {
        let s = surface();
        assert!((s.element_area_m2() - 2.5e-5).abs() < 1e-12);
        assert!((s.area_m2() - 16.0 * 2.5e-5).abs() < 1e-12);
    }
}
