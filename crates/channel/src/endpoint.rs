//! Endpoints: the radios at the edges of every channel.

use serde::{Deserialize, Serialize};
use surfos_em::antenna::ElementPattern;
use surfos_geometry::{Pose, Vec3};

/// What kind of device an endpoint is. SurfOS treats them uniformly for
/// propagation; the kind matters to services (feedback comes from APs,
/// powering targets are tags, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EndpointKind {
    /// Infrastructure access point or base station.
    AccessPoint,
    /// A user device (phone, laptop, VR headset…).
    Client,
    /// A low-power sensor or RF-powered tag.
    SensorTag,
}

/// A transmitter/receiver in the environment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Endpoint {
    /// Unique name, e.g. `"ap0"` or `"VR_headset"`.
    pub id: String,
    /// Device class.
    pub kind: EndpointKind,
    /// Placement and boresight orientation.
    pub pose: Pose,
    /// Antenna pattern.
    pub pattern: ElementPattern,
    /// Transmit power in dBm (conducted; pattern gain is applied per path).
    pub tx_power_dbm: f64,
    /// Receiver noise figure in dB.
    pub noise_figure_db: f64,
    /// Linear polarization angle in radians (scalar model: 0 = vertical).
    /// Mismatched ends lose `cos(Δψ)` in amplitude.
    pub polarization_rad: f64,
}

impl Endpoint {
    /// A typical indoor mmWave access point: sectoral 20 dBi pattern,
    /// 20 dBm transmit power, 7 dB noise figure.
    pub fn access_point(id: impl Into<String>, pose: Pose) -> Self {
        Endpoint {
            id: id.into(),
            kind: EndpointKind::AccessPoint,
            pose,
            pattern: ElementPattern::mmwave_ap(),
            tx_power_dbm: 20.0,
            noise_figure_db: 7.0,
            polarization_rad: 0.0,
        }
    }

    /// A client device: near-omni 2 dBi antenna, 15 dBm, 9 dB noise figure.
    pub fn client(id: impl Into<String>, position: Vec3) -> Self {
        Endpoint {
            id: id.into(),
            kind: EndpointKind::Client,
            // Clients are orientation-agnostic: face +x by convention.
            pose: Pose::wall_mounted(position, Vec3::X),
            pattern: ElementPattern::client(),
            tx_power_dbm: 15.0,
            noise_figure_db: 9.0,
            polarization_rad: 0.0,
        }
    }

    /// A passive tag for sensing/powering workloads: isotropic, 0 dBm
    /// backscatter-equivalent power, noisy receiver.
    pub fn sensor_tag(id: impl Into<String>, position: Vec3) -> Self {
        Endpoint {
            id: id.into(),
            kind: EndpointKind::SensorTag,
            pose: Pose::wall_mounted(position, Vec3::X),
            pattern: ElementPattern::Isotropic,
            tx_power_dbm: 0.0,
            noise_figure_db: 12.0,
            polarization_rad: 0.0,
        }
    }

    /// Amplitude antenna gain towards a world point.
    pub fn amplitude_gain_towards(&self, p: Vec3) -> f64 {
        use surfos_em::antenna::Pattern;
        let theta = self.pose.off_boresight_angle(p);
        self.pattern.amplitude_gain(theta)
    }

    /// Position shorthand.
    #[inline]
    pub fn position(&self) -> Vec3 {
        self.pose.position
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kinds() {
        let ap = Endpoint::access_point("ap0", Pose::wall_mounted(Vec3::ZERO, Vec3::X));
        let cl = Endpoint::client("c0", Vec3::xy(1.0, 1.0));
        let tag = Endpoint::sensor_tag("t0", Vec3::xy(2.0, 2.0));
        assert_eq!(ap.kind, EndpointKind::AccessPoint);
        assert_eq!(cl.kind, EndpointKind::Client);
        assert_eq!(tag.kind, EndpointKind::SensorTag);
    }

    #[test]
    fn ap_gain_is_directional() {
        let ap = Endpoint::access_point("ap0", Pose::wall_mounted(Vec3::ZERO, Vec3::X));
        let ahead = ap.amplitude_gain_towards(Vec3::new(5.0, 0.0, 0.0));
        let side = ap.amplitude_gain_towards(Vec3::new(0.0, 5.0, 0.0));
        assert!(ahead > side * 10.0, "ahead={ahead} side={side}");
    }

    #[test]
    fn client_gain_is_near_omni() {
        let cl = Endpoint::client("c0", Vec3::ZERO);
        let a = cl.amplitude_gain_towards(Vec3::new(1.0, 0.0, 0.0));
        let b = cl.amplitude_gain_towards(Vec3::new(-1.0, 1.0, 0.5));
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn tag_is_isotropic_unit_gain() {
        let tag = Endpoint::sensor_tag("t0", Vec3::ZERO);
        assert_eq!(tag.amplitude_gain_towards(Vec3::new(0.0, 0.0, 9.0)), 1.0);
    }
}
