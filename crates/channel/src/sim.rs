//! The channel simulator facade.
//!
//! [`ChannelSim`] owns the environment (plan + blockers), the carrier band
//! and the deployed surfaces, and answers the questions the upper layers
//! ask: link gains, link budgets, heatmaps, and — crucially — channel
//! [`Linearization`]s for the orchestrator's optimizer.

use crate::dynamics::Blocker;
use crate::endpoint::Endpoint;
use crate::heatmap::Heatmap;
use crate::linear::Linearization;
use crate::paths::{self, Medium};
use crate::surface::SurfaceInstance;
use surfos_em::band::Band;
use surfos_em::complex::Complex;
use surfos_em::noise;
use surfos_em::units::amplitude_to_db;
use surfos_geometry::{FloorPlan, Vec3};

/// Everything a service needs to know about one link's quality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkBudget {
    /// Received signal strength in dBm.
    pub rss_dbm: f64,
    /// Noise power in dBm at the receiver over the band.
    pub noise_dbm: f64,
    /// Signal-to-noise ratio in dB.
    pub snr_db: f64,
    /// Shannon capacity in bits/s over the band.
    pub capacity_bps: f64,
}

/// The ray-tracing channel simulator.
#[derive(Debug, Clone)]
pub struct ChannelSim {
    /// The static environment.
    pub plan: FloorPlan,
    /// Carrier band.
    pub band: Band,
    /// Dynamic obstructions.
    pub blockers: Vec<Blocker>,
    /// Include first-order wall reflections (default true).
    pub enable_wall_reflections: bool,
    /// Include two-hop surface cascades (default true).
    pub enable_cascades: bool,
    surfaces: Vec<SurfaceInstance>,
}

impl ChannelSim {
    /// Creates a simulator over an environment at a band, with no surfaces.
    pub fn new(plan: FloorPlan, band: Band) -> Self {
        ChannelSim {
            plan,
            band,
            blockers: Vec::new(),
            enable_wall_reflections: true,
            enable_cascades: true,
            surfaces: Vec::new(),
        }
    }

    /// Deploys a surface; returns its index (used in [`Linearization`]s).
    ///
    /// # Panics
    /// Panics if a surface with the same id is already deployed.
    pub fn add_surface(&mut self, surface: SurfaceInstance) -> usize {
        assert!(
            self.surfaces.iter().all(|s| s.id != surface.id),
            "duplicate surface id {:?}",
            surface.id
        );
        self.surfaces.push(surface);
        self.surfaces.len() - 1
    }

    /// The deployed surfaces.
    pub fn surfaces(&self) -> &[SurfaceInstance] {
        &self.surfaces
    }

    /// Mutable access to a surface by index (to program its response).
    pub fn surface_mut(&mut self, index: usize) -> &mut SurfaceInstance {
        &mut self.surfaces[index]
    }

    /// Finds a surface index by id.
    pub fn surface_index(&self, id: &str) -> Option<usize> {
        self.surfaces.iter().position(|s| s.id == id)
    }

    fn medium(&self) -> Medium<'_> {
        Medium {
            plan: &self.plan,
            blockers: &self.blockers,
            obstructions: &self.surfaces,
            band: self.band,
        }
    }

    /// Builds the linearized channel for a link. This is the expensive
    /// (ray-tracing) operation; everything downstream reuses its output.
    pub fn linearize(&self, tx: &Endpoint, rx: &Endpoint) -> Linearization {
        let medium = self.medium();
        let mut constant = paths::direct_gain(&medium, tx, rx);
        if self.enable_wall_reflections {
            constant += paths::wall_bounce_gain(&medium, tx, rx);
        }
        let mut linear = Vec::new();
        for (i, s) in self.surfaces.iter().enumerate() {
            if let Some(mut term) = paths::surface_coeffs(&medium, tx, rx, s) {
                term.surface = i;
                linear.push(term);
            }
        }
        let mut bilinear = Vec::new();
        if self.enable_cascades {
            for i in 0..self.surfaces.len() {
                for j in 0..self.surfaces.len() {
                    if i == j {
                        continue;
                    }
                    if let Some(term) =
                        paths::cascade_term(&medium, tx, rx, &self.surfaces, i, j)
                    {
                        bilinear.push(term);
                    }
                }
            }
        }
        Linearization {
            constant,
            linear,
            bilinear,
        }
    }

    /// The per-surface response slices, in index order — the shape
    /// [`Linearization::evaluate`] expects.
    pub fn responses(&self) -> Vec<&[Complex]> {
        self.surfaces.iter().map(|s| s.response()).collect()
    }

    /// The complex channel gain with the surfaces' *current* responses.
    pub fn gain(&self, tx: &Endpoint, rx: &Endpoint) -> Complex {
        self.linearize(tx, rx).evaluate(&self.responses())
    }

    /// Received signal strength in dBm with current responses.
    pub fn rss_dbm(&self, tx: &Endpoint, rx: &Endpoint) -> f64 {
        tx.tx_power_dbm + amplitude_to_db(self.gain(tx, rx).abs())
    }

    /// The full link budget with current responses.
    pub fn link_budget(&self, tx: &Endpoint, rx: &Endpoint) -> LinkBudget {
        let rss_dbm = self.rss_dbm(tx, rx);
        let noise_dbm = noise::noise_power_dbm(self.band.bandwidth_hz, rx.noise_figure_db);
        let snr_db = noise::snr_db(rss_dbm, noise_dbm);
        LinkBudget {
            rss_dbm,
            noise_dbm,
            snr_db,
            capacity_bps: noise::shannon_capacity_bps(snr_db, self.band.bandwidth_hz),
        }
    }

    /// RSS heatmap over a set of receive points (a virtual client is placed
    /// at each point; its antenna/noise follow `rx_template`).
    pub fn rss_heatmap(&self, tx: &Endpoint, points: &[Vec3], rx_template: &Endpoint) -> Heatmap {
        let values = points
            .iter()
            .map(|p| {
                let mut rx = rx_template.clone();
                rx.pose.position = *p;
                self.rss_dbm(tx, &rx)
            })
            .collect();
        Heatmap {
            points: points.to_vec(),
            values,
        }
    }

    /// The wideband frequency response of a link: the complex gain at
    /// `n_points` frequencies across the band, with the surfaces' current
    /// responses. Multipath makes this frequency-selective (notches where
    /// paths cancel); a single-path link is flat. This is the OFDM
    /// subcarrier view a wideband PHY would see.
    ///
    /// Each sample re-traces the environment at its own wavelength, so the
    /// cost is `n_points ×` [`linearize`](Self::linearize).
    ///
    /// # Panics
    /// Panics if `n_points < 2`.
    pub fn frequency_response(
        &self,
        tx: &Endpoint,
        rx: &Endpoint,
        n_points: usize,
    ) -> Vec<(f64, Complex)> {
        assert!(n_points >= 2, "a sweep needs at least two points");
        let lo = self.band.low_hz();
        let hi = self.band.high_hz();
        (0..n_points)
            .map(|i| {
                let f = lo + (hi - lo) * i as f64 / (n_points - 1) as f64;
                // A narrowband probe at this subcarrier: only the centre
                // frequency matters for path phases.
                let mut probe = self.clone();
                probe.band = Band::new(f, self.band.bandwidth_hz.min(f));
                let gain = probe.linearize(tx, rx).evaluate(&probe.responses());
                (f, gain)
            })
            .collect()
    }

    /// SNR heatmap over receive points.
    pub fn snr_heatmap(&self, tx: &Endpoint, points: &[Vec3], rx_template: &Endpoint) -> Heatmap {
        let noise_dbm =
            noise::noise_power_dbm(self.band.bandwidth_hz, rx_template.noise_figure_db);
        let mut map = self.rss_heatmap(tx, points, rx_template);
        for v in &mut map.values {
            *v -= noise_dbm;
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::surface::OperationMode;
    use surfos_em::antenna::ElementPattern;
    use surfos_em::array::ArrayGeometry;
    use surfos_em::band::NamedBand;
    use surfos_geometry::scenario::two_room_apartment;
    use surfos_geometry::Pose;

    fn iso_client(id: &str, pos: Vec3) -> Endpoint {
        let mut e = Endpoint::client(id, pos);
        e.pattern = ElementPattern::Isotropic;
        e
    }

    fn apartment_sim() -> (ChannelSim, Endpoint) {
        let scen = two_room_apartment();
        let band = NamedBand::MmWave28GHz.band();
        let sim = ChannelSim::new(scen.plan.clone(), band);
        let ap = Endpoint::access_point("ap0", scen.ap_pose);
        (sim, ap)
    }

    #[test]
    fn bedroom_is_dead_without_surfaces() {
        let (sim, ap) = apartment_sim();
        // A sliver of energy leaks via the open doorway (real physics), but
        // the room as a whole must be unusable: median SNR below 0 dB and
        // even the doorway-leak spots only marginal.
        let scen = two_room_apartment();
        let grid = scen.target().sample_grid(8, 8, 1.2, 0.3);
        let template = iso_client("probe", Vec3::ZERO);
        let map = sim.snr_heatmap(&ap, &grid, &template);
        assert!(
            map.median() < 0.0,
            "median bedroom SNR should be <0 dB, got {:.1}",
            map.median()
        );
        let deep = iso_client("c", Vec3::new(7.5, 1.0, 1.2));
        let budget = sim.link_budget(&ap, &deep);
        assert!(
            budget.snr_db < 5.0,
            "deep bedroom should be (near) unusable, got {} dB",
            budget.snr_db
        );
    }

    #[test]
    fn living_room_is_covered() {
        let (sim, ap) = apartment_sim();
        let near = iso_client("c", Vec3::new(3.0, 1.5, 1.2));
        let budget = sim.link_budget(&ap, &near);
        assert!(
            budget.snr_db > 10.0,
            "living room should be covered, got {} dB",
            budget.snr_db
        );
    }

    #[test]
    fn surface_focusing_revives_bedroom() {
        let scen = two_room_apartment();
        let band = NamedBand::MmWave28GHz.band();
        let mut sim = ChannelSim::new(scen.plan.clone(), band);

        // A 32×32 programmable surface on the bedroom's north wall, seen by
        // the AP through the doorway; the AP aims its beam at it.
        let pose = *scen.anchor("bedroom-north").unwrap();
        let ap = Endpoint::access_point(
            "ap0",
            Pose::wall_mounted(scen.ap_pose.position, pose.position - scen.ap_pose.position),
        );
        let geom = ArrayGeometry::half_wavelength(32, 32, band.wavelength_m());
        let idx = sim.add_surface(SurfaceInstance::new(
            "prog0",
            pose,
            geom,
            OperationMode::Reflective,
        ));

        let rx = iso_client("c", Vec3::new(6.0, 1.0, 1.2));
        let before = sim.link_budget(&ap, &rx).snr_db;

        // Focus: phase-conjugate the surface coefficients for this link.
        let lin = sim.linearize(&ap, &rx);
        let term = lin
            .linear
            .iter()
            .find(|t| t.surface == idx)
            .expect("surface must serve the link");
        let phases: Vec<f64> = term.coeffs.iter().map(|c| -c.arg()).collect();
        sim.surface_mut(idx).set_phases(&phases);

        let after = sim.link_budget(&ap, &rx).snr_db;
        assert!(
            after > before + 20.0,
            "focusing should add tens of dB: before={before:.1} after={after:.1}"
        );
        assert!(after > 5.0, "focused bedroom link should be usable: {after:.1}");
    }

    #[test]
    fn gain_matches_linearize_evaluate() {
        let (mut sim, ap) = apartment_sim();
        let pose = Pose::wall_mounted(Vec3::new(4.9, 3.2, 1.5), Vec3::new(-1.0, 0.2, 0.0));
        let geom = ArrayGeometry::half_wavelength(8, 8, sim.band.wavelength_m());
        sim.add_surface(SurfaceInstance::new(
            "s0",
            pose,
            geom,
            OperationMode::Reflective,
        ));
        let rx = iso_client("c", Vec3::new(3.0, 2.0, 1.2));
        let g1 = sim.gain(&ap, &rx);
        let lin = sim.linearize(&ap, &rx);
        let g2 = lin.evaluate(&sim.responses());
        assert!((g1 - g2).abs() < 1e-15);
    }

    #[test]
    fn duplicate_surface_id_rejected() {
        let (mut sim, _) = apartment_sim();
        let pose = Pose::wall_mounted(Vec3::new(1.0, 1.0, 1.5), Vec3::X);
        let geom = ArrayGeometry::new(2, 2, 0.005, 0.005);
        sim.add_surface(SurfaceInstance::new(
            "dup",
            pose,
            geom,
            OperationMode::Reflective,
        ));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.add_surface(SurfaceInstance::new(
                "dup",
                pose,
                geom,
                OperationMode::Reflective,
            ));
        }));
        assert!(r.is_err());
    }

    #[test]
    fn blocker_cuts_link() {
        let (mut sim, ap) = apartment_sim();
        let rx = iso_client("c", Vec3::new(3.0, 1.1, 1.2));
        let before = sim.rss_dbm(&ap, &rx);
        // A person standing at the receiver blocks every incoming path
        // (direct and wall bounces all converge there).
        sim.blockers.push(Blocker::person(rx.position()));
        let after = sim.rss_dbm(&ap, &rx);
        assert!(
            before - after > 10.0,
            "blocker should cost >10 dB: before={before:.1} after={after:.1}"
        );
    }

    #[test]
    fn heatmap_covers_grid() {
        let (sim, ap) = apartment_sim();
        let scen = two_room_apartment();
        let grid = scen
            .plan
            .room("living-room")
            .unwrap()
            .sample_grid(5, 5, 1.2, 0.5);
        let template = iso_client("probe", Vec3::ZERO);
        let map = sim.rss_heatmap(&ap, &grid, &template);
        assert_eq!(map.values.len(), 25);
        assert!(map.values.iter().all(|v| v.is_finite()));
        // SNR map is RSS map shifted by the (constant) noise floor.
        let snr = sim.snr_heatmap(&ap, &grid, &template);
        let shift = map.values[0] - snr.values[0];
        for (r, s) in map.values.iter().zip(&snr.values) {
            assert!((r - s - shift).abs() < 1e-9);
        }
    }

    #[test]
    fn frequency_response_flat_for_single_path() {
        // Free space, one path: |H(f)| varies only by the slow Friis
        // factor across the band — no notches.
        let band = NamedBand::MmWave28GHz.band();
        let sim = ChannelSim::new(surfos_geometry::FloorPlan::new(), band);
        let tx = iso_client("tx", Vec3::new(0.0, 0.0, 1.5));
        let rx = iso_client("rx", Vec3::new(5.0, 0.0, 1.5));
        let sweep = sim.frequency_response(&tx, &rx, 32);
        assert_eq!(sweep.len(), 32);
        let mags: Vec<f64> = sweep.iter().map(|(_, g)| g.abs()).collect();
        let (lo, hi) = mags
            .iter()
            .fold((f64::INFINITY, 0.0f64), |(l, h), &m| (l.min(m), h.max(m)));
        assert!(hi / lo < 1.05, "flat channel expected: ripple {}", hi / lo);
    }

    #[test]
    fn frequency_response_selective_under_multipath() {
        // A strong wall reflection alongside the direct path creates
        // frequency-selective fading: notches well below the peak.
        let mut plan = surfos_geometry::FloorPlan::new();
        plan.add_wall(surfos_geometry::Wall::new(
            Vec3::xy(0.0, 1.5),
            Vec3::xy(10.0, 1.5),
            3.0,
            surfos_geometry::Material::Metal,
        ));
        let band = NamedBand::MmWave28GHz.band();
        let sim = ChannelSim::new(plan, band);
        let tx = iso_client("tx", Vec3::new(1.0, 0.0, 1.5));
        let rx = iso_client("rx", Vec3::new(8.0, 0.0, 1.5));
        let sweep = sim.frequency_response(&tx, &rx, 128);
        let mags: Vec<f64> = sweep.iter().map(|(_, g)| g.abs()).collect();
        let (lo, hi) = mags
            .iter()
            .fold((f64::INFINITY, 0.0f64), |(l, h), &m| (l.min(m), h.max(m)));
        assert!(
            hi / lo > 2.0,
            "two comparable paths must produce >6 dB ripple: {}",
            hi / lo
        );
    }

    #[test]
    fn offband_surface_obstructs_crossing_link() {
        // A foreign-band surface standing mid-path attenuates the link by
        // its obstruction factor; a transparent (in-band) one does not.
        let band = NamedBand::WiFi5GHz.band();
        let mut sim = ChannelSim::new(surfos_geometry::FloorPlan::new(), band);
        let tx = iso_client("tx", Vec3::new(0.0, 0.0, 1.5));
        let rx = iso_client("rx", Vec3::new(6.0, 0.0, 1.5));
        let clear = sim.rss_dbm(&tx, &rx);

        // A 2.4 GHz surface (large elements) right across the path,
        // blocking 50 % of the power (amplitude ~0.707).
        let geom = ArrayGeometry::new(10, 10, 0.06, 0.06);
        let pose = Pose::wall_mounted(Vec3::new(3.0, 0.0, 1.5), Vec3::X);
        sim.add_surface(
            SurfaceInstance::new("foreign", pose, geom, OperationMode::Transmissive)
                .with_obstruction(0.707),
        );
        let obstructed = sim.rss_dbm(&tx, &rx);
        assert!(
            (clear - obstructed - 3.0).abs() < 1.5,
            "expected ~3 dB blocking: clear={clear:.1} obstructed={obstructed:.1}"
        );

        // Transparent surfaces change nothing.
        sim.surface_mut(0).obstruction_amplitude = 1.0;
        let transparent = sim.rss_dbm(&tx, &rx);
        assert!((transparent - clear).abs() < 0.75, "clear={clear:.1} transparent={transparent:.1}");
    }

    #[test]
    fn surface_does_not_obstruct_its_own_paths() {
        // A reflective surface with a harsh obstruction factor still
        // serves its own bounce (legs terminate on its plane).
        let band = NamedBand::MmWave28GHz.band();
        let mut sim = ChannelSim::new(surfos_geometry::FloorPlan::new(), band);
        let geom = ArrayGeometry::half_wavelength(8, 8, band.wavelength_m());
        let pose = Pose::wall_mounted(Vec3::new(0.0, 0.0, 1.5), Vec3::X);
        let idx = sim.add_surface(
            SurfaceInstance::new("s", pose, geom, OperationMode::Reflective)
                .with_obstruction(0.01),
        );
        let tx = iso_client("tx", Vec3::new(3.0, 2.0, 1.5));
        let rx = iso_client("rx", Vec3::new(3.0, -2.0, 1.5));
        let lin = sim.linearize(&tx, &rx);
        assert!(
            lin.linear.iter().any(|t| t.surface == idx),
            "surface path must survive its own obstruction factor"
        );
    }

    #[test]
    fn surface_lookup() {
        let (mut sim, _) = apartment_sim();
        let pose = Pose::wall_mounted(Vec3::new(1.0, 1.0, 1.5), Vec3::X);
        let geom = ArrayGeometry::new(2, 2, 0.005, 0.005);
        let idx = sim.add_surface(SurfaceInstance::new(
            "findme",
            pose,
            geom,
            OperationMode::Reflective,
        ));
        assert_eq!(sim.surface_index("findme"), Some(idx));
        assert_eq!(sim.surface_index("nope"), None);
    }
}
