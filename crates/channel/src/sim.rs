//! The channel simulator facade.
//!
//! [`ChannelSim`] owns the environment (plan + blockers), the carrier band
//! and the deployed surfaces, and answers the questions the upper layers
//! ask: link gains, link budgets, heatmaps, and — crucially — channel
//! [`Linearization`]s for the orchestrator's optimizer.
//!
//! ## Evaluation engine
//!
//! Four mechanisms keep repeated queries cheap without changing a single
//! answer (see DESIGN.md, "Channel evaluation engine" and "Spatial
//! acceleration & caching"):
//!
//! - **Trace/evaluate split** — [`ChannelSim::trace`] enumerates a link's
//!   band-independent geometry once; re-phasing it at another carrier is
//!   `O(elements)`. [`ChannelSim::frequency_response`] is one trace plus
//!   N cheap evaluations instead of N full re-traces.
//! - **Two-epoch scene index** — every trace runs through a
//!   [`SceneIndex`] (wall BVH, blocker/aperture boxes, cached element
//!   positions) shared across links, batches and clones. Geometry
//!   mutations split into a *structure epoch* (walls, surfaces, band-free
//!   invalidation: full rebuild) and a *blocker epoch* (walk ticks:
//!   [`SceneIndex::refit_blockers`] recomputes only the `O(blockers)`
//!   boxes, the wall BVH and element positions stay shared). Culling is
//!   conservative, so indexed answers are bit-identical to the
//!   brute-force scan.
//! - **Epoch-keyed incremental linearization cache** — single-link
//!   queries ([`ChannelSim::gain`], [`ChannelSim::rss_dbm`],
//!   [`ChannelSim::link_budget`]) memoize a [`LinkState`] per endpoint
//!   pair, with LRU eviction past `CACHE_CAP` entries. Structure or
//!   band mutations empty the cache; a blocker-only mutation instead
//!   *refreshes* each entry on next use — diffing every path's
//!   blocker-crossing set and re-evaluating only the affected paths,
//!   bit-identical to a cold re-trace. Programming surface *responses*
//!   invalidates nothing, because responses are evaluation inputs, not
//!   geometry.
//! - **Deterministic fan-out** — heatmaps and the batch linearization
//!   APIs evaluate on scoped threads with chunk-ordered reassembly,
//!   bit-identical to serial.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::dynamics::Blocker;
use crate::endpoint::Endpoint;
use crate::heatmap::Heatmap;
use crate::incremental::LinkState;
use crate::index::SceneIndex;
use crate::linear::Linearization;
use crate::par;
use crate::paths::{self, Medium};
use crate::surface::SurfaceInstance;
use crate::trace::ChannelTrace;
use surfos_em::antenna::ElementPattern;
use surfos_em::band::Band;
use surfos_em::complex::Complex;
use surfos_em::noise;
use surfos_em::units::amplitude_to_db;
use surfos_geometry::{FloorPlan, Vec3};

/// Everything a service needs to know about one link's quality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkBudget {
    /// Received signal strength in dBm.
    pub rss_dbm: f64,
    /// Noise power in dBm at the receiver over the band.
    pub noise_dbm: f64,
    /// Signal-to-noise ratio in dB.
    pub snr_db: f64,
    /// Shannon capacity in bits/s over the band.
    pub capacity_bps: f64,
}

/// One memoized link: its [`LinkState`] (trace + per-path values), the
/// assembled linearization, the blocker epoch the state is current at,
/// and the logical tick of its last use (for LRU eviction).
#[derive(Debug)]
struct CacheEntry {
    used: u64,
    blocker_epoch: u64,
    state: LinkState,
    lin: Arc<Linearization>,
}

/// Link states memoized under one structure stamp. Each entry carries
/// the logical tick of its last use, so eviction can drop the coldest
/// entries instead of wiping the map. Entries also carry the blocker
/// epoch they are current at: a blocker-only step leaves the map intact
/// and refreshes stale entries incrementally on next use.
#[derive(Debug, Default)]
struct LinCache {
    stamp: u64,
    /// Monotonic use counter; bumped on every hit, refresh and insert.
    tick: u64,
    map: HashMap<(u64, u64), CacheEntry>,
    /// Lifetime accounting (survives epoch invalidations; carried into
    /// clones).
    hits: u64,
    misses: u64,
    refreshes: u64,
    evictions: u64,
}

/// Lifetime statistics of one simulator's linearization cache. Hits,
/// misses, refreshes and evictions accumulate across geometry epochs (an
/// epoch bump empties the cache, it does not forget the history); `len` is
/// the current entry count. Cloning a [`ChannelSim`] carries the lifetime
/// counters into the clone — the entry map itself starts empty (entries
/// re-fill on first query) — so BENCH attachments built from a clone do
/// not under-report hit rates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the cache unchanged.
    pub hits: u64,
    /// Queries that had to ray-trace (including the first after a
    /// structure-epoch bump).
    pub misses: u64,
    /// Queries answered by incrementally refreshing a cached entry after
    /// a blocker-only mutation (no re-trace).
    pub refreshes: u64,
    /// Entries dropped by LRU eviction at the capacity bound (epoch
    /// invalidations are not evictions).
    pub evictions: u64,
    /// Entries currently cached.
    pub len: usize,
}

/// Lifetime scene-index accounting of one simulator: full builds
/// (structure mutations) vs blocker-box refits (blocker-only mutations).
/// The kernel turns deltas of these into its refit-vs-rebuild telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Full [`SceneIndex::build`]s installed.
    pub builds: u64,
    /// Blocker-box [`SceneIndex::refit_blockers`] installs (structure
    /// shared, `O(blockers)` work).
    pub refits: u64,
}

/// Capacity bound on the linearization cache. A cache this large means the
/// caller is sweeping endpoints (a job for the heatmap / batch APIs, which
/// bypass it); past the cap the least-recently-used eighth is evicted so
/// persistent endpoints stay warm through the sweep.
const CACHE_CAP: usize = 4096;

/// The scene index memoized under one structure-only stamp plus the
/// blocker epoch it was last refit at (the band and enable flags don't
/// shape geometry, so band sweeps reuse the index). A structure-stamp
/// mismatch rebuilds; a blocker-epoch mismatch alone refits.
#[derive(Debug, Default)]
struct IndexCache {
    struct_stamp: u64,
    blocker_epoch: u64,
    index: Option<Arc<SceneIndex>>,
    /// Lifetime build/refit accounting (see [`IndexStats`]).
    builds: u64,
    refits: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn fnv_u64(h: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
}

/// FNV-1a digest of every endpoint field the linearization depends on:
/// pose, antenna pattern and polarization. Power and noise figure are
/// per-query inputs, not geometry, and the id is ignored on purpose — two
/// probes at the same pose share a cache entry.
fn endpoint_fingerprint(e: &Endpoint) -> u64 {
    let mut h = FNV_OFFSET;
    for v in [e.pose.position, e.pose.normal, e.pose.up] {
        for c in [v.x, v.y, v.z] {
            fnv_u64(&mut h, c.to_bits());
        }
    }
    match e.pattern {
        ElementPattern::Isotropic => fnv_u64(&mut h, 1),
        ElementPattern::Cosine { exponent } => {
            fnv_u64(&mut h, 2);
            fnv_u64(&mut h, exponent.to_bits());
        }
        ElementPattern::Sector {
            gain_dbi,
            beamwidth_rad,
            floor_dbi,
        } => {
            fnv_u64(&mut h, 3);
            fnv_u64(&mut h, gain_dbi.to_bits());
            fnv_u64(&mut h, beamwidth_rad.to_bits());
            fnv_u64(&mut h, floor_dbi.to_bits());
        }
    }
    fnv_u64(&mut h, e.polarization_rad.to_bits());
    h
}

/// The ray-tracing channel simulator.
#[derive(Debug)]
pub struct ChannelSim {
    /// The static environment. Adding walls invalidates the linearization
    /// cache automatically; for in-place wall edits call
    /// [`ChannelSim::invalidate_cache`].
    pub plan: FloorPlan,
    /// Carrier band.
    pub band: Band,
    /// Include first-order wall reflections (default true).
    pub enable_wall_reflections: bool,
    /// Include two-hop surface cascades (default true).
    pub enable_cascades: bool,
    blockers: Vec<Blocker>,
    surfaces: Vec<SurfaceInstance>,
    /// Bumped on wall/surface mutations and explicit invalidation; keys
    /// the full-rebuild path (scene index and linearization cache).
    structure_epoch: u64,
    /// Bumped on blocker-only mutations (walk ticks); keys the
    /// refit/refresh fast path.
    blocker_epoch: u64,
    cache: Mutex<LinCache>,
    index: Mutex<IndexCache>,
}

impl Clone for ChannelSim {
    fn clone(&self) -> Self {
        // The clone's geometry is identical, so it shares the scene index
        // Arc (band-probe clones in `frequency_response_naive` then skip
        // the rebuild). The linearization cache's entry map starts empty
        // (link states are heavy; entries re-fill on first query) but the
        // lifetime counters carry over so accounting built from a clone
        // does not under-report.
        let index = {
            let ix = self.index.lock().unwrap();
            IndexCache {
                struct_stamp: ix.struct_stamp,
                blocker_epoch: ix.blocker_epoch,
                index: ix.index.clone(),
                builds: ix.builds,
                refits: ix.refits,
            }
        };
        let cache = {
            let c = self.cache.lock().unwrap();
            LinCache {
                hits: c.hits,
                misses: c.misses,
                refreshes: c.refreshes,
                evictions: c.evictions,
                ..LinCache::default()
            }
        };
        ChannelSim {
            plan: self.plan.clone(),
            band: self.band,
            enable_wall_reflections: self.enable_wall_reflections,
            enable_cascades: self.enable_cascades,
            blockers: self.blockers.clone(),
            surfaces: self.surfaces.clone(),
            structure_epoch: self.structure_epoch,
            blocker_epoch: self.blocker_epoch,
            cache: Mutex::new(cache),
            index: Mutex::new(index),
        }
    }
}

impl ChannelSim {
    /// Creates a simulator over an environment at a band, with no surfaces.
    pub fn new(plan: FloorPlan, band: Band) -> Self {
        ChannelSim {
            plan,
            band,
            blockers: Vec::new(),
            enable_wall_reflections: true,
            enable_cascades: true,
            surfaces: Vec::new(),
            structure_epoch: 0,
            blocker_epoch: 0,
            cache: Mutex::new(LinCache::default()),
            index: Mutex::new(IndexCache::default()),
        }
    }

    /// Deploys a surface; returns its index (used in [`Linearization`]s).
    ///
    /// # Panics
    /// Panics if a surface with the same id is already deployed.
    pub fn add_surface(&mut self, surface: SurfaceInstance) -> usize {
        assert!(
            self.surfaces.iter().all(|s| s.id != surface.id),
            "duplicate surface id {:?}",
            surface.id
        );
        self.structure_epoch += 1;
        self.surfaces.push(surface);
        self.surfaces.len() - 1
    }

    /// The deployed surfaces.
    pub fn surfaces(&self) -> &[SurfaceInstance] {
        &self.surfaces
    }

    /// Mutable access to a surface by index. Conservatively treated as a
    /// geometry mutation (the borrow can move or re-mode the surface); for
    /// the response-programming hot path use
    /// [`ChannelSim::set_surface_phases`] / [`ChannelSim::set_surface_response`],
    /// which keep the linearization cache warm.
    pub fn surface_mut(&mut self, index: usize) -> &mut SurfaceInstance {
        self.structure_epoch += 1;
        &mut self.surfaces[index]
    }

    /// Programs a surface's element phases (unit-amplitude response)
    /// *without* invalidating the linearization cache: the response is an
    /// input to [`Linearization::evaluate`], not part of the geometry.
    pub fn set_surface_phases(&mut self, index: usize, phases: &[f64]) {
        self.surfaces[index].set_phases(phases);
    }

    /// Programs a surface's complex element response without invalidating
    /// the linearization cache.
    pub fn set_surface_response(&mut self, index: usize, response: Vec<Complex>) {
        self.surfaces[index].set_response(response);
    }

    /// Finds a surface index by id.
    pub fn surface_index(&self, id: &str) -> Option<usize> {
        self.surfaces.iter().position(|s| s.id == id)
    }

    /// The dynamic obstructions.
    pub fn blockers(&self) -> &[Blocker] {
        &self.blockers
    }

    /// Adds a dynamic obstruction. A blocker-only mutation: the scene
    /// index refits instead of rebuilding, and cached link states refresh
    /// incrementally on next use.
    pub fn add_blocker(&mut self, blocker: Blocker) {
        self.blocker_epoch += 1;
        self.blockers.push(blocker);
    }

    /// Replaces the dynamic obstructions (e.g. one step of a walk). A
    /// blocker-only mutation — see [`ChannelSim::add_blocker`].
    pub fn set_blockers(&mut self, blockers: Vec<Blocker>) {
        self.blocker_epoch += 1;
        self.blockers = blockers;
    }

    /// Removes all dynamic obstructions. A blocker-only mutation — see
    /// [`ChannelSim::add_blocker`].
    pub fn clear_blockers(&mut self) {
        self.blocker_epoch += 1;
        self.blockers.clear();
    }

    /// Forces full invalidation (scene index rebuild, linearization cache
    /// empty) after an in-place mutation the simulator cannot observe
    /// (e.g. editing a wall through [`ChannelSim::plan`]).
    pub fn invalidate_cache(&mut self) {
        self.structure_epoch += 1;
    }

    /// The `(structure, blocker)` epoch pair — diagnostics and tests.
    pub fn epochs(&self) -> (u64, u64) {
        (self.structure_epoch, self.blocker_epoch)
    }

    /// Everything band-dependent that keys the linearization cache: the
    /// structure epoch, the band, the enable flags and the wall count (so
    /// `plan.add_wall` through the public field invalidates without an
    /// explicit call). The blocker epoch is deliberately excluded — a
    /// blocker step refreshes entries instead of dropping them.
    fn stamp(&self) -> u64 {
        let mut h = FNV_OFFSET;
        fnv_u64(&mut h, self.structure_epoch);
        fnv_u64(&mut h, self.band.center_hz.to_bits());
        fnv_u64(&mut h, self.band.bandwidth_hz.to_bits());
        fnv_u64(&mut h, self.plan.walls().len() as u64);
        fnv_u64(
            &mut h,
            ((self.enable_wall_reflections as u64) << 1) | self.enable_cascades as u64,
        );
        h
    }

    /// The structure-only slice of [`ChannelSim::stamp`]: what the scene
    /// index's shared structure depends on. Band and enable flags are
    /// deliberately excluded — a band sweep reuses the same index.
    fn geometry_stamp(&self) -> u64 {
        let mut h = FNV_OFFSET;
        fnv_u64(&mut h, self.structure_epoch);
        fnv_u64(&mut h, self.plan.walls().len() as u64);
        h
    }

    /// The scene's spatial index for the current epochs, built on first
    /// use and shared (via `Arc`) across every trace — single links,
    /// batches, heatmaps, kernel ticks. A structure mutation rebuilds it
    /// in full; a blocker-only mutation *refits* it: the new index shares
    /// the previous structure (wall BVH, aperture boxes, element
    /// positions) and only the `O(blockers)` padded blocker boxes are
    /// recomputed.
    pub fn scene_index(&self) -> Arc<SceneIndex> {
        let stamp = self.geometry_stamp();
        let bepoch = self.blocker_epoch;
        let base = {
            let ix = self.index.lock().unwrap();
            if ix.struct_stamp == stamp {
                if let Some(index) = &ix.index {
                    if ix.blocker_epoch == bepoch {
                        return Arc::clone(index);
                    }
                    // Structure intact, blockers moved: refit off this.
                    Some(Arc::clone(index))
                } else {
                    None
                }
            } else {
                None
            }
        };
        // Build/refit outside the lock; the epochs cannot change underneath
        // us (mutation needs `&mut self`). Concurrent misses may duplicate
        // the work but never block each other on it.
        let refit = base.is_some();
        let built = match base {
            Some(base) => {
                surfos_obs::add("channel.refits", 1);
                Arc::new(base.refit_blockers(&self.blockers))
            }
            None => {
                surfos_obs::add("channel.index.builds", 1);
                Arc::new(SceneIndex::build(
                    &self.plan,
                    &self.blockers,
                    &self.surfaces,
                ))
            }
        };
        let mut ix = self.index.lock().unwrap();
        if ix.struct_stamp == stamp && ix.blocker_epoch == bepoch {
            if let Some(existing) = &ix.index {
                // Another thread won the race; share its index so
                // `Arc::ptr_eq` holds across the whole epoch pair.
                return Arc::clone(existing);
            }
        }
        if refit {
            ix.refits += 1;
        } else {
            ix.builds += 1;
        }
        ix.struct_stamp = stamp;
        ix.blocker_epoch = bepoch;
        ix.index = Some(Arc::clone(&built));
        built
    }

    /// Lifetime scene-index build/refit counts. See [`IndexStats`].
    pub fn index_stats(&self) -> IndexStats {
        let ix = self.index.lock().unwrap();
        IndexStats {
            builds: ix.builds,
            refits: ix.refits,
        }
    }

    /// [`ChannelSim::trace`] through an already-resolved scene index. The
    /// batch APIs hoist [`ChannelSim::scene_index`] out of their loops and
    /// fan out through this.
    fn trace_with(&self, index: &SceneIndex, tx: &Endpoint, rx: &Endpoint) -> ChannelTrace {
        surfos_obs::add("channel.traces", 1);
        let medium =
            Medium::with_index(&self.plan, &self.blockers, &self.surfaces, self.band, index);
        paths::trace_channel(
            &medium,
            tx,
            rx,
            &self.surfaces,
            self.enable_wall_reflections,
            self.enable_cascades,
        )
    }

    /// Enumerates a link's complete band-independent path geometry. This is
    /// the expensive (ray-tracing) operation; everything downstream —
    /// [`ChannelSim::linearize`], [`ChannelSim::frequency_response`], the
    /// cache — replays it per band in `O(elements)`.
    pub fn trace(&self, tx: &Endpoint, rx: &Endpoint) -> ChannelTrace {
        let index = self.scene_index();
        self.trace_with(&index, tx, rx)
    }

    /// Builds the linearized channel for a link: one fresh trace, evaluated
    /// at the simulator's band.
    pub fn linearize(&self, tx: &Endpoint, rx: &Endpoint) -> Linearization {
        let _span = surfos_obs::span!("channel.linearize");
        self.trace(tx, rx).linearize_at(&self.band)
    }

    /// Linearizes many links in one call: the scene index and medium
    /// snapshot are resolved once, then the pairs fan out across scoped
    /// worker threads with chunk-ordered reassembly. Output order matches
    /// input order and every element is bit-identical to
    /// [`ChannelSim::linearize`] on the same pair.
    pub fn linearize_batch(&self, pairs: &[(&Endpoint, &Endpoint)]) -> Vec<Linearization> {
        // The span wraps the fan-out on the caller thread, so it nests
        // under whatever the caller has open (e.g. `kernel.step`).
        let _span = surfos_obs::span!("channel.linearize");
        surfos_obs::observe("channel.batch.width", pairs.len() as u64);
        let index = self.scene_index();
        par::par_map(pairs, |(tx, rx)| {
            self.trace_with(&index, tx, rx).linearize_at(&self.band)
        })
    }

    /// Linearizes `tx` against a probe placed at each of `points` (antenna
    /// and polarization follow `rx_template`) — the objective-sampling
    /// pattern. One scene index, one template clone per worker, and
    /// chunk-ordered fan-out: element `i` is bit-identical to moving the
    /// template to `points[i]` and calling [`ChannelSim::linearize`].
    pub fn linearize_sweep(
        &self,
        tx: &Endpoint,
        points: &[Vec3],
        rx_template: &Endpoint,
    ) -> Vec<Linearization> {
        let _span = surfos_obs::span!("channel.linearize");
        surfos_obs::observe("channel.batch.width", points.len() as u64);
        let index = self.scene_index();
        par::par_map_with(
            points,
            || rx_template.clone(),
            |rx, p| {
                rx.pose.position = *p;
                self.trace_with(&index, tx, rx).linearize_at(&self.band)
            },
        )
    }

    /// Traces many links in one call, returning their band-independent
    /// [`ChannelTrace`]s: the wideband sibling of
    /// [`ChannelSim::linearize_batch`]. Callers that sweep bands keep the
    /// traces and re-phase them with [`ChannelTrace::linearize_at`]
    /// instead of re-tracing — `linearize_at` at the simulator's band is
    /// bit-identical to [`ChannelSim::linearize`] on the same pair.
    pub fn trace_batch(&self, pairs: &[(&Endpoint, &Endpoint)]) -> Vec<ChannelTrace> {
        let _span = surfos_obs::span!("channel.linearize");
        surfos_obs::observe("channel.batch.width", pairs.len() as u64);
        let index = self.scene_index();
        par::par_map(pairs, |(tx, rx)| self.trace_with(&index, tx, rx))
    }

    /// Traces `tx` against a probe placed at each of `points` (antenna and
    /// polarization follow `rx_template`), returning band-independent
    /// [`ChannelTrace`]s: the wideband sibling of
    /// [`ChannelSim::linearize_sweep`]. Multi-band objectives build on
    /// this — trace the grid once, re-phase per band.
    pub fn trace_sweep(
        &self,
        tx: &Endpoint,
        points: &[Vec3],
        rx_template: &Endpoint,
    ) -> Vec<ChannelTrace> {
        let _span = surfos_obs::span!("channel.linearize");
        surfos_obs::observe("channel.batch.width", points.len() as u64);
        let index = self.scene_index();
        par::par_map_with(
            points,
            || rx_template.clone(),
            |rx, p| {
                rx.pose.position = *p;
                self.trace_with(&index, tx, rx)
            },
        )
    }

    /// The linearization for a link, memoized per endpoint pair until the
    /// structure, band or enable flags change. Kernel-tick workloads that
    /// re-ask [`ChannelSim::link_budget`] over unchanged geometry hit this
    /// cache and skip ray tracing entirely.
    ///
    /// After a blocker-only mutation the entry is *refreshed*, not
    /// dropped: the stored [`LinkState`] diffs each path's
    /// blocker-crossing set against the new configuration and re-evaluates
    /// only the affected paths — bit-identical to a cold re-trace, and
    /// when no crossing changed the very same `Arc` is returned so
    /// unaffected links stay warm across walk ticks.
    pub fn cached_linearization(&self, tx: &Endpoint, rx: &Endpoint) -> Arc<Linearization> {
        // Lookup latency (hits, refreshes and misses alike) feeds the HDR
        // timer so cache pathologies show up as a fat p99, not just a
        // shifted hit rate.
        let lookup_t0 = surfos_obs::enabled().then(std::time::Instant::now);
        let timed = |lin: Arc<Linearization>| {
            if let Some(t0) = lookup_t0 {
                surfos_obs::observe_ns(
                    "channel.lincache.lookup_ns",
                    t0.elapsed().as_nanos() as u64,
                );
            }
            lin
        };
        let stamp = self.stamp();
        let bepoch = self.blocker_epoch;
        let key = (endpoint_fingerprint(tx), endpoint_fingerprint(rx));
        {
            let mut cache = self.cache.lock().unwrap();
            if cache.stamp != stamp {
                cache.map.clear();
                cache.stamp = stamp;
                cache.misses += 1;
            } else {
                match cache.map.get(&key).map(|e| e.blocker_epoch) {
                    None => cache.misses += 1,
                    Some(eb) if eb == bepoch => {
                        cache.tick += 1;
                        cache.hits += 1;
                        let tick = cache.tick;
                        let entry = cache.map.get_mut(&key).unwrap();
                        entry.used = tick;
                        let lin = Arc::clone(&entry.lin);
                        drop(cache);
                        surfos_obs::add("channel.lincache.hits", 1);
                        return timed(lin);
                    }
                    Some(_) => {
                        // Blocker-only step: refresh the stored link state
                        // in place. Resolving the scene index here nests
                        // the index lock inside the cache lock; no code
                        // path takes them in the other order.
                        cache.tick += 1;
                        cache.refreshes += 1;
                        let tick = cache.tick;
                        let index = self.scene_index();
                        let entry = cache.map.get_mut(&key).unwrap();
                        entry.used = tick;
                        let outcome = entry.state.refresh(&self.blockers, &index, &self.band);
                        if outcome.changed {
                            entry.lin = Arc::new(entry.state.assemble());
                        }
                        entry.blocker_epoch = bepoch;
                        let lin = Arc::clone(&entry.lin);
                        drop(cache);
                        surfos_obs::add("channel.lincache.refreshes", 1);
                        surfos_obs::add("channel.paths_patched", outcome.patched);
                        surfos_obs::add("channel.paths_retraced", outcome.retraced);
                        return timed(lin);
                    }
                }
            }
        }
        surfos_obs::add("channel.lincache.misses", 1);
        // Trace outside the lock; concurrent misses may duplicate work but
        // never block each other on ray tracing. The link state's assembly
        // is bit-identical to `linearize` on the same pair.
        let state = {
            let _span = surfos_obs::span!("channel.linearize");
            let index = self.scene_index();
            LinkState::new(self.trace_with(&index, tx, rx), &self.band)
        };
        let lin = Arc::new(state.assemble());
        let mut cache = self.cache.lock().unwrap();
        if cache.stamp == stamp {
            if cache.map.len() >= CACHE_CAP {
                // Evict the least-recently-used eighth (deterministically:
                // ticks are unique) so endpoints queried every tick survive
                // a probe sweep that overflows the cap.
                let mut ticks: Vec<u64> = cache.map.values().map(|e| e.used).collect();
                ticks.sort_unstable();
                let threshold = ticks[ticks.len() / 8];
                let before = cache.map.len();
                cache.map.retain(|_, e| e.used > threshold);
                let evicted = (before - cache.map.len()) as u64;
                cache.evictions += evicted;
                surfos_obs::add("channel.lincache.evictions", evicted);
            }
            cache.tick += 1;
            let tick = cache.tick;
            cache.map.insert(
                key,
                CacheEntry {
                    used: tick,
                    blocker_epoch: bepoch,
                    state,
                    lin: Arc::clone(&lin),
                },
            );
        }
        timed(lin)
    }

    /// Lifetime hit/miss/refresh/eviction statistics of the linearization
    /// cache, plus its current size. See [`CacheStats`].
    pub fn cache_stats(&self) -> CacheStats {
        let cache = self.cache.lock().unwrap();
        CacheStats {
            hits: cache.hits,
            misses: cache.misses,
            refreshes: cache.refreshes,
            evictions: cache.evictions,
            len: cache.map.len(),
        }
    }

    /// The per-surface response slices, in index order — the shape
    /// [`Linearization::evaluate`] expects.
    pub fn responses(&self) -> Vec<&[Complex]> {
        self.surfaces.iter().map(|s| s.response()).collect()
    }

    /// The complex channel gain with the surfaces' *current* responses.
    pub fn gain(&self, tx: &Endpoint, rx: &Endpoint) -> Complex {
        self.cached_linearization(tx, rx)
            .evaluate(&self.responses())
    }

    /// Received signal strength in dBm with current responses.
    pub fn rss_dbm(&self, tx: &Endpoint, rx: &Endpoint) -> f64 {
        tx.tx_power_dbm + amplitude_to_db(self.gain(tx, rx).abs())
    }

    /// The full link budget with current responses.
    pub fn link_budget(&self, tx: &Endpoint, rx: &Endpoint) -> LinkBudget {
        let rss_dbm = self.rss_dbm(tx, rx);
        let noise_dbm = noise::noise_power_dbm(self.band.bandwidth_hz, rx.noise_figure_db);
        let snr_db = noise::snr_db(rss_dbm, noise_dbm);
        LinkBudget {
            rss_dbm,
            noise_dbm,
            snr_db,
            capacity_bps: noise::shannon_capacity_bps(snr_db, self.band.bandwidth_hz),
        }
    }

    /// RSS heatmap over a set of receive points (a virtual client is placed
    /// at each point; its antenna/noise follow `rx_template`).
    ///
    /// Points are evaluated on scoped worker threads (one template clone
    /// per worker, not per point) with chunk-ordered reassembly, so the
    /// map is bit-identical to a serial sweep. Fresh traces bypass the
    /// linearization cache: a grid of one-shot probes would only thrash it.
    pub fn rss_heatmap(&self, tx: &Endpoint, points: &[Vec3], rx_template: &Endpoint) -> Heatmap {
        let _span = surfos_obs::span!("channel.heatmap");
        surfos_obs::observe("channel.batch.width", points.len() as u64);
        let responses = self.responses();
        let index = self.scene_index();
        let values = par::par_map_with(
            points,
            || rx_template.clone(),
            |rx, p| {
                rx.pose.position = *p;
                let lin = self.trace_with(&index, tx, rx).linearize_at(&self.band);
                tx.tx_power_dbm + amplitude_to_db(lin.evaluate(&responses).abs())
            },
        );
        Heatmap {
            points: points.to_vec(),
            values,
        }
    }

    /// The wideband frequency response of a link: the complex gain at
    /// `n_points` frequencies across the band, with the surfaces' current
    /// responses. Multipath makes this frequency-selective (notches where
    /// paths cancel); a single-path link is flat. This is the OFDM
    /// subcarrier view a wideband PHY would see.
    ///
    /// The environment is traced **once**; each sample then re-phases the
    /// band-independent path records at its own subcarrier, so the sweep
    /// costs one [`trace`](Self::trace) plus `n_points` cheap evaluations.
    ///
    /// # Panics
    /// Panics if `n_points < 2`.
    pub fn frequency_response(
        &self,
        tx: &Endpoint,
        rx: &Endpoint,
        n_points: usize,
    ) -> Vec<(f64, Complex)> {
        assert!(n_points >= 2, "a sweep needs at least two points");
        let lo = self.band.low_hz();
        let hi = self.band.high_hz();
        let trace = self.trace(tx, rx);
        let responses = self.responses();
        let freqs: Vec<f64> = (0..n_points)
            .map(|i| lo + (hi - lo) * i as f64 / (n_points - 1) as f64)
            .collect();
        // Narrowband probes at each subcarrier: only the centre frequency
        // matters for path phases. The grid is uniform, so the sweep
        // evaluator can rotate per-element phasors instead of re-phasing
        // from scratch at every point.
        let probes: Vec<Band> = freqs
            .iter()
            .map(|&f| Band::new(f, self.band.bandwidth_hz.min(f)))
            .collect();
        let gains = trace.sweep_evaluate(&probes, &responses);
        freqs.into_iter().zip(gains).collect()
    }

    /// Reference implementation of [`ChannelSim::frequency_response`] that
    /// re-traces the environment at every subcarrier. Kept for equivalence
    /// tests and benchmarks.
    #[doc(hidden)]
    pub fn frequency_response_naive(
        &self,
        tx: &Endpoint,
        rx: &Endpoint,
        n_points: usize,
    ) -> Vec<(f64, Complex)> {
        assert!(n_points >= 2, "a sweep needs at least two points");
        let lo = self.band.low_hz();
        let hi = self.band.high_hz();
        (0..n_points)
            .map(|i| {
                let f = lo + (hi - lo) * i as f64 / (n_points - 1) as f64;
                let mut probe = self.clone();
                probe.band = Band::new(f, self.band.bandwidth_hz.min(f));
                let gain = probe.linearize(tx, rx).evaluate(&probe.responses());
                (f, gain)
            })
            .collect()
    }

    /// SNR heatmap over receive points.
    pub fn snr_heatmap(&self, tx: &Endpoint, points: &[Vec3], rx_template: &Endpoint) -> Heatmap {
        let noise_dbm = noise::noise_power_dbm(self.band.bandwidth_hz, rx_template.noise_figure_db);
        let mut map = self.rss_heatmap(tx, points, rx_template);
        for v in &mut map.values {
            *v -= noise_dbm;
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::BlockerWalk;
    use crate::surface::OperationMode;
    use surfos_em::array::ArrayGeometry;
    use surfos_em::band::NamedBand;
    use surfos_geometry::scenario::two_room_apartment;
    use surfos_geometry::Pose;

    fn iso_client(id: &str, pos: Vec3) -> Endpoint {
        let mut e = Endpoint::client(id, pos);
        e.pattern = ElementPattern::Isotropic;
        e
    }

    fn apartment_sim() -> (ChannelSim, Endpoint) {
        let scen = two_room_apartment();
        let band = NamedBand::MmWave28GHz.band();
        let sim = ChannelSim::new(scen.plan.clone(), band);
        let ap = Endpoint::access_point("ap0", scen.ap_pose);
        (sim, ap)
    }

    #[test]
    fn bedroom_is_dead_without_surfaces() {
        let (sim, ap) = apartment_sim();
        // A sliver of energy leaks via the open doorway (real physics), but
        // the room as a whole must be unusable: median SNR below 0 dB and
        // even the doorway-leak spots only marginal.
        let scen = two_room_apartment();
        let grid = scen.target().sample_grid(8, 8, 1.2, 0.3);
        let template = iso_client("probe", Vec3::ZERO);
        let map = sim.snr_heatmap(&ap, &grid, &template);
        assert!(
            map.median() < 0.0,
            "median bedroom SNR should be <0 dB, got {:.1}",
            map.median()
        );
        let deep = iso_client("c", Vec3::new(7.5, 1.0, 1.2));
        let budget = sim.link_budget(&ap, &deep);
        assert!(
            budget.snr_db < 5.0,
            "deep bedroom should be (near) unusable, got {} dB",
            budget.snr_db
        );
    }

    #[test]
    fn living_room_is_covered() {
        let (sim, ap) = apartment_sim();
        let near = iso_client("c", Vec3::new(3.0, 1.5, 1.2));
        let budget = sim.link_budget(&ap, &near);
        assert!(
            budget.snr_db > 10.0,
            "living room should be covered, got {} dB",
            budget.snr_db
        );
    }

    #[test]
    fn surface_focusing_revives_bedroom() {
        let scen = two_room_apartment();
        let band = NamedBand::MmWave28GHz.band();
        let mut sim = ChannelSim::new(scen.plan.clone(), band);

        // A 32×32 programmable surface on the bedroom's north wall, seen by
        // the AP through the doorway; the AP aims its beam at it.
        let pose = *scen.anchor("bedroom-north").unwrap();
        let ap = Endpoint::access_point(
            "ap0",
            Pose::wall_mounted(scen.ap_pose.position, pose.position - scen.ap_pose.position),
        );
        let geom = ArrayGeometry::half_wavelength(32, 32, band.wavelength_m());
        let idx = sim.add_surface(SurfaceInstance::new(
            "prog0",
            pose,
            geom,
            OperationMode::Reflective,
        ));

        let rx = iso_client("c", Vec3::new(6.0, 1.0, 1.2));
        let before = sim.link_budget(&ap, &rx).snr_db;

        // Focus: phase-conjugate the surface coefficients for this link.
        let lin = sim.linearize(&ap, &rx);
        let term = lin
            .linear
            .iter()
            .find(|t| t.surface == idx)
            .expect("surface must serve the link");
        let phases: Vec<f64> = term.coeffs.iter().map(|c| -c.arg()).collect();
        sim.set_surface_phases(idx, &phases);

        let after = sim.link_budget(&ap, &rx).snr_db;
        assert!(
            after > before + 20.0,
            "focusing should add tens of dB: before={before:.1} after={after:.1}"
        );
        assert!(
            after > 5.0,
            "focused bedroom link should be usable: {after:.1}"
        );
    }

    #[test]
    fn gain_matches_linearize_evaluate() {
        let (mut sim, ap) = apartment_sim();
        let pose = Pose::wall_mounted(Vec3::new(4.9, 3.2, 1.5), Vec3::new(-1.0, 0.2, 0.0));
        let geom = ArrayGeometry::half_wavelength(8, 8, sim.band.wavelength_m());
        sim.add_surface(SurfaceInstance::new(
            "s0",
            pose,
            geom,
            OperationMode::Reflective,
        ));
        let rx = iso_client("c", Vec3::new(3.0, 2.0, 1.2));
        let g1 = sim.gain(&ap, &rx);
        let lin = sim.linearize(&ap, &rx);
        let g2 = lin.evaluate(&sim.responses());
        assert!((g1 - g2).abs() < 1e-15);
    }

    #[test]
    fn cache_stats_account_across_epoch_bump() {
        let (mut sim, ap) = apartment_sim();
        let rx = iso_client("c", Vec3::new(3.0, 1.5, 1.2));
        assert_eq!(sim.cache_stats(), CacheStats::default());

        sim.link_budget(&ap, &rx); // cold: miss + insert
        let s = sim.cache_stats();
        assert_eq!((s.hits, s.misses, s.evictions, s.len), (0, 1, 0, 1));

        sim.link_budget(&ap, &rx); // warm
        sim.gain(&ap, &rx); // warm (same pair, different query)
        let s = sim.cache_stats();
        assert_eq!((s.hits, s.misses, s.len), (2, 1, 1));

        // An epoch bump empties the cache but keeps the lifetime history.
        sim.invalidate_cache();
        sim.link_budget(&ap, &rx); // cold again
        let s = sim.cache_stats();
        assert_eq!((s.hits, s.misses, s.evictions, s.len), (2, 2, 0, 1));

        sim.link_budget(&ap, &rx); // warm again
        assert_eq!(sim.cache_stats().hits, 3);
    }

    #[test]
    fn duplicate_surface_id_rejected() {
        let (mut sim, _) = apartment_sim();
        let pose = Pose::wall_mounted(Vec3::new(1.0, 1.0, 1.5), Vec3::X);
        let geom = ArrayGeometry::new(2, 2, 0.005, 0.005);
        sim.add_surface(SurfaceInstance::new(
            "dup",
            pose,
            geom,
            OperationMode::Reflective,
        ));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.add_surface(SurfaceInstance::new(
                "dup",
                pose,
                geom,
                OperationMode::Reflective,
            ));
        }));
        assert!(r.is_err());
    }

    #[test]
    fn blocker_cuts_link() {
        let (mut sim, ap) = apartment_sim();
        let rx = iso_client("c", Vec3::new(3.0, 1.1, 1.2));
        let before = sim.rss_dbm(&ap, &rx);
        // A person standing at the receiver blocks every incoming path
        // (direct and wall bounces all converge there).
        sim.add_blocker(Blocker::person(rx.position()));
        let after = sim.rss_dbm(&ap, &rx);
        assert!(
            before - after > 10.0,
            "blocker should cost >10 dB: before={before:.1} after={after:.1}"
        );
    }

    #[test]
    fn heatmap_covers_grid() {
        let (sim, ap) = apartment_sim();
        let scen = two_room_apartment();
        let grid = scen
            .plan
            .room("living-room")
            .unwrap()
            .sample_grid(5, 5, 1.2, 0.5);
        let template = iso_client("probe", Vec3::ZERO);
        let map = sim.rss_heatmap(&ap, &grid, &template);
        assert_eq!(map.values.len(), 25);
        assert!(map.values.iter().all(|v| v.is_finite()));
        // SNR map is RSS map shifted by the (constant) noise floor.
        let snr = sim.snr_heatmap(&ap, &grid, &template);
        let shift = map.values[0] - snr.values[0];
        for (r, s) in map.values.iter().zip(&snr.values) {
            assert!((r - s - shift).abs() < 1e-9);
        }
    }

    #[test]
    fn frequency_response_flat_for_single_path() {
        // Free space, one path: |H(f)| varies only by the slow Friis
        // factor across the band — no notches.
        let band = NamedBand::MmWave28GHz.band();
        let sim = ChannelSim::new(surfos_geometry::FloorPlan::new(), band);
        let tx = iso_client("tx", Vec3::new(0.0, 0.0, 1.5));
        let rx = iso_client("rx", Vec3::new(5.0, 0.0, 1.5));
        let sweep = sim.frequency_response(&tx, &rx, 32);
        assert_eq!(sweep.len(), 32);
        let mags: Vec<f64> = sweep.iter().map(|(_, g)| g.abs()).collect();
        let (lo, hi) = mags
            .iter()
            .fold((f64::INFINITY, 0.0f64), |(l, h), &m| (l.min(m), h.max(m)));
        assert!(hi / lo < 1.05, "flat channel expected: ripple {}", hi / lo);
    }

    #[test]
    fn frequency_response_selective_under_multipath() {
        // A strong wall reflection alongside the direct path creates
        // frequency-selective fading: notches well below the peak.
        let mut plan = surfos_geometry::FloorPlan::new();
        plan.add_wall(surfos_geometry::Wall::new(
            Vec3::xy(0.0, 1.5),
            Vec3::xy(10.0, 1.5),
            3.0,
            surfos_geometry::Material::Metal,
        ));
        let band = NamedBand::MmWave28GHz.band();
        let sim = ChannelSim::new(plan, band);
        let tx = iso_client("tx", Vec3::new(1.0, 0.0, 1.5));
        let rx = iso_client("rx", Vec3::new(8.0, 0.0, 1.5));
        let sweep = sim.frequency_response(&tx, &rx, 128);
        let mags: Vec<f64> = sweep.iter().map(|(_, g)| g.abs()).collect();
        let (lo, hi) = mags
            .iter()
            .fold((f64::INFINITY, 0.0f64), |(l, h), &m| (l.min(m), h.max(m)));
        assert!(
            hi / lo > 2.0,
            "two comparable paths must produce >6 dB ripple: {}",
            hi / lo
        );
    }

    #[test]
    fn offband_surface_obstructs_crossing_link() {
        // A foreign-band surface standing mid-path attenuates the link by
        // its obstruction factor; a transparent (in-band) one does not.
        let band = NamedBand::WiFi5GHz.band();
        let mut sim = ChannelSim::new(surfos_geometry::FloorPlan::new(), band);
        let tx = iso_client("tx", Vec3::new(0.0, 0.0, 1.5));
        let rx = iso_client("rx", Vec3::new(6.0, 0.0, 1.5));
        let clear = sim.rss_dbm(&tx, &rx);

        // A 2.4 GHz surface (large elements) right across the path,
        // blocking 50 % of the power (amplitude ~0.707).
        let geom = ArrayGeometry::new(10, 10, 0.06, 0.06);
        let pose = Pose::wall_mounted(Vec3::new(3.0, 0.0, 1.5), Vec3::X);
        sim.add_surface(
            SurfaceInstance::new("foreign", pose, geom, OperationMode::Transmissive)
                .with_obstruction(0.707),
        );
        let obstructed = sim.rss_dbm(&tx, &rx);
        assert!(
            (clear - obstructed - 3.0).abs() < 1.5,
            "expected ~3 dB blocking: clear={clear:.1} obstructed={obstructed:.1}"
        );

        // Transparent surfaces change nothing.
        sim.surface_mut(0).obstruction_amplitude = 1.0;
        let transparent = sim.rss_dbm(&tx, &rx);
        assert!(
            (transparent - clear).abs() < 0.75,
            "clear={clear:.1} transparent={transparent:.1}"
        );
    }

    #[test]
    fn surface_does_not_obstruct_its_own_paths() {
        // A reflective surface with a harsh obstruction factor still
        // serves its own bounce (legs terminate on its plane).
        let band = NamedBand::MmWave28GHz.band();
        let mut sim = ChannelSim::new(surfos_geometry::FloorPlan::new(), band);
        let geom = ArrayGeometry::half_wavelength(8, 8, band.wavelength_m());
        let pose = Pose::wall_mounted(Vec3::new(0.0, 0.0, 1.5), Vec3::X);
        let idx = sim.add_surface(
            SurfaceInstance::new("s", pose, geom, OperationMode::Reflective).with_obstruction(0.01),
        );
        let tx = iso_client("tx", Vec3::new(3.0, 2.0, 1.5));
        let rx = iso_client("rx", Vec3::new(3.0, -2.0, 1.5));
        let lin = sim.linearize(&tx, &rx);
        assert!(
            lin.linear.iter().any(|t| t.surface == idx),
            "surface path must survive its own obstruction factor"
        );
    }

    #[test]
    fn surface_lookup() {
        let (mut sim, _) = apartment_sim();
        let pose = Pose::wall_mounted(Vec3::new(1.0, 1.0, 1.5), Vec3::X);
        let geom = ArrayGeometry::new(2, 2, 0.005, 0.005);
        let idx = sim.add_surface(SurfaceInstance::new(
            "findme",
            pose,
            geom,
            OperationMode::Reflective,
        ));
        assert_eq!(sim.surface_index("findme"), Some(idx));
        assert_eq!(sim.surface_index("nope"), None);
    }

    // ── Evaluation-engine tests ────────────────────────────────────────

    /// A sim with enough structure that every path family is live: walls,
    /// a blocker off to the side, and two surfaces (so cascades exist).
    fn rich_sim() -> (ChannelSim, Endpoint, Endpoint) {
        let scen = two_room_apartment();
        let band = NamedBand::MmWave28GHz.band();
        let mut sim = ChannelSim::new(scen.plan.clone(), band);
        let geom = ArrayGeometry::half_wavelength(8, 8, band.wavelength_m());
        let pose = *scen.anchor("bedroom-north").unwrap();
        sim.add_surface(SurfaceInstance::new(
            "s0",
            pose,
            geom,
            OperationMode::Reflective,
        ));
        let pose2 = Pose::wall_mounted(Vec3::new(4.9, 3.2, 1.5), Vec3::new(-1.0, 0.2, 0.0));
        sim.add_surface(SurfaceInstance::new(
            "s1",
            pose2,
            geom,
            OperationMode::Reflective,
        ));
        sim.add_blocker(Blocker::person(Vec3::xy(2.0, 2.0)));
        let ap = Endpoint::access_point("ap0", scen.ap_pose);
        let rx = iso_client("c", Vec3::new(6.0, 1.0, 1.2));
        (sim, ap, rx)
    }

    #[test]
    fn trace_once_linearize_matches_direct_path_math() {
        // The trace/evaluate split must reproduce the fresh trace bit for
        // bit at the trace band.
        let (sim, ap, rx) = rich_sim();
        let fresh = sim.linearize(&ap, &rx);
        let replay = sim.trace(&ap, &rx).linearize_at(&sim.band);
        assert_eq!(fresh.constant, replay.constant);
        assert_eq!(fresh.linear.len(), replay.linear.len());
        for (a, b) in fresh.linear.iter().zip(&replay.linear) {
            assert_eq!(a.surface, b.surface);
            assert_eq!(a.coeffs, b.coeffs);
        }
        assert_eq!(fresh.bilinear.len(), replay.bilinear.len());
        for (a, b) in fresh.bilinear.iter().zip(&replay.bilinear) {
            assert_eq!((a.first, a.second), (b.first, b.second));
            assert_eq!(a.alpha, b.alpha);
            assert_eq!(a.beta, b.beta);
        }
    }

    #[test]
    fn frequency_response_matches_naive_retrace() {
        let (sim, ap, rx) = rich_sim();
        let fast = sim.frequency_response(&ap, &rx, 64);
        let naive = sim.frequency_response_naive(&ap, &rx, 64);
        assert_eq!(fast.len(), naive.len());
        let mut max_rel: f64 = 0.0;
        for ((f1, g1), (f2, g2)) in fast.iter().zip(&naive) {
            assert_eq!(f1, f2);
            let scale = g2.abs().max(1e-30);
            max_rel = max_rel.max((*g1 - *g2).abs() / scale);
        }
        // The sweep evaluator's phasor recurrence assumes an affine grid;
        // the FP rounding of each actual grid frequency (~µHz at 28 GHz,
        // over ~10 m paths) bounds the phase deviation near 1e-12 rad.
        assert!(max_rel < 1e-10, "max relative deviation {max_rel:.3e}");
    }

    #[test]
    fn sweep_soa_matches_scalar_reference_within_ulp_bound() {
        // The SoA sweep arm reassociates only the cross-element sums; every
        // per-element value is bit-identical to the scalar reference arm.
        // Bound the deviation per probe: components that don't cancel must
        // sit within a small ULP distance, and cancelled components (whose
        // ULPs overstate the error) within the kernels' absolute
        // reassociation bound `O(n·ε·Σ|termᵢ|)`, with `Σ|termᵢ|` proxied
        // by the probe's gain magnitude.
        use surfos_em::ulp::ulp_distance_f64;
        const MAX_ULPS: u64 = 1 << 14;

        // A corridor of metal walls: many specular bounces, no surfaces —
        // the building-bench path mix.
        let mut corridor = surfos_geometry::FloorPlan::new();
        for i in 0..6 {
            let y = -2.0 + 5.0 * i as f64;
            corridor.add_wall(surfos_geometry::Wall::new(
                Vec3::xy(0.0, y),
                Vec3::xy(30.0, y),
                3.0,
                surfos_geometry::Material::Metal,
            ));
        }
        let band = NamedBand::MmWave28GHz.band();
        let corridor_sim = ChannelSim::new(corridor, band);
        let corridor_tx = iso_client("tx", Vec3::new(1.0, 0.5, 1.5));
        let corridor_rx = iso_client("rx", Vec3::new(25.0, 1.0, 1.4));

        let (rich, rich_ap, rich_rx) = rich_sim();
        for (sim, tx, rx) in [
            (&rich, &rich_ap, &rich_rx),
            (&corridor_sim, &corridor_tx, &corridor_rx),
        ] {
            let trace = sim.trace(tx, rx);
            let responses = sim.responses();
            let (lo, hi) = (sim.band.low_hz(), sim.band.high_hz());
            let n = 64;
            let probes: Vec<Band> = (0..n)
                .map(|i| {
                    let f = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                    Band::new(f, sim.band.bandwidth_hz.min(f))
                })
                .collect();
            let soa = trace.sweep_evaluate(&probes, &responses);
            let scalar = trace.sweep_evaluate_scalar(&probes, &responses);
            assert_eq!(soa.len(), scalar.len());
            assert!(scalar.iter().any(|g| g.abs() > 0.0), "degenerate scene");
            for (i, (a, b)) in soa.iter().zip(&scalar).enumerate() {
                let scale = b.abs();
                for (x, y) in [(a.re, b.re), (a.im, b.im)] {
                    assert!(
                        ulp_distance_f64(x, y) <= MAX_ULPS || (x - y).abs() <= scale * 1e-11,
                        "probe {i}: {x:e} vs {y:e} (|h| = {scale:e})"
                    );
                }
            }
        }
    }

    #[test]
    fn heatmap_parallel_matches_serial_bitwise() {
        let (sim, ap, _) = rich_sim();
        let scen = two_room_apartment();
        let grid = scen.target().sample_grid(6, 6, 1.2, 0.3);
        let template = iso_client("probe", Vec3::ZERO);
        // Serial reference computed with the exact public per-point math.
        let responses = sim.responses();
        let serial: Vec<f64> = grid
            .iter()
            .map(|p| {
                let mut rx = template.clone();
                rx.pose.position = *p;
                ap.tx_power_dbm
                    + amplitude_to_db(sim.linearize(&ap, &rx).evaluate(&responses).abs())
            })
            .collect();
        let map = sim.rss_heatmap(&ap, &grid, &template);
        assert_eq!(
            serial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            map.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "parallel heatmap must be bit-identical to serial"
        );
    }

    #[test]
    fn cache_hits_over_unchanged_geometry() {
        let (sim, ap, rx) = rich_sim();
        let first = sim.cached_linearization(&ap, &rx);
        let second = sim.cached_linearization(&ap, &rx);
        assert!(
            Arc::ptr_eq(&first, &second),
            "second query must reuse the cached linearization"
        );
        assert_eq!(
            sim.gain(&ap, &rx),
            sim.linearize(&ap, &rx).evaluate(&sim.responses())
        );
    }

    #[test]
    fn cache_invalidated_by_surface_mutation() {
        let (mut sim, ap, rx) = rich_sim();
        let before = sim.gain(&ap, &rx);
        sim.surface_mut(0).pose.position.z += 0.3;
        let after = sim.gain(&ap, &rx);
        assert_ne!(before, after, "moved surface must change the gain");
        assert_eq!(after, sim.linearize(&ap, &rx).evaluate(&sim.responses()));
    }

    #[test]
    fn cache_invalidated_by_blocker_mutation() {
        let (mut sim, ap, rx) = rich_sim();
        let before = sim.gain(&ap, &rx);
        sim.add_blocker(Blocker::person(rx.position()));
        let after = sim.gain(&ap, &rx);
        assert_ne!(before, after, "new blocker must change the gain");
        assert_eq!(after, sim.linearize(&ap, &rx).evaluate(&sim.responses()));
        sim.clear_blockers();
        sim.add_blocker(Blocker::person(Vec3::xy(2.0, 2.0)));
        assert_eq!(
            before,
            sim.gain(&ap, &rx),
            "original blockers, original gain"
        );
    }

    #[test]
    fn cache_invalidated_by_band_change() {
        let (mut sim, ap, rx) = rich_sim();
        let at_28 = sim.gain(&ap, &rx);
        sim.band = NamedBand::MmWave60GHz.band();
        let at_60 = sim.gain(&ap, &rx);
        assert_ne!(at_28, at_60, "band change must re-trace");
        assert_eq!(at_60, sim.linearize(&ap, &rx).evaluate(&sim.responses()));
        sim.band = NamedBand::MmWave28GHz.band();
        assert_eq!(at_28, sim.gain(&ap, &rx));
    }

    #[test]
    fn response_programming_keeps_cache_warm_and_correct() {
        let (mut sim, ap, rx) = rich_sim();
        let lin = sim.cached_linearization(&ap, &rx);
        let term = lin.linear.iter().find(|t| t.surface == 0).expect("serves");
        let phases: Vec<f64> = term.coeffs.iter().map(|c| -c.arg()).collect();
        sim.set_surface_phases(0, &phases);
        // Same Arc (no invalidation) …
        assert!(Arc::ptr_eq(&lin, &sim.cached_linearization(&ap, &rx)));
        // … and still the correct answer for the *new* responses.
        assert_eq!(
            sim.gain(&ap, &rx),
            sim.linearize(&ap, &rx).evaluate(&sim.responses())
        );
    }

    #[test]
    fn clone_carries_cache_stats_with_cold_entries() {
        let (sim, ap, rx) = rich_sim();
        let g = sim.gain(&ap, &rx);
        let g2 = sim.gain(&ap, &rx); // one hit on the original
        assert_eq!(g, g2);
        let stats = sim.cache_stats();
        let copy = sim.clone();
        let s = copy.cache_stats();
        assert_eq!(
            (s.hits, s.misses, s.refreshes, s.evictions),
            (stats.hits, stats.misses, stats.refreshes, stats.evictions),
            "lifetime counters must carry into the clone"
        );
        assert_eq!(s.len, 0, "entries themselves are not cloned");
        assert_eq!(g, copy.gain(&ap, &rx));
    }

    #[test]
    fn scene_index_shared_within_epoch_and_rebuilt_on_mutation() {
        let (mut sim, ap, rx) = rich_sim();
        let first = sim.scene_index();
        let _ = sim.gain(&ap, &rx);
        assert!(
            Arc::ptr_eq(&first, &sim.scene_index()),
            "unchanged geometry must reuse the index"
        );
        // Clones share it too.
        assert!(Arc::ptr_eq(&first, &sim.clone().scene_index()));
        // Band changes don't shape geometry.
        sim.band = NamedBand::MmWave60GHz.band();
        assert!(Arc::ptr_eq(&first, &sim.scene_index()));
        // Blocker mutations install a fresh (refit) index …
        sim.add_blocker(Blocker::person(Vec3::xy(1.0, 1.0)));
        let refitted = sim.scene_index();
        assert!(!Arc::ptr_eq(&first, &refitted));
        // … that shares the structure (walls, elements) untouched.
        assert!(
            Arc::ptr_eq(first.structure(), refitted.structure()),
            "blocker mutation must refit, not rebuild, the structure"
        );
        // Structure mutations rebuild everything.
        sim.invalidate_cache();
        let rebuilt = sim.scene_index();
        assert!(!Arc::ptr_eq(first.structure(), rebuilt.structure()));
    }

    #[test]
    fn blocker_step_refits_never_rebuilds() {
        let (mut sim, ap, rx) = rich_sim();
        let _ = sim.gain(&ap, &rx);
        let before = sim.index_stats();
        let (structure0, _) = sim.epochs();
        let walk = BlockerWalk::new(vec![Vec3::xy(1.0, 1.0), Vec3::xy(4.0, 2.5)], 1.4);
        let base = sim.scene_index();
        for k in 0..10 {
            sim.set_blockers(vec![walk.blocker_at(k as f64 * 0.1)]);
            let index = sim.scene_index();
            assert!(
                Arc::ptr_eq(base.structure(), index.structure()),
                "walk tick {k} must keep the wall BVH / structure Arc"
            );
            let _ = sim.gain(&ap, &rx);
        }
        let after = sim.index_stats();
        assert_eq!(after.builds, before.builds, "walk ticks must never rebuild");
        assert_eq!(after.refits, before.refits + 10, "each tick refits once");
        let (structure1, _) = sim.epochs();
        assert_eq!(
            structure0, structure1,
            "blocker-only steps must not bump the structure epoch"
        );
    }

    #[test]
    fn blocker_refresh_is_bit_identical_to_cold_retrace() {
        let (mut sim, ap, rx) = rich_sim();
        let _ = sim.cached_linearization(&ap, &rx); // populate
        for pos in [
            Vec3::xy(3.0, 1.1),
            Vec3::xy(5.5, 1.0),
            Vec3::xy(2.0, 2.0),
            Vec3::xy(7.0, 2.8),
        ] {
            sim.set_blockers(vec![Blocker::person(pos)]);
            let refreshed = sim.cached_linearization(&ap, &rx);
            let cold = sim.linearize(&ap, &rx);
            assert_eq!(refreshed.constant, cold.constant, "at {pos:?}");
            assert_eq!(refreshed.linear.len(), cold.linear.len());
            for (a, b) in refreshed.linear.iter().zip(&cold.linear) {
                assert_eq!(a.surface, b.surface);
                assert_eq!(a.coeffs, b.coeffs);
            }
            assert_eq!(refreshed.bilinear.len(), cold.bilinear.len());
            for (a, b) in refreshed.bilinear.iter().zip(&cold.bilinear) {
                assert_eq!((a.first, a.second), (b.first, b.second));
                assert_eq!(a.alpha, b.alpha);
                assert_eq!(a.beta, b.beta);
            }
        }
        let s = sim.cache_stats();
        assert_eq!(s.refreshes, 4, "each blocker step must refresh, not miss");
        assert_eq!(s.misses, 1, "only the initial population misses");
    }

    #[test]
    fn unaffected_link_keeps_linearization_arc_across_blocker_step() {
        // A blocker that never crosses any of the link's paths must leave
        // the cached Arc untouched (the link stays warm).
        let band = NamedBand::MmWave28GHz.band();
        let mut sim = ChannelSim::new(surfos_geometry::FloorPlan::new(), band);
        let tx = iso_client("tx", Vec3::new(0.0, 0.0, 1.5));
        let rx = iso_client("rx", Vec3::new(5.0, 0.0, 1.5));
        sim.add_blocker(Blocker::person(Vec3::xy(10.0, 10.0)));
        let first = sim.cached_linearization(&tx, &rx);
        sim.set_blockers(vec![Blocker::person(Vec3::xy(11.0, 10.0))]);
        let second = sim.cached_linearization(&tx, &rx);
        assert!(
            Arc::ptr_eq(&first, &second),
            "far-away blocker motion must not re-assemble the linearization"
        );
        // And a crossing blocker does change it.
        sim.set_blockers(vec![Blocker::person(Vec3::xy(2.5, 0.0))]);
        let third = sim.cached_linearization(&tx, &rx);
        assert!(!Arc::ptr_eq(&first, &third));
        let cold = sim.linearize(&tx, &rx);
        assert_eq!(third.constant, cold.constant);
    }

    #[test]
    fn trace_batch_and_sweep_match_serial() {
        let (sim, ap, rx) = rich_sim();
        let rx2 = iso_client("c2", Vec3::new(2.5, 1.8, 1.2));
        let pairs = [(&ap, &rx), (&ap, &rx2)];
        for (traced, (tx, rx)) in sim.trace_batch(&pairs).iter().zip(&pairs) {
            let lin = traced.linearize_at(&sim.band);
            let serial = sim.linearize(tx, rx);
            assert_eq!(lin.constant, serial.constant);
            assert_eq!(lin.linear.len(), serial.linear.len());
        }
        let template = iso_client("probe", Vec3::ZERO);
        let points = [Vec3::new(6.0, 1.0, 1.2), Vec3::new(2.5, 1.8, 1.2)];
        for (traced, p) in sim.trace_sweep(&ap, &points, &template).iter().zip(&points) {
            let mut probe = template.clone();
            probe.pose.position = *p;
            let lin = traced.linearize_at(&sim.band);
            let serial = sim.linearize(&ap, &probe);
            assert_eq!(lin.constant, serial.constant);
            assert_eq!(lin.linear.len(), serial.linear.len());
        }
    }

    #[test]
    fn response_programming_keeps_scene_index() {
        let (mut sim, _, _) = rich_sim();
        let first = sim.scene_index();
        sim.set_surface_phases(0, &vec![0.5; sim.surfaces()[0].len()]);
        assert!(
            Arc::ptr_eq(&first, &sim.scene_index()),
            "programming responses must not rebuild the index"
        );
    }

    #[test]
    fn linearize_batch_matches_serial_bitwise() {
        let (sim, ap, rx) = rich_sim();
        let rx2 = iso_client("c2", Vec3::new(2.5, 1.8, 1.2));
        let pairs = [(&ap, &rx), (&ap, &rx2), (&rx, &rx2)];
        let batch = sim.linearize_batch(&pairs);
        assert_eq!(batch.len(), pairs.len());
        for ((tx, rx), lin) in pairs.iter().zip(&batch) {
            let serial = sim.linearize(tx, rx);
            assert_eq!(serial.constant, lin.constant);
            assert_eq!(serial.linear.len(), lin.linear.len());
            for (a, b) in serial.linear.iter().zip(&lin.linear) {
                assert_eq!(a.surface, b.surface);
                assert_eq!(a.coeffs, b.coeffs);
            }
            assert_eq!(serial.bilinear.len(), lin.bilinear.len());
            for (a, b) in serial.bilinear.iter().zip(&lin.bilinear) {
                assert_eq!((a.first, a.second), (b.first, b.second));
                assert_eq!(a.alpha, b.alpha);
                assert_eq!(a.beta, b.beta);
            }
        }
    }

    #[test]
    fn linearize_sweep_matches_moved_template() {
        let (sim, ap, _) = rich_sim();
        let template = iso_client("probe", Vec3::ZERO);
        let points = [
            Vec3::new(6.0, 1.0, 1.2),
            Vec3::new(2.5, 1.8, 1.2),
            Vec3::new(7.5, 2.5, 1.2),
        ];
        let sweep = sim.linearize_sweep(&ap, &points, &template);
        for (p, lin) in points.iter().zip(&sweep) {
            let mut rx = template.clone();
            rx.pose.position = *p;
            let serial = sim.linearize(&ap, &rx);
            assert_eq!(serial.constant, lin.constant);
            assert_eq!(serial.linear.len(), lin.linear.len());
        }
    }

    #[test]
    fn lru_eviction_keeps_hot_endpoints() {
        // A probe sweep that overflows CACHE_CAP must not evict the pair
        // that is re-queried throughout the sweep.
        let band = NamedBand::WiFi5GHz.band();
        let sim = ChannelSim::new(surfos_geometry::FloorPlan::new(), band);
        let ap = iso_client("ap", Vec3::new(0.0, 0.0, 2.0));
        let hot = iso_client("hot", Vec3::new(3.0, 1.0, 1.2));
        let hot_lin = sim.cached_linearization(&ap, &hot);
        for i in 0..(CACHE_CAP + CACHE_CAP / 2) {
            let probe = iso_client("p", Vec3::new(1.0 + i as f64 * 1e-4, 2.0, 1.2));
            let _ = sim.cached_linearization(&ap, &probe);
            if i % 64 == 0 {
                let again = sim.cached_linearization(&ap, &hot);
                assert!(
                    Arc::ptr_eq(&hot_lin, &again),
                    "hot pair evicted at sweep step {i}"
                );
            }
        }
        assert!(
            Arc::ptr_eq(&hot_lin, &sim.cached_linearization(&ap, &hot)),
            "hot pair must survive the whole sweep"
        );
        let len = sim.cache.lock().unwrap().map.len();
        assert!(len <= CACHE_CAP, "cache exceeded its cap: {len}");
    }
}
