//! Channel linearization: the affine/bilinear form of a link's gain in the
//! deployed surfaces' element responses.
//!
//! For a fixed environment, the complex channel gain of a link is
//!
//! ```text
//! h(r) = c + Σ_s  a_s · r_s  +  Σ_(s,t)  (α · r_s)(β · r_t)
//! ```
//!
//! where `r_s` is surface `s`'s element-response vector, `c` collects the
//! surface-independent paths (direct + wall bounces), the linear terms are
//! single-bounce surface paths and the bilinear terms are two-hop cascades.
//!
//! The optimizer needs `h` and `∂h/∂φ` thousands of times per configuration
//! search; evaluating this form is `O(total elements)` with no ray tracing.

use surfos_em::complex::Complex;

/// A single-surface (linear) contribution: `Σ_e coeffs[e] · r[e]`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearTerm {
    /// Index of the surface in the simulator's surface list.
    pub surface: usize,
    /// One coefficient per element (row-major, matching the surface).
    pub coeffs: Vec<Complex>,
}

/// A cascade (bilinear) contribution:
/// `(Σ_a alpha[a]·r_first[a]) · (Σ_b beta[b]·r_second[b])`.
#[derive(Debug, Clone, PartialEq)]
pub struct BilinearTerm {
    /// Index of the first-hop surface.
    pub first: usize,
    /// Coefficients over the first surface's elements.
    pub alpha: Vec<Complex>,
    /// Index of the second-hop surface.
    pub second: usize,
    /// Coefficients over the second surface's elements.
    pub beta: Vec<Complex>,
}

/// The full linearized channel of one (transmitter, receiver) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct Linearization {
    /// Surface-independent gain (direct path + wall reflections).
    pub constant: Complex,
    /// Single-bounce surface contributions.
    pub linear: Vec<LinearTerm>,
    /// Two-hop cascade contributions.
    pub bilinear: Vec<BilinearTerm>,
}

fn dot(coeffs: &[Complex], response: &[Complex]) -> Complex {
    debug_assert_eq!(coeffs.len(), response.len());
    coeffs.iter().zip(response).map(|(c, r)| *c * *r).sum()
}

impl Linearization {
    /// A channel with no paths at all.
    pub fn dead() -> Self {
        Linearization {
            constant: Complex::ZERO,
            linear: Vec::new(),
            bilinear: Vec::new(),
        }
    }

    /// Evaluates the channel gain for the given per-surface responses.
    /// `responses[s]` must be surface `s`'s element-response slice.
    ///
    /// # Panics
    /// Panics (in debug builds) on length mismatches; the simulator
    /// constructs both sides so a mismatch is an internal bug.
    pub fn evaluate(&self, responses: &[&[Complex]]) -> Complex {
        let mut h = self.constant;
        for t in &self.linear {
            h += dot(&t.coeffs, responses[t.surface]);
        }
        for b in &self.bilinear {
            h += dot(&b.alpha, responses[b.first]) * dot(&b.beta, responses[b.second]);
        }
        h
    }

    /// The partial derivatives `∂h/∂r_{surface,e}` for every element of
    /// `surface`, at the given responses. `h` is holomorphic in each
    /// response entry, so this is an ordinary complex derivative.
    pub fn d_dresponse(&self, surface: usize, responses: &[&[Complex]]) -> Vec<Complex> {
        let n = responses[surface].len();
        let mut grad = vec![Complex::ZERO; n];
        for t in &self.linear {
            if t.surface == surface {
                for (g, c) in grad.iter_mut().zip(&t.coeffs) {
                    *g += *c;
                }
            }
        }
        for b in &self.bilinear {
            if b.first == surface {
                let other = dot(&b.beta, responses[b.second]);
                for (g, a) in grad.iter_mut().zip(&b.alpha) {
                    *g += *a * other;
                }
            }
            if b.second == surface {
                let other = dot(&b.alpha, responses[b.first]);
                for (g, be) in grad.iter_mut().zip(&b.beta) {
                    *g += *be * other;
                }
            }
        }
        grad
    }

    /// Gradient of the received *power* `|h|²` with respect to the phase of
    /// each element of `surface`, assuming elements keep their current
    /// magnitude (pure phase control):
    ///
    /// `∂|h|²/∂φ_e = 2·Re( conj(h) · j·r_e · ∂h/∂r_e )`
    pub fn grad_power_wrt_phase(&self, surface: usize, responses: &[&[Complex]]) -> Vec<f64> {
        let h = self.evaluate(responses);
        let dh = self.d_dresponse(surface, responses);
        responses[surface]
            .iter()
            .zip(dh)
            .map(|(r, d)| {
                let dphi = Complex::J * *r * d; // ∂h/∂φ_e
                2.0 * (h.conj() * dphi).re
            })
            .collect()
    }

    /// Returns true if no surface influences this link (constant channel).
    pub fn is_constant(&self) -> bool {
        self.linear.is_empty() && self.bilinear.is_empty()
    }

    /// Total number of coefficient entries (memory/diagnostic metric).
    pub fn coefficient_count(&self) -> usize {
        self.linear.iter().map(|t| t.coeffs.len()).sum::<usize>()
            + self
                .bilinear
                .iter()
                .map(|b| b.alpha.len() + b.beta.len())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phases_to_resp(phases: &[f64]) -> Vec<Complex> {
        phases.iter().map(|&p| Complex::cis(p)).collect()
    }

    fn example() -> Linearization {
        Linearization {
            constant: Complex::new(0.1, -0.2),
            linear: vec![LinearTerm {
                surface: 0,
                coeffs: vec![Complex::new(0.3, 0.1), Complex::new(-0.2, 0.4)],
            }],
            bilinear: vec![BilinearTerm {
                first: 0,
                alpha: vec![Complex::new(0.05, 0.0), Complex::new(0.0, 0.07)],
                second: 1,
                beta: vec![Complex::new(0.1, 0.1)],
            }],
        }
    }

    #[test]
    fn evaluate_matches_manual_expansion() {
        let lin = example();
        let r0 = phases_to_resp(&[0.5, -1.0]);
        let r1 = phases_to_resp(&[2.0]);
        let got = lin.evaluate(&[&r0, &r1]);
        let want = lin.constant
            + lin.linear[0].coeffs[0] * r0[0]
            + lin.linear[0].coeffs[1] * r0[1]
            + (lin.bilinear[0].alpha[0] * r0[0] + lin.bilinear[0].alpha[1] * r0[1])
                * (lin.bilinear[0].beta[0] * r1[0]);
        assert!((got - want).abs() < 1e-12);
    }

    #[test]
    fn dead_channel_evaluates_to_zero() {
        let lin = Linearization::dead();
        assert_eq!(lin.evaluate(&[]), Complex::ZERO);
        assert!(lin.is_constant());
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let lin = example();
        let r0 = phases_to_resp(&[0.5, -1.0]);
        let r1 = phases_to_resp(&[2.0]);
        let d = lin.d_dresponse(0, &[&r0, &r1]);
        let eps = 1e-7;
        for e in 0..2 {
            let mut r0p = r0.clone();
            r0p[e] += Complex::new(eps, 0.0);
            let hp = lin.evaluate(&[&r0p, &r1]);
            let h = lin.evaluate(&[&r0, &r1]);
            let fd = (hp - h) / eps;
            assert!((fd - d[e]).abs() < 1e-5, "element {e}: fd={fd} d={}", d[e]);
        }
    }

    #[test]
    fn phase_gradient_matches_finite_difference() {
        let lin = example();
        let phases0 = [0.5, -1.0];
        let phases1 = [2.0];
        let r0 = phases_to_resp(&phases0);
        let r1 = phases_to_resp(&phases1);
        let grad = lin.grad_power_wrt_phase(0, &[&r0, &r1]);

        let power = |p0: &[f64]| {
            let r0 = phases_to_resp(p0);
            let r1 = phases_to_resp(&phases1);
            lin.evaluate(&[&r0, &r1]).norm_sqr()
        };
        let eps = 1e-7;
        for e in 0..2 {
            let mut p = phases0;
            p[e] += eps;
            let fd = (power(&p) - power(&phases0)) / eps;
            assert!(
                (fd - grad[e]).abs() < 1e-5,
                "element {e}: fd={fd} grad={}",
                grad[e]
            );
        }
    }

    #[test]
    fn second_surface_gradient_via_bilinear() {
        let lin = example();
        let r0 = phases_to_resp(&[0.5, -1.0]);
        let r1 = phases_to_resp(&[2.0]);
        let d = lin.d_dresponse(1, &[&r0, &r1]);
        // Only the bilinear term touches surface 1.
        let want = (lin.bilinear[0].alpha[0] * r0[0] + lin.bilinear[0].alpha[1] * r0[1])
            * lin.bilinear[0].beta[0];
        assert!((d[0] - want).abs() < 1e-12);
    }

    #[test]
    fn coefficient_count() {
        assert_eq!(example().coefficient_count(), 2 + 2 + 1);
    }
}
