#!/usr/bin/env bash
# Perf smoke: runs the channel + optimizer criterion benches and collects
# the per-benchmark medians into a machine-readable BENCH_channel.json at
# the repo root. Use SURFOS_THREADS=1 to measure the serial baseline.
#
#   scripts/perf_smoke.sh                 # all cores
#   SURFOS_THREADS=1 scripts/perf_smoke.sh  # serial baseline
set -euo pipefail

cd "$(dirname "$0")/.."

jsonl="$(mktemp)"
trap 'rm -f "$jsonl"' EXIT

CRITERION_JSONL="$jsonl" cargo bench -p surfos-bench --bench channel_sim
CRITERION_JSONL="$jsonl" cargo bench -p surfos-bench --bench optimizer

# Wrap the JSON lines into one JSON document with run metadata.
threads="${SURFOS_THREADS:-auto}"
{
  printf '{\n  "threads": "%s",\n  "benchmarks": [\n' "$threads"
  sed 's/^/    /; $!s/$/,/' "$jsonl"
  printf '  ]\n}\n'
} > BENCH_channel.json

echo "wrote BENCH_channel.json ($(grep -c median_ns "$jsonl") benchmarks, threads=$threads)"
