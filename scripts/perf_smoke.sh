#!/usr/bin/env bash
# Perf smoke + regression gate.
#
# Runs the channel, dynamics, spatial, building, optimizer, campus, obs
# and rpc criterion benches and collects
# the per-benchmark medians into a machine-readable BENCH_channel.json at
# the repo root. With --check, fresh medians are then compared against the
# checked-in BENCH_baseline.json and the script exits non-zero when any
# benchmark regressed by more than PERF_TOLERANCE (default 1.25 = 25 %).
#
# A baseline entry may carry an optional per-benchmark annotation
# `"tolerance": <ratio>` (anywhere after its "median_ns" on the same
# line) to override the global tolerance for that id alone — e.g. a noisy
# microbenchmark gated at 2.0 while the rest stay at the default.
#
#   scripts/perf_smoke.sh                    # run benches, write BENCH_channel.json
#   scripts/perf_smoke.sh --check            # run benches, then gate against baseline
#   scripts/perf_smoke.sh --check-only       # gate an existing BENCH_channel.json
#   scripts/perf_smoke.sh --group campus     # run only bench targets matching "campus"
#   SURFOS_THREADS=1 scripts/perf_smoke.sh   # serial baseline
#   PERF_TOLERANCE=1.5 scripts/perf_smoke.sh --check   # looser gate
#
# --group limits the run to bench targets whose name contains the given
# substring (and skips the obs_smoke attachment). Combine with --check to
# gate just those ids against the baseline.
#
# To refresh the baseline after an intentional perf change:
#   scripts/perf_smoke.sh && cp BENCH_channel.json BENCH_baseline.json
set -euo pipefail

cd "$(dirname "$0")/.."

mode=run
group=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --check) mode=check ;;
    --check-only) mode=check_only ;;
    --group)
      group="${2:-}"
      [[ -n "$group" ]] || { echo "--group needs a bench-target substring" >&2; exit 2; }
      shift
      ;;
    *) echo "usage: $0 [--check|--check-only] [--group <name>]" >&2; exit 2 ;;
  esac
  shift
done

tolerance="${PERF_TOLERANCE:-1.25}"
baseline_file="BENCH_baseline.json"
fresh_file="BENCH_channel.json"

tmpfiles=()
cleanup() { rm -f "${tmpfiles[@]}"; }
trap cleanup EXIT

run_benches() {
  local jsonl obs_jsonl
  jsonl="$(mktemp)"
  obs_jsonl="$(mktemp)"
  tmpfiles+=("$jsonl" "$obs_jsonl")

  local targets=(channel_sim dynamics spatial building optimizer campus obs rpc)
  if [[ -n "$group" ]]; then
    local filtered=() t
    for t in "${targets[@]}"; do
      [[ "$t" == *"$group"* ]] && filtered+=("$t")
    done
    ((${#filtered[@]})) || { echo "no bench target matches --group '$group'" >&2; exit 2; }
    targets=("${filtered[@]}")
  fi
  local t
  for t in "${targets[@]}"; do
    CRITERION_JSONL="$jsonl" cargo bench -p surfos-bench --bench "$t"
  done

  # Observability attachment: derived cache/culling metrics and span
  # medians from an instrumented kernel run. These lines use
  # "span"/"p50_ns" and "metric"/"value" keys, so extract_medians (which
  # matches "id"/"median_ns") never gates on them. Skipped for filtered
  # runs — it belongs to the full sweep.
  if [[ -z "$group" ]]; then
    cargo run -q --release -p surfos-bench --bin obs_smoke > "$obs_jsonl"
  fi

  # Wrap the JSON lines into one JSON document with run metadata. The
  # "simd" field is the requested dispatch override ("auto" = runtime
  # detection); the realized backend is the em.simd.backend line in the
  # observability attachment.
  local threads="${SURFOS_THREADS:-auto}"
  local simd="${SURFOS_SIMD:-auto}"
  {
    printf '{\n  "threads": "%s",\n  "simd": "%s",\n  "benchmarks": [\n' "$threads" "$simd"
    sed 's/^/    /; $!s/$/,/' "$jsonl"
    printf '  ],\n  "observability": [\n'
    sed 's/^/    /; $!s/$/,/' "$obs_jsonl"
    printf '  ]\n}\n'
  } > "$fresh_file"

  echo "wrote $fresh_file ($(grep -c median_ns "$jsonl") benchmarks, $(wc -l < "$obs_jsonl") obs metrics, threads=$threads)"
}

# Extract "<id> <median_ns>" pairs from a BENCH json file.
extract_medians() {
  sed -n 's/.*"id": "\([^"]*\)", "median_ns": \([0-9.][0-9.]*\).*/\1 \2/p' "$1"
}

# Extract "<id> <median_ns> <tolerance>" triples (tolerance column present
# only for entries carrying the optional per-bench annotation).
extract_medians_with_tolerance() {
  sed -n '
    s/.*"id": "\([^"]*\)", "median_ns": \([0-9.][0-9.]*\).*"tolerance": \([0-9.][0-9.]*\).*/\1 \2 \3/p; t
    s/.*"id": "\([^"]*\)", "median_ns": \([0-9.][0-9.]*\).*/\1 \2/p
  ' "$1"
}

check_regressions() {
  if [[ ! -f "$baseline_file" ]]; then
    echo "missing $baseline_file — run 'scripts/perf_smoke.sh && cp $fresh_file $baseline_file' to create it" >&2
    exit 1
  fi
  if [[ ! -f "$fresh_file" ]]; then
    echo "missing $fresh_file — run 'scripts/perf_smoke.sh' first (or use --check)" >&2
    exit 1
  fi
  local base fresh
  base="$(mktemp)"; fresh="$(mktemp)"
  tmpfiles+=("$base" "$fresh")
  extract_medians_with_tolerance "$baseline_file" > "$base"
  extract_medians "$fresh_file" > "$fresh"

  awk -v tol="$tolerance" '
    NR == FNR {
      baseline[$1] = $2
      if (NF >= 3) bench_tol[$1] = $3
      next
    }
    ($1 in baseline) && baseline[$1] > 0 {
      t = ($1 in bench_tol) ? bench_tol[$1] : tol
      ratio = $2 / baseline[$1]
      n++
      if (ratio > t) {
        printf "REGRESSION  %-55s %12.1f -> %12.1f ns  (x%.2f > x%.2f)\n", $1, baseline[$1], $2, ratio, t
        bad++
      } else {
        printf "ok          %-55s %12.1f -> %12.1f ns  (x%.2f <= x%.2f)\n", $1, baseline[$1], $2, ratio, t
      }
    }
    END {
      if (n == 0) {
        print "no overlapping benchmark ids between baseline and fresh run" | "cat >&2"
        exit 1
      }
      if (bad > 0) {
        printf "%d of %d benchmarks regressed by more than x%.2f\n", bad, n, tol | "cat >&2"
        exit 1
      }
      printf "all %d benchmarks within x%.2f of baseline\n", n, tol
    }
  ' "$base" "$fresh"
}

case "$mode" in
  run) run_benches ;;
  check) scripts/lint.sh; run_benches; check_regressions ;;
  check_only) check_regressions ;;
esac
