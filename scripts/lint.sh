#!/usr/bin/env bash
# Static gate: formatting + clippy + rustdoc, all with warnings denied.
#
#   scripts/lint.sh          # check formatting, lints and docs
#   scripts/lint.sh --fix    # apply rustfmt, then re-check lints and docs
#
# Also invoked by scripts/perf_smoke.sh --check, so a perf gate run cannot
# pass on a tree that fails the static checks.
set -euo pipefail

cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--fix" ]]; then
  cargo fmt
else
  cargo fmt --check
fi

cargo clippy -q --all-targets -- -D warnings

# Portability gate: the whole workspace must build and pass tests with the
# SIMD shim's portable scalar fallback (the non-x86 / miri configuration),
# so a lane-semantics divergence between the SSE and fallback backends
# cannot land silently.
cargo clippy -q --all-targets --features surfos-em/scalar-fallback -- -D warnings
cargo test -q --workspace --features surfos-em/scalar-fallback

# Backend-equivalence gate: the runtime-dispatched kernels (scalar
# reference, sse2 pair-of-x4, native avx2 where the host has avx2+fma)
# must all return bit-identical geometry and channel results. Each arm
# forces one backend via SURFOS_SIMD and re-runs the em lane-semantics
# suite plus the geometry/channel equivalence proptests under it. (The
# avx2 arm is skipped, not failed, on hosts without it — SURFOS_SIMD=avx2
# deliberately falls back when not runnable, which would silently retest
# the detected backend.)
simd_arms=(scalar sse2)
if grep -qw avx2 /proc/cpuinfo 2>/dev/null && grep -qw fma /proc/cpuinfo 2>/dev/null; then
  simd_arms+=(avx2)
fi
for arm in "${simd_arms[@]}"; do
  SURFOS_SIMD="$arm" cargo test -q -p surfos-em -p surfos-geometry -p surfos-channel
done

# Shard-equivalence gate: the sharded kernel must stay bit-identical to a
# flat single-scene evaluation even with the worker pool forced serial, so
# a result that silently depends on thread count cannot land.
SURFOS_THREADS=1 cargo test -q -p surfos-bench --test shard_equivalence

# Flight-recorder gate: a real `surfosd --trace` run over the demo script
# must produce a valid Chrome Trace Event document — balanced B/E pairs
# and monotonic timestamps on every track. The checker lives in
# crates/bench/tests/trace_valid.rs and reads the file via env var.
trace_tmp="$(mktemp)"
trap 'rm -f "$trace_tmp"' EXIT
cargo run -q --release -p surfos --bin surfosd -- --trace "$trace_tmp" examples/demo.surfos > /dev/null
SURFOS_TRACE_CHECK="$trace_tmp" \
  cargo test -q --release -p surfos-bench --test trace_valid trace_file_from_env

# Service-plane gate: boot a real `surfosd serve` on an ephemeral loopback
# port, drive it with a surfos-loadgen burst, then ask it to quit over
# stdin and require a clean shutdown plus a metrics snapshot carrying the
# rpc.* series (validated by crates/bench/tests/metrics_valid.rs, which
# reads the file via env var).
metrics_tmp="$(mktemp)"
serve_log="$(mktemp)"
serve_ctl="$(mktemp -d)"
trap 'rm -f "$trace_tmp" "$metrics_tmp" "$serve_log"; rm -rf "$serve_ctl"' EXIT
mkfifo "$serve_ctl/ctl"
cargo build -q --release -p surfos -p surfos-bench --bin surfosd --bin surfos-loadgen
target/release/surfosd serve --listen 127.0.0.1:0 --metrics-json "$metrics_tmp" \
  < "$serve_ctl/ctl" > "$serve_log" &
serve_pid=$!
exec 9> "$serve_ctl/ctl" # hold the control pipe open until we say quit
port=""
for _ in $(seq 100); do
  port="$(sed -n 's/^surfosd: listening on 127.0.0.1:\([0-9][0-9]*\)$/\1/p' "$serve_log")"
  [[ -n "$port" ]] && break
  sleep 0.1
done
[[ -n "$port" ]] || { echo "surfosd serve never reported its port" >&2; kill "$serve_pid"; exit 1; }
target/release/surfos-loadgen --connect "127.0.0.1:$port" --conns 8 --requests 400 > /dev/null
echo quit >&9
exec 9>&-
wait "$serve_pid"
grep -q '^surfosd: stopped$' "$serve_log" || { echo "surfosd did not shut down cleanly" >&2; exit 1; }
SURFOS_METRICS_CHECK="$metrics_tmp" \
  cargo test -q --release -p surfos-bench --test metrics_valid metrics_file_from_env

# Doc gate: broken intra-doc links and missing docs (where a crate opts in
# via #![warn(missing_docs)]) fail the build, not just warn.
RUSTDOCFLAGS="-D warnings" cargo doc -q --no-deps --workspace

echo "lint: formatting, clippy (both simd configs), scalar-fallback tests, backend equivalence (${simd_arms[*]}), shard equivalence (serial), trace export, daemon smoke (serve + loadgen + metrics) and rustdoc clean"
