#!/usr/bin/env bash
# Static gate: formatting + clippy + rustdoc, all with warnings denied.
#
#   scripts/lint.sh          # check formatting, lints and docs
#   scripts/lint.sh --fix    # apply rustfmt, then re-check lints and docs
#
# Also invoked by scripts/perf_smoke.sh --check, so a perf gate run cannot
# pass on a tree that fails the static checks.
set -euo pipefail

cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--fix" ]]; then
  cargo fmt
else
  cargo fmt --check
fi

cargo clippy -q --all-targets -- -D warnings

# Portability gate: the whole workspace must build and pass tests with the
# SIMD shim's portable scalar fallback (the non-x86 / miri configuration),
# so a lane-semantics divergence between the SSE and fallback backends
# cannot land silently.
cargo clippy -q --all-targets --features surfos-em/scalar-fallback -- -D warnings
cargo test -q --workspace --features surfos-em/scalar-fallback

# Shard-equivalence gate: the sharded kernel must stay bit-identical to a
# flat single-scene evaluation even with the worker pool forced serial, so
# a result that silently depends on thread count cannot land.
SURFOS_THREADS=1 cargo test -q -p surfos-bench --test shard_equivalence

# Doc gate: broken intra-doc links and missing docs (where a crate opts in
# via #![warn(missing_docs)]) fail the build, not just warn.
RUSTDOCFLAGS="-D warnings" cargo doc -q --no-deps --workspace

echo "lint: formatting, clippy (both simd backends), scalar-fallback tests, shard equivalence (serial) and rustdoc clean"
