#!/usr/bin/env bash
# Static gate: formatting + clippy with warnings denied.
#
#   scripts/lint.sh          # check formatting and lints
#   scripts/lint.sh --fix    # apply rustfmt, then re-check lints
#
# Also invoked by scripts/perf_smoke.sh --check, so a perf gate run cannot
# pass on a tree that fails the static checks.
set -euo pipefail

cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--fix" ]]; then
  cargo fmt
else
  cargo fmt --check
fi

cargo clippy -q --all-targets -- -D warnings

echo "lint: formatting and clippy clean"
