//! Scale integration: a three-room house with three surfaces from three
//! different published designs, two access points, and six concurrent
//! tasks across rooms — the Figure 1 deployment at system scale.

use surfos::channel::{ChannelSim, Endpoint};
use surfos::em::band::NamedBand;
use surfos::geometry::scenario::three_room_house;
use surfos::geometry::{Pose, Vec3};
use surfos::hw::designs;
use surfos::hw::driver::ProgrammableDriver;
use surfos::hw::HardwareSpec;
use surfos::orchestrator::task::TaskState;
use surfos::SurfOS;

fn at_28ghz(mut spec: HardwareSpec, n: usize) -> HardwareSpec {
    let band = NamedBand::MmWave28GHz.band();
    spec.pitch_m *= band.wavelength_m() / spec.band.wavelength_m();
    spec.band = band;
    spec.rows = n;
    spec.cols = n;
    spec
}

fn boot_house() -> SurfOS {
    let scen = three_room_house();
    let band = NamedBand::MmWave28GHz.band();
    let sim = ChannelSim::new(scen.plan.clone(), band);
    let mut os = SurfOS::new(sim);
    os.set_user_room("bedroom");

    // Three surfaces, three designs, three rooms.
    for (id, design, anchor, n) in [
        ("bed0", designs::scatter_mimo(), "bedroom-north", 24usize),
        ("off0", designs::nr_surface(), "office-east", 24),
        ("liv0", designs::rflens(), "living-wall", 16),
    ] {
        let spec = at_28ghz(design, n);
        let pose = *scen.anchor(anchor).unwrap();
        os.deploy_surface(id, Box::new(ProgrammableDriver::new(spec)), pose);
    }

    // Two APs: the living-room one aimed at the bedroom anchor, a second
    // in the office doorway region aimed into the office.
    let bed_anchor = scen.anchor("bedroom-north").unwrap().position;
    os.add_endpoint(Endpoint::access_point(
        "ap-living",
        Pose::wall_mounted(scen.ap_pose.position, bed_anchor - scen.ap_pose.position),
    ));
    let office_anchor = scen.anchor("office-east").unwrap().position;
    let ap2_pos = Vec3::new(0.4, -0.4, 2.2);
    os.add_endpoint(Endpoint::access_point(
        "ap-office",
        Pose::wall_mounted(ap2_pos, office_anchor - ap2_pos),
    ));

    // Devices scattered over the three rooms.
    os.add_endpoint(Endpoint::client("laptop", Vec3::new(6.5, 1.5, 1.2)));
    os.add_endpoint(Endpoint::client("desk-pc", Vec3::new(3.0, -3.0, 1.0)));
    os.add_endpoint(Endpoint::client("tv", Vec3::new(2.5, 2.0, 1.0)));
    os.add_endpoint(Endpoint::sensor_tag("tag", Vec3::new(7.5, 3.0, 0.8)));

    os.orchestrator_mut().adam_options.iters = 60;
    os
}

#[test]
fn six_tasks_three_rooms_three_designs() {
    let mut os = boot_house();
    let tasks = vec![
        os.orchestrator_mut().optimize_coverage("bedroom", 20.0),
        os.orchestrator_mut().optimize_coverage("office", 20.0),
        os.orchestrator_mut().enhance_link("laptop", 20.0, 50.0),
        os.orchestrator_mut().enhance_link("desk-pc", 15.0, 100.0),
        os.orchestrator_mut().enable_sensing("bedroom", 3600.0),
        os.orchestrator_mut().init_powering("tag", 3600.0),
    ];

    let report = os.step(10);
    assert!(report.rejected.is_empty(), "all six admitted: {report:?}");
    assert!(report.push_errors.is_empty(), "{:?}", report.push_errors);
    os.step(10);

    for t in &tasks {
        assert_eq!(
            os.orchestrator().tasks.get(*t).unwrap().state,
            TaskState::Running,
            "task {t} running"
        );
        assert!(os.measure(*t).is_some());
    }
    assert_eq!(os.orchestrator().slices.check_isolation(), Ok(()));
}

#[test]
fn rooms_are_served_by_their_own_surfaces_and_aps() {
    let mut os = boot_house();
    let bed_cov = os.orchestrator_mut().optimize_coverage("bedroom", 20.0);
    let off_cov = os.orchestrator_mut().optimize_coverage("office", 20.0);

    // Geometry routes each room's task to the surface that can serve it.
    let bed_surfaces = os.orchestrator().servable_surfaces(bed_cov);
    let off_surfaces = os.orchestrator().servable_surfaces(off_cov);
    let bed_idx = os.sim().surface_index("bed0").unwrap();
    let off_idx = os.sim().surface_index("off0").unwrap();
    assert!(bed_surfaces.contains(&bed_idx), "{bed_surfaces:?}");
    assert!(off_surfaces.contains(&off_idx), "{off_surfaces:?}");
    assert!(
        !off_surfaces.contains(&bed_idx),
        "bedroom surface can't see office"
    );

    // And the office task is served by the office AP.
    assert_eq!(os.orchestrator().serving_ap_for(off_cov).id, "ap-office");

    for _ in 0..3 {
        os.step(10);
    }
    let bed = os.measure(bed_cov).unwrap();
    let off = os.measure(off_cov).unwrap();
    assert!(bed > 10.0, "bedroom served: {bed:.1} dB");
    assert!(off > 10.0, "office served: {off:.1} dB");
}

#[test]
fn house_scale_telemetry_and_wire_traffic() {
    let mut os = boot_house();
    os.orchestrator_mut().optimize_coverage("bedroom", 20.0);
    os.orchestrator_mut().optimize_coverage("office", 20.0);
    for _ in 0..3 {
        os.step(10);
    }
    let t = os.telemetry();
    assert!(t.configs_pushed >= 2, "both rooms' surfaces configured");
    assert!(t.writes_committed >= 2);
    // 24×24 at 2 bits ≈ 144 B payload per config; traffic is modest.
    assert!(
        t.wire_bytes > 200 && t.wire_bytes < 100_000,
        "{}",
        t.wire_bytes
    );
}
