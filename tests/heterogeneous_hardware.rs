//! Heterogeneous hardware integration: all 13 published designs managed
//! together through the unified hardware manager, plus the cross-band
//! interaction the paper warns about (§2.1).

use surfos::em::band::NamedBand;
use surfos::hw::designs::{self, all_designs};
use surfos::hw::driver::{PassiveDriver, ProgrammableDriver, SurfaceDriver, TimeMs};
use surfos::hw::nonsurface::NonSurfaceDevice;
use surfos::hw::{DeviceRegistry, SurfaceConfig};

fn driver_for(spec: surfos::hw::HardwareSpec) -> Box<dyn SurfaceDriver> {
    if spec.is_passive() {
        Box::new(PassiveDriver::new(spec))
    } else {
        Box::new(ProgrammableDriver::new(spec))
    }
}

/// A registry running every design in Table 1 simultaneously.
fn full_registry() -> DeviceRegistry {
    let mut reg = DeviceRegistry::new();
    for spec in all_designs() {
        let id = spec.model.to_lowercase();
        reg.register_surface(id, driver_for(spec));
    }
    reg.register_device(NonSurfaceDevice::ap("ap0"));
    reg.register_device(NonSurfaceDevice::base_station("gnb0"));
    reg
}

#[test]
fn all_thirteen_designs_coexist() {
    let reg = full_registry();
    assert_eq!(reg.surface_count(), 13);
    assert_eq!(reg.device_count(), 2);
}

#[test]
fn unified_primitives_work_across_all_designs() {
    let mut reg = full_registry();
    let now: TimeMs = 0;
    let ids: Vec<String> = reg.surface_ids().map(String::from).collect();
    for id in &ids {
        let driver = reg.surface_mut(id).unwrap();
        let n = driver.spec().element_count();
        let supports_phase = driver.spec().supports("phase");
        let result = driver.load_config(0, SurfaceConfig::identity(n), now);
        assert!(result.is_ok(), "{id}: {result:?}");
        if supports_phase {
            driver.shift_phase(0, &vec![0.5; n], now).unwrap();
        }
    }
    // Commit everything that was delayed.
    reg.tick_all(1_000_000);
    for id in &ids {
        let driver = reg.surface(id).unwrap();
        assert!(
            driver.stored_config(0).unwrap().is_some(),
            "{id} lost its configuration"
        );
        assert_eq!(
            driver.realized_response().len(),
            driver.spec().element_count()
        );
    }
}

#[test]
fn band_discovery_routes_services_to_capable_hardware() {
    let reg = full_registry();
    // 2.4 GHz services can recruit the four sub-6 ISM designs.
    let at_24 = reg.surfaces_serving(2.44e9);
    assert!(at_24.contains(&"laia"));
    assert!(at_24.contains(&"rfocus"));
    assert!(at_24.contains(&"llama"));
    assert!(at_24.contains(&"lava"));
    assert!(!at_24.contains(&"mmwall"));

    // 60 GHz services get the WiGig designs.
    let at_60 = reg.surfaces_serving(60.48e9);
    assert!(at_60.contains(&"millimirror"));
    assert!(at_60.contains(&"automs"));
    assert!(!at_60.contains(&"scattermimo"));

    // Scrolls' wideband span covers both 0.9 and 5 GHz.
    assert!(reg.surfaces_serving(0.92e9).contains(&"scrolls"));
    assert!(reg.surfaces_serving(5.25e9).contains(&"scrolls"));
}

#[test]
fn offband_blocking_interaction_is_exposed() {
    // §2.1: "surfaces designed for 2.4 GHz may block 3 GHz cellular and
    // 5 GHz Wi-Fi signals". The spec exposes the interaction so the
    // orchestrator can model it.
    let laia = designs::laia();
    let t_cellular = laia.offband_transmission(3.5e9);
    let t_wifi5 = laia.offband_transmission(5.25e9);
    let t_mmwave = laia.offband_transmission(NamedBand::MmWave60GHz.band().center_hz);
    assert!(
        t_cellular < 0.95,
        "noticeable blocking at 3.5 GHz: {t_cellular}"
    );
    assert!(t_wifi5 < 0.99, "some blocking at 5 GHz: {t_wifi5}");
    assert!(t_mmwave > 0.99, "transparent far off-band: {t_mmwave}");
    assert!(t_cellular < t_wifi5, "closer bands are blocked harder");
}

#[test]
fn granularity_differences_are_visible_through_realization() {
    // Same requested configuration; element-wise vs column-wise designs
    // realize it differently — the heterogeneity upper layers must model.
    let mut elementwise = ProgrammableDriver::new({
        let mut s = designs::scatter_mimo();
        s.rows = 4;
        s.cols = 4;
        s
    });
    let mut columnwise = ProgrammableDriver::new({
        let mut s = designs::nr_surface();
        s.rows = 4;
        s.cols = 4;
        s
    });
    // A diagonal phase ramp (not column-constant).
    let phases: Vec<f64> = (0..16).map(|i| (i % 5) as f64).collect();
    elementwise.shift_phase(0, &phases, 0).unwrap();
    columnwise.shift_phase(0, &phases, 0).unwrap();
    elementwise.tick(1_000_000);
    columnwise.tick(1_000_000);

    let re = elementwise.realized_response();
    let rc = columnwise.realized_response();
    // Column-wise: all rows of a column share the phase.
    for c in 0..4 {
        for r in 1..4 {
            assert!(
                (rc[r * 4 + c].arg() - rc[c].arg()).abs() < 1e-9,
                "column-wise must share states"
            );
        }
    }
    // Element-wise keeps per-element differences within a column.
    let distinct = (1..4).any(|r| (re[r * 4].arg() - re[0].arg()).abs() > 1e-3);
    assert!(distinct, "element-wise must keep distinct states");
}

#[test]
fn passive_fleet_draws_zero_power() {
    let reg = full_registry();
    let passive_power: f64 = reg
        .surfaces()
        .filter(|(_, d)| d.spec().is_passive())
        .map(|(_, d)| d.spec().power_mw)
        .sum();
    assert_eq!(passive_power, 0.0);
    let total_cost: f64 = reg.surfaces().map(|(_, d)| d.spec().total_cost_usd()).sum();
    // Table 1's whole design space costs on the order of $20k, dominated
    // by mmWall.
    assert!(
        total_cost > 10_000.0 && total_cost < 25_000.0,
        "{total_cost}"
    );
}
