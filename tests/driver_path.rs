//! Driver-path integration: configurations must survive the full control
//! plane — optimizer → wire encoding → decoding → slot store → control
//! delay → granularity projection → quantization → physical response —
//! and the losses each stage introduces must be the expected ones.

use surfos::em::complex::Complex;
use surfos::em::phase::{quantization_loss, quantize_phase};
use surfos::hw::driver::{ProgrammableDriver, SurfaceDriver};
use surfos::hw::granularity::Reconfigurability;
use surfos::hw::spec::{ControlCapability, HardwareSpec, SurfaceMode};
use surfos::hw::wire::{decode, encode, ConfigFrame};
use surfos::hw::SurfaceConfig;

fn spec(bits: u8, reconf: Reconfigurability) -> HardwareSpec {
    HardwareSpec {
        model: "pathtest".into(),
        band: surfos::em::band::NamedBand::MmWave28GHz.band(),
        mode: SurfaceMode::Reflective,
        capabilities: vec![ControlCapability::Phase { bits }],
        reconfigurability: reconf,
        rows: 8,
        cols: 8,
        pitch_m: 0.0053,
        efficiency: 1.0,
        control_delay_us: Some(1000),
        config_slots: 4,
        cost_per_element_usd: 1.0,
        base_cost_usd: 10.0,
        power_mw: 100.0,
    }
}

/// Ideal continuous phases for the test: a diagonal ramp.
fn ideal_phases() -> Vec<f64> {
    (0..64)
        .map(|i| (i as f64 * 0.37) % std::f64::consts::TAU)
        .collect()
}

#[test]
fn wire_then_driver_equals_driver_directly() {
    // Pushing through the wire must be byte-exact with a direct call at
    // the same quantization.
    let phases = ideal_phases();

    let mut direct = ProgrammableDriver::new(spec(3, Reconfigurability::ElementWise));
    let quantized: Vec<f64> = phases.iter().map(|&p| quantize_phase(p, 3)).collect();
    direct.shift_phase(1, &quantized, 0).unwrap();
    direct.tick(10);

    let mut via_wire = ProgrammableDriver::new(spec(3, Reconfigurability::ElementWise));
    let frame = ConfigFrame {
        slot: 1,
        config: SurfaceConfig::from_phases(&phases),
    };
    let bytes = encode(&frame, 3, 0);
    let (decoded, _, _) = decode(bytes).unwrap();
    via_wire
        .load_config(decoded.slot as usize, decoded.config, 0)
        .unwrap();
    via_wire.tick(10);

    direct.activate_slot(1).unwrap();
    via_wire.activate_slot(1).unwrap();
    for (a, b) in direct
        .realized_response()
        .iter()
        .zip(via_wire.realized_response())
    {
        assert!((*a - b).abs() < 1e-12);
    }
}

#[test]
fn quantization_loss_matches_theory() {
    // Beamforming with b-bit phases loses ~sinc²(π/2^b) of coherent power.
    // Check the realized response against the theoretical factor.
    let phases = ideal_phases();
    // The "target" beam: perfect conjugate combining would give gain 64.
    let target: Vec<Complex> = phases.iter().map(|&p| Complex::cis(p)).collect();

    for bits in [1u8, 2, 3] {
        let mut driver = ProgrammableDriver::new(spec(bits, Reconfigurability::ElementWise));
        driver.shift_phase(0, &phases, 0).unwrap();
        driver.tick(10);
        let realized = driver.realized_response();
        // Coherent combining achieved with quantized phases.
        let gain: Complex = realized
            .iter()
            .zip(&target)
            .map(|(r, t)| *r * t.conj())
            .sum();
        let achieved = (gain.abs() / 64.0).powi(2);
        let predicted = quantization_loss(bits);
        assert!(
            (achieved - predicted).abs() < 0.08,
            "{bits}-bit: achieved {achieved:.3} vs theory {predicted:.3}"
        );
    }
}

#[test]
fn column_tying_loses_against_elementwise_on_2d_patterns() {
    // A 2-D (diagonal) phase pattern cannot be represented column-wise;
    // the projection must lose coherent gain.
    let phases = ideal_phases();
    let target: Vec<Complex> = phases.iter().map(|&p| Complex::cis(p)).collect();

    let combine = |reconf: Reconfigurability| -> f64 {
        let mut driver = ProgrammableDriver::new(spec(3, reconf));
        driver.shift_phase(0, &phases, 0).unwrap();
        driver.tick(10);
        driver
            .realized_response()
            .iter()
            .zip(&target)
            .map(|(r, t)| *r * t.conj())
            .sum::<Complex>()
            .abs()
    };

    let elementwise = combine(Reconfigurability::ElementWise);
    let columnwise = combine(Reconfigurability::ColumnWise);
    assert!(
        columnwise < 0.8 * elementwise,
        "column-wise must lose on 2-D patterns: {columnwise:.1} vs {elementwise:.1}"
    );
}

#[test]
fn control_delay_is_respected_through_the_stack() {
    let mut driver = ProgrammableDriver::new({
        let mut s = spec(2, Reconfigurability::ElementWise);
        s.control_delay_us = Some(5_000); // 5 ms
        s
    });
    driver.shift_phase(0, &ideal_phases(), 100).unwrap();
    assert_eq!(driver.tick(104), 0, "not yet (4 ms < 5 ms)");
    assert!(driver.stored_config(0).unwrap().is_none());
    assert_eq!(driver.tick(105), 1, "commits at exactly the delay");
    assert!(driver.stored_config(0).unwrap().is_some());
}

#[test]
fn corrupted_wire_frames_never_reach_hardware() {
    let frame = ConfigFrame {
        slot: 0,
        config: SurfaceConfig::from_phases(&ideal_phases()),
    };
    let bytes = encode(&frame, 2, 0);
    // Flip every byte position one at a time; decode must reject, not
    // deliver silently corrupted configurations.
    let mut rejected = 0;
    for i in 0..bytes.len() {
        let mut raw = bytes.to_vec();
        raw[i] ^= 0x55;
        if decode(bytes::Bytes::from(raw)).is_err() {
            rejected += 1;
        }
    }
    assert_eq!(
        rejected,
        bytes.len(),
        "every single-byte corruption must be caught by the checksum"
    );
}

#[test]
fn slot_multiplexing_switches_beams_instantly() {
    // Two beams in two slots (the time-division multiplexing data plane):
    // activation has no control delay.
    let mut driver = ProgrammableDriver::new(spec(3, Reconfigurability::ElementWise));
    let beam_a: Vec<f64> = vec![0.0; 64];
    let beam_b: Vec<f64> = (0..64).map(|i| quantize_phase(i as f64, 3)).collect();
    driver.shift_phase(0, &beam_a, 0).unwrap();
    driver.shift_phase(1, &beam_b, 0).unwrap();
    driver.tick(10);

    driver.activate_slot(0).unwrap();
    let a = driver.realized_response();
    driver.activate_slot(1).unwrap();
    let b = driver.realized_response();
    driver.activate_slot(0).unwrap();
    let a_again = driver.realized_response();

    assert_ne!(a, b, "slots hold different beams");
    assert_eq!(a, a_again, "switching back is exact");
}
