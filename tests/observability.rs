//! Cross-crate observability integration: one instrumented kernel run
//! must light up every layer's metrics — lin-cache hits in the channel,
//! BVH culling in geometry, the span tree threading `kernel.step` down
//! into `channel.linearize` — and the snapshot must survive a JSON
//! round-trip and be deterministic across identical runs.
//!
//! The obs registry is process-global, so every test takes `OBS_LOCK` and
//! resets the registry before driving its own workload.

use std::sync::Mutex;
use surfos::channel::{ChannelSim, Endpoint};
use surfos::em::band::NamedBand;
use surfos::geometry::scenario::two_room_apartment;
use surfos::geometry::{Pose, Vec3};
use surfos::hw::designs;
use surfos::hw::driver::ProgrammableDriver;
use surfos::obs;
use surfos::orchestrator::ServiceRequest;
use surfos::{SurfOS, Telemetry};

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn exclusive() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// Boots the apartment, runs `steps` heartbeats with a coverage and a
/// link task, and returns the kernel.
fn run_workload(steps: usize) -> SurfOS {
    let scen = two_room_apartment();
    let sim = ChannelSim::new(scen.plan.clone(), NamedBand::MmWave28GHz.band());
    let mut os = SurfOS::new(sim);
    let mut spec = designs::scatter_mimo();
    spec.band = NamedBand::MmWave28GHz.band();
    spec.rows = 16;
    spec.cols = 16;
    spec.pitch_m = 0.0053;
    let pose = *scen.anchor("bedroom-north").unwrap();
    os.deploy_surface("wall0", Box::new(ProgrammableDriver::new(spec)), pose);
    os.add_endpoint(Endpoint::access_point(
        "ap0",
        Pose::wall_mounted(scen.ap_pose.position, pose.position - scen.ap_pose.position),
    ));
    os.add_endpoint(Endpoint::client("laptop", Vec3::new(6.5, 1.5, 1.2)));
    os.orchestrator_mut().adam_options.iters = 25;
    os.submit(ServiceRequest::optimize_coverage("bedroom", 25.0));
    os.submit(ServiceRequest::enhance_link("laptop", 20.0, 50.0));
    for _ in 0..steps {
        os.step(10);
    }
    os
}

#[test]
fn kernel_run_lights_up_every_layer() {
    let _guard = exclusive();
    obs::reset();
    obs::set_enabled(true);
    let os = run_workload(3);
    let snap = obs::snapshot();
    obs::set_enabled(false);

    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);

    // Channel layer: steady-state kernel ticks re-query the same link, so
    // the linearization cache must be earning hits.
    assert!(
        counter("channel.lincache.hits") > 0,
        "no lin-cache hits: {:?}",
        snap.counters
    );
    assert!(counter("channel.traces") > 0);

    // Geometry layer: the BVH must visit fewer nodes than a brute-force
    // wall scan would have touched across the same queries.
    let visited = counter("geometry.bvh.nodes_visited");
    let brute = counter("geometry.bvh.brute_walls");
    assert!(brute > 0, "no BVH queries recorded");
    assert!(
        visited < brute,
        "BVH culled nothing: visited {visited} of {brute} brute walls"
    );

    // Orchestrator + kernel layers.
    assert_eq!(counter("kernel.steps"), 3);
    assert!(counter("orchestrator.adam.iters") > 0);
    assert!(snap.gauges.contains_key("orchestrator.adam.loss"));

    // The span tree threads the kernel heartbeat down into the channel:
    // some recorded path starts at kernel.step and bottoms out in
    // channel.linearize.
    assert!(
        snap.spans
            .keys()
            .any(|p| p.starts_with("kernel.step/") && p.ends_with("/channel.linearize")),
        "no kernel.step → channel.linearize span path: {:?}",
        snap.spans.keys().collect::<Vec<_>>()
    );
    let step_span = snap.spans.get("kernel.step").expect("kernel.step span");
    assert_eq!(step_span.count, 3);

    // The kernel's Telemetry struct is a view over the registry: the
    // mirrored kernel.* counters reconstruct it exactly.
    assert_eq!(Telemetry::from_snapshot(&snap), os.telemetry());

    // Scheduler decisions landed in the journal.
    assert!(
        snap.events.iter().any(|e| e.category == "scheduler"),
        "no scheduler events journaled"
    );
}

#[test]
fn snapshot_json_round_trips_through_shim() {
    let _guard = exclusive();
    obs::reset();
    obs::set_enabled(true);
    let _os = run_workload(2);
    let snap = obs::snapshot();
    obs::set_enabled(false);

    let json = snap.to_json();
    let v = obs::JsonValue::parse(&json).expect("snapshot JSON parses");
    assert_eq!(
        v.get("counters")
            .and_then(|c| c.get("kernel.steps"))
            .and_then(|s| s.as_f64()),
        Some(2.0)
    );
    // Span entries keep their nested-path keys through the round-trip.
    let spans = v
        .get("spans")
        .and_then(|s| s.as_object())
        .expect("spans object");
    assert!(spans.iter().any(|(k, _)| k == "kernel.step"));
}

#[test]
fn identical_runs_yield_identical_deterministic_metrics() {
    let _guard = exclusive();
    let mut dumps = Vec::new();
    for _ in 0..2 {
        obs::reset();
        obs::set_enabled(true);
        let _os = run_workload(2);
        dumps.push(obs::snapshot().deterministic_json());
        obs::set_enabled(false);
    }
    assert_eq!(
        dumps[0], dumps[1],
        "deterministic projection must be byte-identical across identical runs"
    );
    // And the projection really dropped the wall-clock series.
    assert!(
        !dumps[0].contains("_ns\""),
        "deterministic projection leaked a *_ns series"
    );
}

#[test]
fn disabled_kernel_run_records_nothing() {
    let _guard = exclusive();
    obs::reset();
    obs::set_enabled(false);
    let _os = run_workload(1);
    let snap = obs::snapshot();
    assert!(snap.counters.is_empty(), "{:?}", snap.counters);
    assert!(snap.spans.is_empty());
    assert!(snap.events.is_empty());
}
