//! Multitasking integration: the Figure 2 / Figure 5 claims as testable
//! invariants, across the whole stack (channel sim → objectives →
//! optimizer → sensing evaluation).

use rand::SeedableRng;
use surfos::channel::{ChannelSim, Endpoint};
use surfos::em::band::NamedBand;
use surfos::geometry::scenario::two_room_apartment;
use surfos::geometry::{Pose, Vec3};
use surfos::orchestrator::objective::{
    CoverageObjective, LocalizationObjective, MultiObjective, Objective,
};
use surfos::orchestrator::optimizer::{adam, AdamOptions, Tying};
use surfos::sensing::aoa::AngleGrid;
use surfos::sensing::eval::evaluate_localization;

const N: usize = 24;

struct Setup {
    sim: ChannelSim,
    idx: usize,
    ap: Endpoint,
    probe: Endpoint,
    grid: Vec<Vec3>,
}

fn setup() -> Setup {
    let scen = two_room_apartment();
    let band = NamedBand::MmWave28GHz.band();
    let mut sim = ChannelSim::new(scen.plan.clone(), band);
    let pose = *scen.anchor("bedroom-north").unwrap();
    let idx = sim.add_surface(surfos::channel::SurfaceInstance::new(
        "shared",
        pose,
        surfos::em::array::ArrayGeometry::half_wavelength(N, N, band.wavelength_m()),
        surfos::channel::OperationMode::Reflective,
    ));
    let ap = Endpoint::access_point(
        "ap0",
        Pose::wall_mounted(scen.ap_pose.position, pose.position - scen.ap_pose.position),
    );
    let grid = scen.target().sample_grid(5, 5, 1.2, 0.4);
    let probe = Endpoint::client("probe", grid[0]);
    Setup {
        sim,
        idx,
        ap,
        probe,
        grid,
    }
}

fn optimize(objective: &dyn Objective, iters: usize) -> Vec<f64> {
    adam(
        objective,
        &[vec![0.0; N * N]],
        &Tying::element_wise(1),
        AdamOptions {
            iters,
            lr: 0.15,
            ..Default::default()
        },
    )
    .phases[0]
        .clone()
}

struct Evaluated {
    median_snr_db: f64,
    median_loc_err_m: f64,
}

fn evaluate(s: &mut Setup, phases: &[f64]) -> Evaluated {
    s.sim.surface_mut(s.idx).set_phases(phases);
    let snr = s.sim.snr_heatmap(&s.ap, &s.grid, &s.probe);
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let errs = evaluate_localization(
        &s.sim,
        s.idx,
        &s.ap,
        &s.probe,
        &s.grid,
        AngleGrid::uniform(61, 1.3),
        0.0,
        &mut rng,
    );
    let mut errs: Vec<f64> = errs.into_iter().map(|e| e.min(5.0)).collect();
    errs.sort_by(f64::total_cmp);
    Evaluated {
        median_snr_db: snr.median(),
        median_loc_err_m: errs[errs.len() / 2],
    }
}

#[test]
fn joint_config_multitasks_with_little_loss() {
    let mut s = setup();

    let coverage = CoverageObjective::new(&s.sim, &s.ap, &s.grid, &s.probe);
    let localization = LocalizationObjective::new(
        &s.sim,
        s.idx,
        &s.ap,
        &s.probe,
        &s.grid,
        AngleGrid::uniform(41, 1.3),
    );
    let joint = MultiObjective::new()
        .with(
            Box::new(CoverageObjective::new(&s.sim, &s.ap, &s.grid, &s.probe)),
            1.0,
        )
        .with(
            Box::new(LocalizationObjective::new(
                &s.sim,
                s.idx,
                &s.ap,
                &s.probe,
                &s.grid,
                AngleGrid::uniform(41, 1.3),
            )),
            60.0,
        );

    let cov_phases = optimize(&coverage, 150);
    let loc_phases = optimize(&localization, 150);
    let joint_phases = optimize(&joint, 150);

    let cov = evaluate(&mut s, &cov_phases);
    let loc = evaluate(&mut s, &loc_phases);
    let jnt = evaluate(&mut s, &joint_phases);

    // Figure 2's failure mode: coverage-only wrecks localization.
    assert!(
        cov.median_loc_err_m > 4.0 * loc.median_loc_err_m,
        "coverage config should disrupt localization: cov {:.2} m vs loc {:.2} m",
        cov.median_loc_err_m,
        loc.median_loc_err_m
    );
    // And localization-only sacrifices SNR.
    assert!(
        loc.median_snr_db < cov.median_snr_db - 5.0,
        "loc-only should cost SNR: {:.1} vs {:.1}",
        loc.median_snr_db,
        cov.median_snr_db
    );

    // Figure 5's claim: the joint config is near both single-task optima.
    assert!(
        jnt.median_snr_db > cov.median_snr_db - 5.0,
        "joint SNR within 5 dB of coverage-only: {:.1} vs {:.1}",
        jnt.median_snr_db,
        cov.median_snr_db
    );
    assert!(
        jnt.median_loc_err_m < 2.0 * loc.median_loc_err_m + 0.1,
        "joint localization near loc-only: {:.2} vs {:.2}",
        jnt.median_loc_err_m,
        loc.median_loc_err_m
    );
    // And strictly beats the wrong single-task config on each metric.
    assert!(jnt.median_loc_err_m < cov.median_loc_err_m / 2.0);
    assert!(jnt.median_snr_db > loc.median_snr_db + 3.0);
}

#[test]
fn optimizers_agree_on_direction() {
    // Adam and greedy quantized coordinate descent must both improve the
    // coverage objective from identity; Adam (continuous) at least as well.
    let s = setup();
    let coverage = CoverageObjective::new(&s.sim, &s.ap, &s.grid, &s.probe);
    let identity_loss = {
        let responses: Vec<Vec<surfos::em::complex::Complex>> =
            vec![vec![surfos::em::complex::Complex::ONE; N * N]];
        coverage.loss(&responses)
    };
    let adam_result = adam(
        &coverage,
        &[vec![0.0; N * N]],
        &Tying::element_wise(1),
        AdamOptions {
            iters: 120,
            lr: 0.15,
            ..Default::default()
        },
    );
    let greedy = surfos::orchestrator::optimizer::greedy_quantized(
        &coverage,
        &[N * N],
        &Tying::element_wise(1),
        2,
        1,
    );
    assert!(adam_result.loss < identity_loss, "adam improves");
    assert!(greedy.loss < identity_loss, "greedy improves");
    assert!(
        adam_result.loss <= greedy.loss + 1e-9,
        "continuous adam at least matches 2-bit greedy: {} vs {}",
        adam_result.loss,
        greedy.loss
    );
}
