//! End-to-end integration: every layer of SurfOS in one scenario — the
//! apartment, a deployed surface, intent translation, scheduling,
//! optimization, the driver path, and environmental dynamics.

use surfos::channel::dynamics::Blocker;
use surfos::channel::{ChannelSim, Endpoint};
use surfos::em::band::NamedBand;
use surfos::geometry::scenario::two_room_apartment;
use surfos::geometry::{Pose, Vec3};
use surfos::hw::designs;
use surfos::hw::driver::ProgrammableDriver;
use surfos::orchestrator::task::TaskState;
use surfos::SurfOS;

fn boot() -> SurfOS {
    let scen = two_room_apartment();
    let band = NamedBand::MmWave28GHz.band();
    let sim = ChannelSim::new(scen.plan.clone(), band);
    let mut os = SurfOS::new(sim);
    os.set_user_room("bedroom");

    let mut spec = designs::scatter_mimo();
    spec.band = band;
    spec.rows = 32;
    spec.cols = 32;
    spec.pitch_m = band.wavelength_m() / 2.0;
    let pose = *scen.anchor("bedroom-north").unwrap();
    os.deploy_surface("wall0", Box::new(ProgrammableDriver::new(spec)), pose);

    os.add_endpoint(Endpoint::access_point(
        "ap0",
        Pose::wall_mounted(scen.ap_pose.position, pose.position - scen.ap_pose.position),
    ));
    os.add_endpoint(Endpoint::client("laptop", Vec3::new(6.5, 1.5, 1.2)));
    os.add_endpoint(Endpoint::client("phone", Vec3::new(7.8, 2.8, 1.0)));
    os.orchestrator_mut().adam_options.iters = 80;
    os
}

#[test]
fn intent_to_running_service_to_real_snr() {
    let mut os = boot();
    let tasks = os.handle_utterance("I want to start VR gaming in this room");
    assert!(tasks.len() >= 2);

    // Before service, the bedroom is unusable.
    let ap = os.orchestrator().ap().clone();
    let laptop = os.orchestrator().endpoint("laptop").unwrap().clone();
    let before = os.sim().link_budget(&ap, &laptop).snr_db;
    assert!(
        before < 5.0,
        "bedroom should start dead-ish, got {before:.1}"
    );

    for _ in 0..3 {
        let report = os.step(10);
        assert!(report.push_errors.is_empty(), "{:?}", report.push_errors);
    }

    // Tasks got scheduled and ran.
    for t in &tasks {
        let task = os.orchestrator().tasks.get(*t).unwrap();
        assert!(
            matches!(task.state, TaskState::Running | TaskState::Pending),
            "task {} in {:?}",
            task.id,
            task.state
        );
    }
    // At least the coverage/link tasks must be running.
    assert!(tasks
        .iter()
        .any(|t| os.orchestrator().tasks.get(*t).unwrap().state == TaskState::Running));

    let after = os.sim().link_budget(&ap, &laptop).snr_db;
    assert!(
        after > before + 15.0,
        "service should transform the room: {before:.1} → {after:.1} dB"
    );
}

#[test]
fn multiple_services_coexist_via_shared_slices() {
    let mut os = boot();
    let cov = os.orchestrator_mut().optimize_coverage("bedroom", 25.0);
    let sense = os.orchestrator_mut().enable_sensing("bedroom", 3600.0);
    let link = os.orchestrator_mut().enhance_link("laptop", 20.0, 50.0);

    let report = os.step(10);
    assert!(report.rejected.is_empty(), "all tasks admitted");

    for t in [cov, sense, link] {
        assert_eq!(
            os.orchestrator().tasks.get(t).unwrap().state,
            TaskState::Running
        );
        assert!(!os.orchestrator().slices.slices_of(t).is_empty());
    }
    // Coverage and sensing share the single surface via a multitask group.
    let s_cov = os.orchestrator().slices.slices_of(cov);
    let s_sense = os.orchestrator().slices.slices_of(sense);
    assert!(
        s_cov.iter().any(|s| s_sense.contains(s)),
        "joint group expected"
    );
}

#[test]
fn blocker_hurts_and_reoptimization_recovers() {
    let mut os = boot();
    let task = os.orchestrator_mut().optimize_coverage("bedroom", 25.0);
    for _ in 0..3 {
        os.step(10);
    }
    let healthy = os.measure(task).unwrap();
    assert!(healthy > 15.0, "healthy room, got {healthy:.1}");

    // A person stands right in front of the surface's view of the doorway.
    os.orchestrator_mut()
        .sim
        .set_blockers(vec![Blocker::person(Vec3::xy(5.4, 3.4))]);
    let blocked = os.measure(task).unwrap();
    assert!(
        blocked < healthy - 3.0,
        "blocker must hurt: {healthy:.1} → {blocked:.1}"
    );

    // The runtime reacts: new optimization under the new environment.
    for _ in 0..3 {
        os.step(10);
    }
    let adapted = os.measure(task).unwrap();
    assert!(
        adapted >= blocked - 1e-9,
        "adaptation must not make it worse: {blocked:.1} → {adapted:.1}"
    );
}

#[test]
fn task_expiry_frees_resources_for_pending_work() {
    let mut os = boot();
    // A short sensing task and a long coverage task compete.
    let sense = os.orchestrator_mut().enable_sensing("bedroom", 0.02);
    let cov = os.orchestrator_mut().optimize_coverage("bedroom", 25.0);
    os.step(10);
    assert_eq!(
        os.orchestrator().tasks.get(sense).unwrap().state,
        TaskState::Running
    );

    // Expire the sensing task.
    let report = os.step(30);
    assert!(report.reaped.contains(&sense));
    assert_eq!(
        os.orchestrator().tasks.get(sense).unwrap().state,
        TaskState::Completed
    );
    assert!(os.orchestrator().slices.slices_of(sense).is_empty());
    assert_eq!(
        os.orchestrator().tasks.get(cov).unwrap().state,
        TaskState::Running
    );
}

#[test]
fn mobility_is_followed_by_reoptimization() {
    let mut os = boot();
    let link = os.orchestrator_mut().enhance_link("phone", 20.0, 50.0);
    for _ in 0..2 {
        os.step(10);
    }
    let at_first = os.measure(link).unwrap();

    // The phone moves across the room; the old beam misses it.
    os.orchestrator_mut()
        .move_endpoint("phone", Vec3::new(5.6, 0.7, 1.0));
    let stale = os.measure(link).unwrap();

    for _ in 0..3 {
        os.step(10);
    }
    let refreshed = os.measure(link).unwrap();
    assert!(
        refreshed > stale,
        "re-optimization must recover the moved link: stale {stale:.1} → {refreshed:.1}"
    );
    assert!(
        refreshed > at_first - 10.0,
        "new position served comparably"
    );
}

#[test]
fn all_five_services_share_the_environment() {
    // The Figure 1 deployment scenario: connectivity, coverage, sensing,
    // powering and security all admitted over one surface, one frame.
    let mut os = boot();
    let link = os.orchestrator_mut().enhance_link("laptop", 20.0, 50.0);
    let cov = os.orchestrator_mut().optimize_coverage("bedroom", 25.0);
    let sense = os.orchestrator_mut().enable_sensing("bedroom", 3600.0);
    let power = os.orchestrator_mut().init_powering("phone", 3600.0);
    let sec = os.orchestrator_mut().protect_link("living-room", -85.0);

    let report = os.step(10);
    assert!(report.rejected.is_empty(), "all five admitted: {report:?}");
    assert!(!report.optimized_slots.is_empty());

    for t in [link, cov, sense, power, sec] {
        assert_eq!(
            os.orchestrator().tasks.get(t).unwrap().state,
            TaskState::Running,
            "task {t} running"
        );
        assert!(!os.orchestrator().slices.slices_of(t).is_empty());
        assert!(os.measure(t).is_some(), "task {t} measurable");
    }

    // Security is exclusive: its slices are not shared with anyone.
    for slice in os.orchestrator().slices.slices_of(sec) {
        let group = os.orchestrator().slices.group(slice).unwrap();
        assert_eq!(group.tasks, vec![sec], "security must be isolated");
    }
    // The shareable services co-habit at least one slice.
    let s_cov = os.orchestrator().slices.slices_of(cov);
    let s_sense = os.orchestrator().slices.slices_of(sense);
    assert!(s_cov.iter().any(|s| s_sense.contains(s)));
}

#[test]
fn telemetry_reflects_work_done() {
    let mut os = boot();
    os.orchestrator_mut().optimize_coverage("bedroom", 25.0);
    for _ in 0..4 {
        os.step(10);
    }
    let t = os.telemetry();
    assert_eq!(t.steps, 4);
    assert_eq!(t.frames_scheduled, 4);
    assert!(t.optimizations >= 4);
    assert!(t.configs_pushed >= 1);
    assert!(t.writes_committed >= 1);
    assert!(t.wire_bytes >= 256, "a 1024-element 2-bit config is ≥256 B");
}
