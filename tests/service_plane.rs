//! Service-plane integration tests: a real `surfosd` daemon served over
//! loopback TCP and a unix socket, driven by real framed-protocol
//! clients.
//!
//! Covers the wire contract end to end — registration, release, intent,
//! channel query, metrics, version negotiation — plus the hostile-input
//! guarantees: truncated frames, oversized length prefixes (rejected
//! before allocation), unknown ops, and mid-frame disconnects must never
//! panic the daemon or wedge other sessions.

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};
use surfos::daemon::{demo_kernel, ServeOptions, Server};
use surfos::rpc::frame::{read_frame, write_frame, MAX_FRAME_LEN};
use surfos::rpc::proto::{Request, RequestEnvelope, Response, PROTOCOL_VERSION};

/// Boots a daemon on an ephemeral TCP port (no unix socket, no ticker).
fn serve(opts: ServeOptions) -> Server {
    Server::start(demo_kernel(), opts).expect("bind loopback")
}

fn tcp_opts() -> ServeOptions {
    ServeOptions {
        tcp: Some("127.0.0.1:0".into()),
        ..ServeOptions::default()
    }
}

/// One blocking request/response round-trip on an established stream.
fn call(stream: &mut TcpStream, env: &RequestEnvelope) -> Response {
    write_frame(stream, &env.encode()).expect("write frame");
    let body = read_frame(stream)
        .expect("read frame")
        .expect("server must answer, not close");
    let (id, response) = Response::decode(&body).expect("valid response");
    assert_eq!(id, env.id, "correlation id must echo");
    response
}

fn connect(server: &Server) -> TcpStream {
    let addr = server.tcp_addr().expect("tcp listener");
    let s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s
}

#[test]
fn register_query_release_over_tcp() {
    let server = serve(tcp_opts());
    let mut c = connect(&server);

    // Ping: version + auto tenant.
    let Response::Pong { version, tenant } = call(&mut c, &RequestEnvelope::new(1, Request::Ping))
    else {
        panic!("expected Pong");
    };
    assert_eq!(version, PROTOCOL_VERSION);
    assert!(tenant.starts_with("conn-"), "{tenant}");

    // Register a coverage service.
    let resp = call(
        &mut c,
        &RequestEnvelope::new(
            2,
            Request::RegisterService {
                kind: "coverage".into(),
                subject: "bedroom".into(),
                value: 25.0,
            },
        ),
    );
    let Response::Registered { service, .. } = resp else {
        panic!("expected Registered, got {resp:?}");
    };

    // Query the demo link.
    let resp = call(
        &mut c,
        &RequestEnvelope::new(
            3,
            Request::QueryChannel {
                tx: "ap0".into(),
                rx: "laptop".into(),
            },
        ),
    );
    let Response::Channel { rss_dbm, .. } = resp else {
        panic!("expected Channel, got {resp:?}");
    };
    assert!(rss_dbm.is_finite() && rss_dbm < 0.0);

    // Release the lease.
    let resp = call(
        &mut c,
        &RequestEnvelope::new(4, Request::ReleaseService { service }),
    );
    assert_eq!(resp, Response::Released { service });

    // Releasing it again is an owner error, not a hang or a panic.
    let resp = call(
        &mut c,
        &RequestEnvelope::new(5, Request::ReleaseService { service }),
    );
    assert!(matches!(resp, Response::Error { .. }), "{resp:?}");

    server.stop();
}

#[test]
fn unix_socket_speaks_the_same_protocol() {
    let path = std::env::temp_dir().join(format!("surfosd-test-{}.sock", std::process::id()));
    let server = serve(ServeOptions {
        tcp: None,
        unix: Some(path.clone()),
        ..ServeOptions::default()
    });
    let mut c = std::os::unix::net::UnixStream::connect(&path).expect("connect unix");
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let env = RequestEnvelope::new(7, Request::Ping);
    write_frame(&mut c, &env.encode()).unwrap();
    let body = read_frame(&mut c).unwrap().expect("answer");
    let (id, resp) = Response::decode(&body).unwrap();
    assert_eq!(id, 7);
    assert!(matches!(resp, Response::Pong { .. }));
    server.stop();
    assert!(!path.exists(), "socket file must be removed on stop");
}

#[test]
fn tenant_claim_binds_and_quota_rejects_structured() {
    let server = serve(ServeOptions {
        per_tenant: 2,
        ..tcp_opts()
    });
    let mut c = connect(&server);
    let register = |id| {
        RequestEnvelope::with_tenant(
            id,
            "alice",
            Request::RegisterService {
                kind: "coverage".into(),
                subject: "bedroom".into(),
                value: 25.0,
            },
        )
    };
    assert!(matches!(
        call(&mut c, &register(1)),
        Response::Registered { .. }
    ));
    assert!(matches!(
        call(&mut c, &register(2)),
        Response::Registered { .. }
    ));
    let Response::Rejected { reason } = call(&mut c, &register(3)) else {
        panic!("third register must exceed alice's quota");
    };
    assert!(reason.contains("alice"), "{reason}");

    // A second connection claiming the same tenant shares the quota…
    let mut c2 = connect(&server);
    assert!(matches!(
        call(&mut c2, &register(1)),
        Response::Rejected { .. }
    ));
    // …while a third connection under its own auto tenant is unaffected
    // (the claim binds per-session, and c2 is already alice).
    let mut c3 = connect(&server);
    let auto = RequestEnvelope::new(
        1,
        Request::RegisterService {
            kind: "coverage".into(),
            subject: "bedroom".into(),
            value: 25.0,
        },
    );
    assert!(matches!(call(&mut c3, &auto), Response::Registered { .. }));
    server.stop();
}

#[test]
fn intent_grounds_to_tasks_over_the_wire() {
    let server = serve(tcp_opts());
    let mut c = connect(&server);
    let resp = call(
        &mut c,
        &RequestEnvelope::new(
            1,
            Request::SubmitIntent {
                utterance: "I want to watch a movie on my laptop".into(),
            },
        ),
    );
    let Response::IntentTasks { tasks } = resp else {
        panic!("expected IntentTasks, got {resp:?}");
    };
    assert!(!tasks.is_empty(), "the demo utterance grounds to tasks");
    server.stop();
}

#[test]
fn metrics_response_nests_a_parseable_snapshot() {
    let server = serve(tcp_opts());
    let mut c = connect(&server);
    let resp = call(
        &mut c,
        &RequestEnvelope::new(
            1,
            Request::Metrics {
                deterministic: true,
            },
        ),
    );
    let Response::Metrics { json } = resp else {
        panic!("expected Metrics, got {resp:?}");
    };
    surfos::obs::JsonValue::parse(&json).expect("snapshot must parse");
    server.stop();
}

#[test]
fn wrong_version_is_refused_but_ping_still_answers() {
    let server = serve(tcp_opts());
    let mut c = connect(&server);
    // A v99 ping answers (version discovery)…
    let mut ping = RequestEnvelope::new(1, Request::Ping);
    ping.v = 99;
    write_frame(&mut c, &ping.encode()).unwrap();
    let (_, resp) = Response::decode(&read_frame(&mut c).unwrap().unwrap()).unwrap();
    assert!(matches!(resp, Response::Pong { version, .. } if version == PROTOCOL_VERSION));
    // …a v99 query is an error naming the server's version.
    let mut query = RequestEnvelope::new(
        2,
        Request::QueryChannel {
            tx: "ap0".into(),
            rx: "laptop".into(),
        },
    );
    query.v = 99;
    write_frame(&mut c, &query.encode()).unwrap();
    let (_, resp) = Response::decode(&read_frame(&mut c).unwrap().unwrap()).unwrap();
    let Response::Error { message } = resp else {
        panic!("wrong version must error, got {resp:?}");
    };
    assert!(message.contains("version"), "{message}");
    server.stop();
}

#[test]
fn unknown_op_answers_an_error_and_keeps_the_session() {
    let server = serve(tcp_opts());
    let mut c = connect(&server);
    write_frame(&mut c, r#"{"v":1,"id":9,"op":"frobnicate"}"#).unwrap();
    let (_, resp) = Response::decode(&read_frame(&mut c).unwrap().unwrap()).unwrap();
    assert!(matches!(resp, Response::Error { .. }), "{resp:?}");
    // The connection survives a body-level error.
    assert!(matches!(
        call(&mut c, &RequestEnvelope::new(10, Request::Ping)),
        Response::Pong { .. }
    ));
    server.stop();
}

#[test]
fn oversized_length_prefix_is_rejected_without_allocation() {
    let server = serve(tcp_opts());
    let mut c = connect(&server);
    // A hostile header claiming u32::MAX bytes. If the daemon tried to
    // allocate it, a 4 GiB buffer would blow the test runner; instead it
    // must answer one framing error and close.
    c.write_all(&u32::MAX.to_le_bytes()).unwrap();
    c.write_all(b"junk that never amounts to a frame").unwrap();
    let body = read_frame(&mut c).unwrap().expect("framing error answer");
    let (_, resp) = Response::decode(&body).unwrap();
    let Response::Error { message } = resp else {
        panic!("expected framing error, got {resp:?}");
    };
    assert!(message.contains("exceeds"), "{message}");
    assert!(message.contains(&MAX_FRAME_LEN.to_string()), "{message}");
    // The daemon hangs up after an unrecoverable framing error.
    assert_eq!(read_frame(&mut c).unwrap(), None, "connection must close");
    // And it still serves new clients.
    let mut c2 = connect(&server);
    assert!(matches!(
        call(&mut c2, &RequestEnvelope::new(1, Request::Ping)),
        Response::Pong { .. }
    ));
    server.stop();
}

#[test]
fn mid_frame_disconnect_does_not_wedge_the_daemon() {
    let server = serve(tcp_opts());
    for _ in 0..4 {
        let mut c = connect(&server);
        // Send a valid header and half the promised body, then vanish.
        let body = RequestEnvelope::new(1, Request::Ping).encode();
        c.write_all(&(body.len() as u32).to_le_bytes()).unwrap();
        c.write_all(&body.as_bytes()[..body.len() / 2]).unwrap();
        drop(c);
    }
    // Truncated garbage, not even a full header.
    let mut c = connect(&server);
    c.write_all(&[0x03, 0x00]).unwrap();
    drop(c);

    // The daemon keeps serving and eventually reaps the dead sessions.
    let mut alive = connect(&server);
    assert!(matches!(
        call(&mut alive, &RequestEnvelope::new(2, Request::Ping)),
        Response::Pong { .. }
    ));
    drop(alive);
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.live_conns() > 0 {
        assert!(Instant::now() < deadline, "dead sessions never reaped");
        std::thread::sleep(Duration::from_millis(10));
    }
    server.stop();
}

#[test]
fn connection_cap_answers_a_rejection_not_a_hang() {
    let server = serve(ServeOptions {
        max_conns: 2,
        ..tcp_opts()
    });
    let mut keep: Vec<TcpStream> = (0..2).map(|_| connect(&server)).collect();
    // Make sure both are adopted before the third arrives.
    for (i, c) in keep.iter_mut().enumerate() {
        assert!(matches!(
            call(c, &RequestEnvelope::new(i as u64 + 1, Request::Ping)),
            Response::Pong { .. }
        ));
    }
    let mut over = connect(&server);
    let body = read_frame(&mut over).unwrap().expect("over-cap answer");
    let (_, resp) = Response::decode(&body).unwrap();
    let Response::Rejected { reason } = resp else {
        panic!("expected Rejected, got {resp:?}");
    };
    assert!(reason.contains("connection limit"), "{reason}");
    assert_eq!(read_frame(&mut over).unwrap(), None, "then it closes");
    server.stop();
}

#[test]
fn pipelined_requests_answer_in_order() {
    let server = serve(tcp_opts());
    let mut c = connect(&server);
    // Write a burst of frames before reading anything.
    for id in 1..=20u64 {
        write_frame(&mut c, &RequestEnvelope::new(id, Request::Ping).encode()).unwrap();
    }
    for id in 1..=20u64 {
        let (got, resp) = Response::decode(&read_frame(&mut c).unwrap().unwrap()).unwrap();
        assert_eq!(got, id);
        assert!(matches!(resp, Response::Pong { .. }));
    }
    server.stop();
}

#[test]
fn concurrent_clients_all_get_served() {
    let server = serve(tcp_opts());
    let addr = server.tcp_addr().unwrap();
    let handles: Vec<_> = (0..16)
        .map(|t| {
            std::thread::spawn(move || {
                let mut c = TcpStream::connect(addr).expect("connect");
                c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                for id in 1..=25u64 {
                    let resp = {
                        let env = RequestEnvelope::new(id, Request::Ping);
                        write_frame(&mut c, &env.encode()).unwrap();
                        let body = read_frame(&mut c).unwrap().expect("answer");
                        Response::decode(&body).unwrap().1
                    };
                    assert!(matches!(resp, Response::Pong { .. }), "thread {t} id {id}");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    server.stop();
}

#[test]
fn auto_tenant_leases_die_with_the_connection() {
    let server = serve(tcp_opts());
    let mut c = connect(&server);
    let Response::Registered { .. } = call(
        &mut c,
        &RequestEnvelope::new(
            1,
            Request::RegisterService {
                kind: "coverage".into(),
                subject: "bedroom".into(),
                value: 25.0,
            },
        ),
    ) else {
        panic!("register failed");
    };
    drop(c);
    // After the disconnect is reaped, a fresh metrics query shows no
    // live leases: rpc.conns.live returns to the new connection only.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        assert!(Instant::now() < deadline, "teardown never happened");
        std::thread::sleep(Duration::from_millis(10));
        if server.live_conns() == 0 {
            break;
        }
    }
    server.stop();
}
