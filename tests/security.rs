//! Security-service integration: Protego-style beam shaping — serve the
//! legitimate user while suppressing the signal in an eavesdropping
//! region, with one jointly optimized configuration.

use surfos::channel::{ChannelSim, Endpoint};
use surfos::em::band::NamedBand;
use surfos::geometry::scenario::two_room_apartment;
use surfos::geometry::{Pose, Vec3};
use surfos::orchestrator::objective::{CoverageObjective, MultiObjective, SuppressionObjective};
use surfos::orchestrator::optimizer::{adam, AdamOptions, Tying};

const N: usize = 24;

struct World {
    sim: ChannelSim,
    idx: usize,
    ap: Endpoint,
    user: Endpoint,
    eaves_region: Vec<Vec3>,
}

fn world() -> World {
    let scen = two_room_apartment();
    let band = NamedBand::MmWave28GHz.band();
    let mut sim = ChannelSim::new(scen.plan.clone(), band);
    let pose = *scen.anchor("bedroom-north").unwrap();
    let idx = sim.add_surface(surfos::channel::SurfaceInstance::new(
        "shared",
        pose,
        surfos::em::array::ArrayGeometry::half_wavelength(N, N, band.wavelength_m()),
        surfos::channel::OperationMode::Reflective,
    ));
    let ap = Endpoint::access_point(
        "ap0",
        Pose::wall_mounted(scen.ap_pose.position, pose.position - scen.ap_pose.position),
    );
    let mut user = Endpoint::client("user", Vec3::new(6.3, 1.2, 1.2));
    user.pattern = surfos::em::antenna::ElementPattern::Isotropic;
    // The eavesdropper lurks near the east wall, well separated in angle.
    let eaves_region = vec![
        Vec3::new(8.4, 0.6, 1.2),
        Vec3::new(8.6, 1.0, 1.2),
        Vec3::new(8.4, 1.4, 1.2),
    ];
    World {
        sim,
        idx,
        ap,
        user,
        eaves_region,
    }
}

fn optimize(world: &World, suppression_weight: f64) -> Vec<f64> {
    // (iters kept moderate: convergence plateaus by ~200 steps)
    let probe = world.user.clone();
    let mut obj = MultiObjective::new().with(
        Box::new(CoverageObjective::new(
            &world.sim,
            &world.ap,
            &[world.user.position()],
            &probe,
        )),
        1.0,
    );
    if suppression_weight > 0.0 {
        obj = obj.with(
            Box::new(
                SuppressionObjective::new(&world.sim, &world.ap, &world.eaves_region, &probe)
                    // Stop suppressing once the leak is at -80 dBm.
                    .with_goal(-75.0, world.ap.tx_power_dbm),
            ),
            suppression_weight,
        );
    }
    adam(
        &obj,
        &[vec![0.0; N * N]],
        &Tying::element_wise(1),
        AdamOptions {
            iters: 200,
            lr: 0.15,
            ..Default::default()
        },
    )
    .phases[0]
        .clone()
}

fn measure(world: &mut World, phases: &[f64]) -> (f64, f64) {
    world.sim.surface_mut(world.idx).set_phases(phases);
    let user_snr = world.sim.link_budget(&world.ap, &world.user).snr_db;
    let worst_leak = world
        .eaves_region
        .iter()
        .map(|p| {
            let mut rx = world.user.clone();
            rx.pose.position = *p;
            world.sim.rss_dbm(&world.ap, &rx)
        })
        .fold(f64::NEG_INFINITY, f64::max);
    (user_snr, worst_leak)
}

#[test]
fn protected_beam_serves_user_and_starves_eavesdropper() {
    let mut w = world();

    // Unprotected: optimize the user's link only.
    let open_phases = optimize(&w, 0.0);
    let (open_snr, open_leak) = measure(&mut w, &open_phases);
    assert!(open_snr > 20.0, "unprotected link healthy: {open_snr:.1}");

    // Protected: joint link + suppression objective.
    let protected_phases = optimize(&w, 10.0);
    let (prot_snr, prot_leak) = measure(&mut w, &protected_phases);

    // Nulling the eavesdropping region fights the user beam and the
    // constant doorway leak, so suppression is a trade-off: several dB of
    // leak reduction for a few dB of user SNR.
    assert!(
        prot_snr > 15.0,
        "user must stay served under protection: {prot_snr:.1} dB"
    );
    assert!(
        prot_leak < open_leak - 5.0,
        "leak must drop by >5 dB: {open_leak:.1} → {prot_leak:.1} dBm"
    );
}

#[test]
fn suppression_alone_cannot_create_coverage() {
    // Sanity: the suppression objective never *increases* leakage relative
    // to an unoptimized surface, and doesn't accidentally serve the user.
    let mut w = world();
    let identity = vec![0.0; N * N];
    let (_, base_leak) = measure(&mut w, &identity);
    let obj = SuppressionObjective::new(&w.sim, &w.ap, &w.eaves_region, &w.user);
    let result = adam(
        &obj,
        std::slice::from_ref(&identity),
        &Tying::element_wise(1),
        AdamOptions {
            iters: 100,
            lr: 0.15,
            ..Default::default()
        },
    );
    let (_, nulled_leak) = measure(&mut w, &result.phases[0]);
    assert!(nulled_leak <= base_leak + 1e-6);
}
